#!/usr/bin/env python3
"""Extending the library: plug in your own coherence scheme.

Implements "epoch flush" — the simplest possible compiler-directed scheme
(every processor invalidates its whole cache at every epoch boundary;
C.mmp/Cedar-era behaviour) — registers it beside the built-in schemes, and
races it against SC, TPI, and the directory on a workload.  The simulator's
coherence oracle checks it on every read like any other scheme, so a broken
protocol fails loudly rather than reporting great numbers.

Run:  python examples/custom_scheme.py [workload]
"""

import sys
from typing import Dict, List, Optional

import repro.coherence.api as api
from repro import build_workload, default_machine, prepare, simulate
from repro.coherence.api import AccessResult, CoherenceScheme
from repro.common.stats import MissKind
from repro.memsys.cache import Cache


class EpochFlushScheme(CoherenceScheme):
    """Invalidate everything at every epoch boundary (no compiler marking,
    no timetags): coherent because nothing stale survives a barrier, and
    same-epoch freshness is the program's own DOALL-legality."""

    name = "flush"

    def __init__(self, ctx):
        super().__init__(ctx)
        machine = self.machine
        self.caches: List[Cache] = [Cache(machine.cache)
                                    for _ in range(machine.n_procs)]
        self.line_words = machine.cache.line_words

    def begin_epoch(self, index: int, parallel: bool) -> Dict[int, int]:
        for cache in self.caches:
            cache.flush_all_words()
        # Charge the sweep like a TPI reset.
        return {proc: self.machine.tpi.reset_stall_cycles
                for proc in range(self.machine.n_procs)}

    def read(self, proc, addr, site, shared, in_critical) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if (loc is not None and cache.word_valid[loc.set_index, loc.way, word]
                and not in_critical):
            cache.touch(loc)
            version = int(cache.version[loc.set_index, loc.way, word])
            self._check_read_version(addr, version)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)
        loc, _evicted, _dirty = cache.install(line_addr)
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        version = int(cache.version[s, w, word])
        self._check_read_version(addr, version)
        return AccessResult(latency=self.network.miss_latency(self.line_words),
                            kind=MissKind.COLD, read_words=1 + self.line_words,
                            version=version)

    def write(self, proc, addr, site, shared, in_critical) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        read_words = 0
        if loc is None:
            loc, _evicted, _dirty = cache.install(line_addr)
            base = cache.line_base(line_addr)
            cache.version[loc.set_index, loc.way, :] = (
                self.shadow.version[base:base + self.line_words])
            read_words = 1 + self.line_words
        version = self.shadow.write(addr, proc)
        cache.version[loc.set_index, loc.way, word] = version
        cache.word_valid[loc.set_index, loc.way, word] = True
        return AccessResult(latency=self.machine.hit_latency,
                            kind=MissKind.HIT, read_words=read_words,
                            write_words=2 if shared else 0, version=version)


def register(name: str, cls) -> None:
    """Extend make_scheme's registry (monkey-patch style for a demo; a real
    plugin would subclass or wrap make_scheme)."""
    original = api.make_scheme

    def patched(scheme_name, ctx):
        if scheme_name == name:
            return cls(ctx)
        return original(scheme_name, ctx)

    api.make_scheme = patched
    # The engine imported the symbol directly; patch it there too.
    import repro.sim.engine as engine

    engine.make_scheme = patched


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    register("flush", EpochFlushScheme)

    machine = default_machine()
    run = prepare(build_workload(workload), machine)
    print(f"{workload}: custom 'flush' scheme vs the built-ins\n")
    for scheme in ("flush", "sc", "tpi", "hw"):
        result = simulate(run, scheme)
        print(f"  {scheme:6s} cycles={result.exec_cycles:>9}  "
              f"miss={100 * result.miss_rate:6.2f}%  "
              f"misslat={result.avg_miss_latency:6.1f}")
    print("\nThe flush scheme is coherent (the oracle checked every read) "
          "but pays cold misses every epoch — the precision gap TPI's "
          "marking + timetags close.")


if __name__ == "__main__":
    main()
