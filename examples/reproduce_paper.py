#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Run:  python examples/reproduce_paper.py [--small] [experiment ...]

Without arguments, runs all experiments at the paper-scale workload sizes
(a few minutes); ``--small`` uses the quick test sizes.  Results print as
the tables the paper reports, each with the shape claims it must satisfy.
"""

import sys
import time

from repro import experiment_ids, run_experiment


def main():
    args = [a for a in sys.argv[1:]]
    size = "paper"
    if "--small" in args:
        size = "small"
        args.remove("--small")
    targets = args or experiment_ids()

    for experiment in targets:
        start = time.time()
        result = run_experiment(experiment, size=size)
        print(result.render())
        print(f"[{experiment}: {time.time() - start:.1f}s]\n")


if __name__ == "__main__":
    main()
