#!/usr/bin/env python3
"""Quickstart: write a tiny parallel program, compile it, and compare the
four coherence schemes on it.

Run:  python examples/quickstart.py
"""

from repro import (
    ProgramBuilder,
    RefMark,
    build_workload,
    default_machine,
    mark_program,
    prepare,
    simulate_all,
)


def build_demo():
    """A two-phase stencil: produce a field, then consume it."""
    n = 32
    b = ProgramBuilder("demo", params={"STEPS": 4})
    b.array("A", (n, n))
    b.array("B", (n, n))
    with b.procedure("main"):
        with b.doall("i", 0, n - 1, label="init") as i:
            with b.serial("j", 0, n - 1) as j:
                b.stmt(writes=[b.at("A", i, j)], work=1)
        with b.serial("t", 0, b.p("STEPS") - 1):
            with b.doall("i", 1, n - 2, label="smooth") as i:
                with b.serial("j", 1, n - 2) as j:
                    b.stmt(writes=[b.at("B", i, j)],
                           reads=[b.at("A", i - 1, j), b.at("A", i + 1, j)],
                           work=3)
            with b.doall("x", 1, n - 2, label="copy") as x:
                with b.serial("y", 1, n - 2) as y:
                    b.stmt(writes=[b.at("A", x, y)],
                           reads=[b.at("B", x, y)], work=1)
    return b.build()


def main():
    program = build_demo()
    machine = default_machine()

    # 1. The compiler: which reads need Time-Read protection?
    marking = mark_program(program)
    time_reads = sum(1 for m in marking.tpi.values()
                     if m is RefMark.TIME_READ)
    print(f"compiler: {time_reads}/{len(marking.tpi)} read sites marked "
          f"Time-Read across {marking.stats['epochs']} static epochs "
          f"({marking.stats['epochs.parallel']} parallel)\n")

    # 2. The simulator: all four schemes over one prepared run.
    run = prepare(program, machine)
    print(f"trace: {run.trace.n_events} memory events, "
          f"{run.trace.n_epochs} dynamic epochs on {machine.n_procs} procs\n")
    for scheme, result in simulate_all(run).items():
        print(result.summary())
        print()

    # 3. The same comparison on a paper benchmark.
    ocean = prepare(build_workload("ocean"), machine)
    results = simulate_all(ocean)
    base = results["base"].exec_cycles
    print("speedup over BASE on the OCEAN workload:")
    for scheme, result in results.items():
        print(f"  {scheme:5s} {base / result.exec_cycles:5.2f}x "
              f"(miss rate {100 * result.miss_rate:.1f}%)")


if __name__ == "__main__":
    main()
