#!/usr/bin/env python3
"""Walk through the compiler analyses on a program with every interesting
feature: cross-epoch staleness, same-epoch dependences, intra-task reuse,
procedure calls, critical sections, and an induction scalar.

Run:  python examples/compiler_walkthrough.py
"""

from repro import InterprocMode, MarkingOptions, ProgramBuilder, RefMark, mark_program
from repro.compiler.epochs import build_epoch_graph
from repro.compiler.interproc import procedure_summaries


def build():
    n = 16
    b = ProgramBuilder("walkthrough", params={"T": 3})
    b.array("A", (n,))
    b.array("B", (n,))
    b.array("hist", (4,))
    refs = {}

    with b.procedure("scale_b"):
        # A pure-serial callee: interprocedural analysis keeps its reads
        # from forcing whole-cache invalidation at the call site.
        refs["callee_read"] = b.at("B", 0)
        b.stmt(reads=[refs["callee_read"]], writes=[b.at("B", 0)], work=1)

    with b.procedure("main"):
        with b.doall("i", 0, n - 1, label="produce") as i:
            b.stmt(writes=[b.at("A", i)], work=1)
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("j", 1, n - 1, label="consume") as j:
                refs["neighbour"] = b.at("A", j - 1)  # cross-iteration
                refs["own_prev"] = b.at("A", j)       # written below
                b.stmt(reads=[refs["neighbour"]], writes=[b.at("B", j)],
                       work=2)
                b.stmt(writes=[b.at("A", j)], reads=[refs["own_prev"]],
                       work=1)
                refs["after_write"] = b.at("A", j)    # validated by the write
                b.stmt(reads=[refs["after_write"]], writes=[b.at("B", j)],
                       work=1)
                with b.critical("hlock"):
                    refs["critical"] = b.at("hist", 0)
                    b.stmt(reads=[refs["critical"]],
                           writes=[b.at("hist", 0)], work=1)
            b.call("scale_b")
    return b.build(), refs


def describe(marking, refs):
    for name, ref in sorted(refs.items()):
        mark = marking.tpi_mark(ref.site)
        flavor = ""
        if mark is RefMark.TIME_READ:
            flavor = " (strict)" if marking.is_strict(ref.site) else " (timestamp)"
        print(f"  {name:<13} {ref}  ->  {mark.value}{flavor}")


def main():
    program, refs = build()

    graph = build_epoch_graph(program)
    print("epoch flow graph:")
    for epoch in graph.epochs:
        kind = "parallel" if epoch.parallel else "serial"
        succ = sorted(graph.succ[epoch.id])
        print(f"  epoch {epoch.id} [{kind:8s}] {epoch.label or '(loop header)':<22} -> {succ}")
    print()

    print("marking decisions (full interprocedural analysis):")
    marking = mark_program(program)
    describe(marking, refs)
    print(f"  stats: {marking.stats['sites.time_read.tpi']} Time-Read sites, "
          f"{marking.stats['sites.strict']} strict\n")

    print("ablation: no interprocedural analysis (procedure-boundary kill):")
    none_mode = mark_program(program,
                             opts=MarkingOptions(interproc=InterprocMode.NONE))
    describe(none_mode, refs)
    print()

    print("interprocedural MOD/USE summaries:")
    for name, summary in procedure_summaries(program).items():
        mods = {a: str(s.union_all()) for a, s in summary.mod.items()}
        print(f"  {name:<12} MOD {mods}")


if __name__ == "__main__":
    main()
