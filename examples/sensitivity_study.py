#!/usr/bin/env python3
"""Design-space sensitivity study on one workload (OCEAN by default):
timetag width, line size, cache size, scheduling policy, and write-buffer
organization.

Run:  python examples/sensitivity_study.py [workload]
"""

import sys

from repro import (
    CacheConfig,
    SchedulePolicy,
    TpiConfig,
    TrafficClass,
    WriteBufferKind,
    build_workload,
    default_machine,
    prepare,
    simulate,
)


def row(label, result):
    write = result.traffic.get(TrafficClass.WRITE, 0)
    print(f"  {label:<28} cycles={result.exec_cycles:>9}  "
          f"miss={100 * result.miss_rate:6.2f}%  "
          f"misslat={result.avg_miss_latency:6.1f}  "
          f"writes={write:>8}  resets={result.resets}")


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    program = build_workload(name)
    base = default_machine()
    print(f"sensitivity study on {name} (TPI unless noted)\n")

    print("timetag width (two-phase reset frequency halves per extra bit):")
    for bits in (2, 3, 4, 6, 8):
        machine = base.with_(tpi=TpiConfig(timetag_bits=bits))
        row(f"k={bits}", simulate(prepare(program, machine), "tpi"))

    print("\nline size (spatial locality vs per-word tag cost):")
    for words in (1, 4, 8, 16):
        machine = base.with_(cache=CacheConfig(line_words=words))
        row(f"{words * 4}-byte lines TPI",
            simulate(prepare(program, machine), "tpi"))
        row(f"{words * 4}-byte lines HW",
            simulate(prepare(program, machine), "hw"))

    print("\ncache size:")
    for kb in (16, 64, 256):
        machine = base.with_(cache=CacheConfig(size_bytes=kb * 1024))
        row(f"{kb} KB", simulate(prepare(program, machine), "tpi"))

    print("\nscheduling policy (locality of the iteration->processor map):")
    for policy in SchedulePolicy:
        machine = base.with_(schedule=policy)
        row(policy.value, simulate(prepare(program, machine), "tpi"))

    print("\nwrite buffer organization:")
    for kind in WriteBufferKind:
        machine = base.with_(write_buffer=kind)
        row(kind.value, simulate(prepare(program, machine), "tpi"))


if __name__ == "__main__":
    main()
