"""Tests for the Figure 5 storage-overhead model."""

from repro.overhead import (
    figure5_table,
    full_map_overhead,
    limitless_overhead,
    render_figure5,
    tpi_overhead,
)


class TestFormulas:
    def test_full_map(self):
        row = full_map_overhead(n_procs=1024, cache_lines=16 * 1024,
                                memory_blocks=512 * 1024)
        assert row.cache_sram_bits == 2 * 16 * 1024 * 1024
        assert row.memory_dram_bits == 1026 * 512 * 1024 * 1024

    def test_limitless_scales_with_pointers(self):
        small = limitless_overhead(64, 1024, 4096, pointers=4)
        large = limitless_overhead(64, 1024, 4096, pointers=16)
        assert large.memory_dram_bits == 3 * small.memory_dram_bits

    def test_tpi_no_dram(self):
        row = tpi_overhead(n_procs=64, cache_lines=1024, line_words=4)
        assert row.memory_dram_bits == 0
        assert row.cache_sram_bits == 8 * 4 * 1024 * 64

    def test_tpi_scales_with_tag_width(self):
        k4 = tpi_overhead(64, 1024, 4, timetag_bits=4)
        k8 = tpi_overhead(64, 1024, 4, timetag_bits=8)
        assert k8.cache_sram_bits == 2 * k4.cache_sram_bits


class TestPaperOperatingPoint:
    def test_quoted_totals(self):
        rows = {r.scheme: r for r in figure5_table()}
        mb = 8 << 20
        gb = 8 << 30
        # Paper: 4 MB SRAM for the directories, 64 MB for TPI.
        assert rows["full-map"].cache_sram_bits == 4 * mb
        assert rows["two-phase invalidation"].cache_sram_bits == 64 * mb
        # Paper: 64.5 GB full-map DRAM; our formula gives 64.1 GB.
        assert 60 * gb <= rows["full-map"].memory_dram_bits <= 70 * gb
        assert rows["two-phase invalidation"].memory_dram_bits == 0

    def test_tpi_cheapest_total_at_scale(self):
        rows = {r.scheme: r for r in figure5_table()}
        assert (rows["two-phase invalidation"].total_bits
                < rows["full-map"].total_bits)
        assert (rows["two-phase invalidation"].total_bits
                < rows["LimitLess DIR_10"].total_bits)


class TestRendering:
    def test_render_contains_all_schemes(self):
        text = render_figure5(figure5_table())
        assert "full-map" in text
        assert "LimitLess" in text
        assert "two-phase invalidation" in text
        assert "64.0 MB SRAM" in text

    def test_pretty_none(self):
        row = tpi_overhead(1, 0, 4)
        assert row.pretty == "none"


class TestScalingCurve:
    def test_limited_pointer_charges_real_pointer_widths(self):
        from repro.overhead import limited_pointer_overhead

        p64 = limited_pointer_overhead(64, 1024, 4096, pointers=4)
        p4096 = limited_pointer_overhead(4096, 1024, 4096, pointers=4)
        # Per-block bits grow with log2(P): 4*6+2=26 at P=64, 4*12+2=50
        # at P=4096.
        assert p64.memory_dram_bits == 26 * 4096 * 64
        assert p4096.memory_dram_bits == 50 * 4096 * 4096

    def test_tardis_has_no_sharer_list(self):
        from repro.overhead import tardis_overhead

        row = tardis_overhead(1024, 1024, 4096, ts_bits=8)
        # wts + rts + owner(log2(1025) -> 11 bits) per block.
        assert row.memory_dram_bits == (16 + 11) * 4096 * 1024
        assert row.cache_sram_bits == 16 * 1024 * 1024

    def test_curve_growth_rates(self):
        from repro.overhead import CURVE_SCHEMES, figure5_curve

        curve = {point["n_procs"]: point["bits_per_line"]
                 for point in figure5_curve(procs=(64, 1024, 16384))}
        for point in curve.values():
            assert set(point) == set(CURVE_SCHEMES)
        # Full-map grows linearly in P, the pointer/timestamp schemes
        # logarithmically, TPI not at all.
        assert curve[16384]["full-map"] > 200 * curve[64]["full-map"]
        for scheme in ("limited-pointer", "LimitLESS", "Tardis"):
            assert curve[16384][scheme] < 4 * curve[64][scheme]
        assert curve[16384]["TPI"] == curve[64]["TPI"]
        # Ordering at scale: TPI < Tardis/limited-pointer < full-map.
        at_scale = curve[16384]
        assert at_scale["TPI"] < at_scale["Tardis"] < at_scale["full-map"]
        assert at_scale["TPI"] < at_scale["limited-pointer"] \
            < at_scale["full-map"]
