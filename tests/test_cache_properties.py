"""Property tests on the cache structure itself."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.memsys.cache import Cache


def make_cache(lines=8, assoc=2, line_words=4):
    return Cache(CacheConfig(size_bytes=lines * line_words * 4,
                             line_words=line_words, associativity=assoc))


@st.composite
def line_sequences(draw):
    return draw(st.lists(st.integers(0, 63), min_size=1, max_size=120))


class TestCacheInvariants:
    @settings(max_examples=100, deadline=None)
    @given(line_sequences(), st.sampled_from([1, 2, 4]))
    def test_no_duplicate_lines(self, lines, assoc):
        """A line address never occupies two ways at once."""
        cache = make_cache(lines=8, assoc=assoc)
        for line in lines:
            if cache.probe(line) is None:
                cache.install(line)
            resident = [int(tag) for row in cache.tags for tag in row
                        if tag != -1]
            assert len(resident) == len(set(resident))

    @settings(max_examples=100, deadline=None)
    @given(line_sequences())
    def test_install_makes_line_resident(self, lines):
        cache = make_cache()
        for line in lines:
            loc, evicted, _ = cache.install(line)
            assert cache.probe(line) == loc
            if evicted is not None:
                assert cache.probe(evicted) is None

    @settings(max_examples=100, deadline=None)
    @given(line_sequences())
    def test_occupancy_bounded(self, lines):
        cache = make_cache(lines=8, assoc=2)
        for line in lines:
            if cache.probe(line) is None:
                cache.install(line)
            assert cache.occupancy <= 8

    @settings(max_examples=60, deadline=None)
    @given(line_sequences())
    def test_lines_map_to_their_set(self, lines):
        """Every resident line sits in the set its address selects."""
        cache = make_cache(lines=8, assoc=2)
        for line in lines:
            if cache.probe(line) is None:
                cache.install(line)
            for s in range(cache.n_sets):
                for w in range(cache.assoc):
                    tag = int(cache.tags[s, w])
                    if tag != -1:
                        assert tag % cache.n_sets == s

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    min_size=1, max_size=80))
    def test_mru_line_never_evicted_next(self, ops):
        """Installing a new line never evicts the most recently used one
        (with associativity >= 2)."""
        cache = make_cache(lines=8, assoc=2)
        last_touched = None
        for line, is_install in ops:
            loc = cache.probe(line)
            if loc is not None:
                cache.touch(loc)
                last_touched = int(cache.tags[loc.set_index, loc.way])
            elif is_install:
                _, evicted, _ = cache.install(line)
                if evicted is not None and last_touched is not None:
                    assert evicted != last_touched or evicted == line
                last_touched = line
