"""Micro-tests for the Tardis timestamp/lease scheme (extension).

The pure decision rules (:mod:`repro.coherence.tardis_rules`) serve as
the oracle: scheme behavior — lease hits, data-less renewals, write
re-validation, timestamp-wrap rebasing — is checked against the rules
applied to the scheme's own pre-access state.
"""

import numpy as np
import pytest

from repro.coherence import tardis_rules
from repro.coherence.api import SimContext, make_scheme
from repro.common.config import (
    CacheConfig,
    ConfigError,
    MachineConfig,
    TardisConfig,
)
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking
from repro.ir import ProgramBuilder
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout


def make_ctx(n_procs=3, words=256, line_words=4, lines=32,
             lease=8, timestamp_bits=8):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words),
        tardis=TardisConfig(lease=lease, timestamp_bits=timestamp_bits))
    b = ProgramBuilder("rig")
    b.array("M", (words,))
    with b.procedure("main"):
        pass
    layout = MemoryLayout(b.build(), n_procs, line_words)
    return SimContext(machine=machine,
                      marking=Marking(tpi={}, sc={}, graph=EpochGraph()),
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def new_tardis(**kw):
    ctx = make_ctx(**kw)
    return make_scheme("tardis", ctx), ctx


def barrier(scheme, ctx):
    scheme.end_epoch(None)
    ctx.shadow.barrier()


class TestRules:
    """The pure rules, pinned directly."""

    def test_lease_hit_is_rts_at_least_pts(self):
        assert tardis_rules.lease_hit(5, 5)
        assert tardis_rules.lease_hit(5, 9)
        assert not tardis_rules.lease_hit(5, 4)

    def test_lease_grant_extends_never_shrinks(self):
        # The home lease is a max: a late low-pts reader cannot retract
        # an earlier reader's longer lease.
        assert tardis_rules.lease_grant(0, 0, 8) == 8
        assert tardis_rules.lease_grant(2, 20, 8) == 20

    def test_write_orders_after_every_lease(self):
        assert tardis_rules.write_timestamp(3, 10) == 11
        assert tardis_rules.write_timestamp(15, 10) == 15

    def test_renewal_requires_unwritten_and_unclamped(self):
        assert tardis_rules.renewal_ok(0, 0, -1)      # never written
        assert tardis_rules.renewal_ok(7, 7, 3)       # unwritten since fill
        assert not tardis_rules.renewal_ok(5, 9, -1)  # written since fill
        # A wts clamped to the base proves nothing: both sides sitting at
        # the base is exactly the post-rebase ambiguity renewal must
        # refuse (the stale-renewal safety the model checker mutates).
        assert not tardis_rules.renewal_ok(3, 3, 3)

    def test_rebase_round_trip(self):
        modulus = 1 << 4
        pts = 40
        assert tardis_rules.rebase_needed(pts, 4, 20, modulus)
        base = tardis_rules.rebase_base(pts, modulus)
        assert base == pts - (modulus // 2 - 1)
        # After clamping, every timestamp fits the representable window.
        ts = np.array([0, base - 1, base, pts])
        clamped = tardis_rules.clamp(ts, base)
        assert clamped.min() == base
        assert int(clamped.max()) - base < modulus
        assert not tardis_rules.rebase_needed(pts, 4, base, modulus)

    def test_pts_join_is_max(self):
        assert tardis_rules.pts_join([3, 9, 1]) == 9


class TestConfig:
    def test_lease_must_fit_timestamp_window(self):
        with pytest.raises(ConfigError):
            TardisConfig(lease=8, timestamp_bits=3)  # max is 2^(3-1)-1
        with pytest.raises(ConfigError):
            TardisConfig(lease=0)
        assert TardisConfig(lease=3, timestamp_bits=3).modulus == 8


class TestLeases:
    def test_second_read_hits_within_lease(self):
        t, _ = new_tardis()
        assert t.read(0, 8, 0, True, False).kind is MissKind.COLD
        r = t.read(0, 8, 0, True, False)
        assert r.kind is MissKind.HIT
        # The oracle agrees: the slot's rts covers the current pts.
        loc = t.caches[0].probe(t.caches[0].split(8)[0])
        assert tardis_rules.lease_hit(
            t.pts[0], int(t.rts_a[0][loc.set_index, loc.way]))

    def test_no_invalidations_readers_keep_hitting_in_epoch(self):
        # The defining Tardis property: a write sends no messages to
        # sharers; their leases serve the old value at an earlier
        # logical time until the barrier joins pts.
        t, _ = new_tardis()
        t.read(0, 8, 0, True, False)
        t.write(1, 8, 0, True, False)
        assert t.read(0, 8, 0, True, False).kind is MissKind.HIT

    def test_barrier_join_expires_stale_lease(self):
        t, ctx = new_tardis()
        t.read(0, 8, 0, True, False)
        t.write(1, 8, 0, True, False)
        barrier(t, ctx)
        r = t.read(0, 8, 0, True, False)
        assert r.kind is MissKind.TRUE_SHARING
        assert r.version == 1
        assert t.lease_expiries == 1 and t.lease_renewals == 0

    def test_false_sharing_when_other_word_written(self):
        t, ctx = new_tardis()
        t.read(0, 8, 0, True, False)
        t.write(1, 9, 0, True, False)  # same line, different word
        barrier(t, ctx)
        assert t.read(0, 8, 0, True, False).kind is MissKind.FALSE_SHARING

    def test_expired_unwritten_lease_renews_without_data(self):
        t, ctx = new_tardis()
        t.read(1, 0, 0, True, False)       # lease on line A: rts = lease
        for _ in range(t.lease + 2):       # logical time outruns the lease
            t.write(0, 16, 0, True, False)
        barrier(t, ctx)
        before = t.ctx.stats  # noqa: F841  (stats unused, keep ctx alive)
        r = t.read(1, 0, 0, True, False)
        assert r.kind is MissKind.CONSERVATIVE
        assert r.read_words == 0 and r.coherence_words == 2
        assert t.lease_renewals == 1
        # The renewal decision came straight from the rule.
        assert tardis_rules.renewal_ok(0, t.mem_wts.get(0, 0), t.base)

    def test_write_on_stale_copy_refetches_before_stamping(self):
        # Regression for the subtlest protocol bug: a write stamps the
        # whole line current through ts_w, so a resident copy that may
        # have missed a remote write (renewal_ok false) must re-fetch
        # first or it would re-lease stale sibling words.
        t, ctx = new_tardis()
        t.read(0, 8, 0, True, False)       # proc 0 caches the line
        t.write(1, 9, 0, True, False)      # remote write, other word
        barrier(t, ctx)
        r = t.write(0, 8, 0, True, False)  # proc 0 writes its own word
        assert r.read_words > 0            # the re-validation fetch
        r2 = t.read(0, 9, 0, True, False)  # sibling word is current
        assert r2.kind is MissKind.HIT and r2.version == 1

    def test_invariants_hold_through_mixed_sequence(self):
        t, ctx = new_tardis(n_procs=4)
        for step in range(40):
            proc = step % 4
            addr = (step * 7) % 64
            if step % 3 == 0:
                t.write(proc, addr, 0, True, False)
            else:
                t.read(proc, addr, 0, True, False)
            t.check_invariants()
            if step % 10 == 9:
                barrier(t, ctx)


class TestRebase:
    def test_bounded_timestamps_force_rebases(self):
        t, ctx = new_tardis(timestamp_bits=4, lease=4)
        t.read(1, 0, 0, True, False)       # ancient lease on line A
        for _ in range(30):                # mint timestamps well past 2^4
            t.write(0, 16, 0, True, False)
            barrier(t, ctx)
        assert t.rebases >= 2
        t.check_invariants()
        # Post-rebase the ancient copy is clamp-ambiguous: unwritten, but
        # the proof is gone, so it re-fetches as CONSERVATIVE — never a
        # (stale) renewal, never a wrong version.
        r = t.read(1, 0, 0, True, False)
        assert r.kind is MissKind.CONSERVATIVE
        assert r.read_words > 0 and r.version == 0
        assert t.lease_renewals == 0

    def test_all_timestamps_stay_in_window_after_rebase(self):
        t, ctx = new_tardis(timestamp_bits=4, lease=4)
        for step in range(50):
            # Reads lease scattered lines; repeated writes to one line
            # chain through its lease and keep logical time advancing.
            t.read(step % 3, (step % 4) * 4, 0, True, False)
            t.write(step % 3, 64, 0, True, False)
            if step % 5 == 4:
                barrier(t, ctx)
        assert t.rebases >= 2
        for proc in range(3):
            assert int(t.rts_a[proc].min()) >= t.base
            assert int(t.wts_a[proc].min()) >= t.base
        for ts in list(t.mem_rts.values()) + list(t.mem_wts.values()):
            assert ts >= t.base


class TestTardisEndToEnd:
    def test_workload_runs_coherently(self):
        from repro.common.config import default_machine
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        machine = default_machine().with_(n_procs=4)
        run = prepare(build_workload("ocean", size="small"), machine)
        r = simulate(run, "tardis")
        # Leases expire and renew; no invalidation machinery exists.
        assert r.extra["lease_expiries"] > 0
        assert r.extra["lease_renewals"] > 0

    def test_narrow_timestamps_rebase_on_workload(self):
        from repro.common.config import default_machine
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        machine = default_machine().with_(
            n_procs=4, tardis=TardisConfig(lease=4, timestamp_bits=4))
        run = prepare(build_workload("ocean", size="small"), machine)
        r = simulate(run, "tardis")
        assert r.extra["rebases"] > 0
