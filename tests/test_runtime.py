"""Tests for the parallel execution engine and artifact cache."""

import pickle

import pytest

from repro.common.config import CacheConfig, default_machine
from repro.runtime import (
    ArtifactCache,
    Job,
    ParallelExecutor,
    Telemetry,
    effective_jobs,
    execute_jobs,
    group_by_prepare,
    jobs_for_schemes,
    program_digest,
    session,
)
from repro.runtime.cache import KIND_RESULT
from repro.sim.runner import prepare, simulate, simulate_all
from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits
from repro.workloads import build_workload

MACHINE = default_machine().with_(n_procs=4, epoch_setup_cycles=5,
                                  task_dispatch_cycles=1)
SCHEMES = ("base", "sc", "tpi", "hw")


def small(name):
    return build_workload(name, size="small")


class TestFingerprints:
    def test_stable_across_rebuilds(self):
        a = Job(program=small("ocean"), scheme="tpi", machine=MACHINE)
        b = Job(program=small("ocean"), scheme="tpi", machine=MACHINE)
        assert a.fingerprint() == b.fingerprint()
        assert a.prepare_fingerprint() == b.prepare_fingerprint()

    def test_scheme_changes_result_key_only(self):
        a = Job(program=small("ocean"), scheme="tpi", machine=MACHINE)
        b = Job(program=small("ocean"), scheme="hw", machine=MACHINE)
        assert a.prepare_fingerprint() == b.prepare_fingerprint()
        assert a.fingerprint() != b.fingerprint()

    def test_machine_config_differences_are_distinct(self):
        machines = [
            MACHINE,
            MACHINE.with_(n_procs=8),
            MACHINE.with_(base_miss_latency=120),
            MACHINE.with_(cache=CacheConfig(size_bytes=32 * 1024)),
        ]
        program = small("ocean")
        keys = {Job(program=program, scheme="tpi", machine=m).fingerprint()
                for m in machines}
        assert len(keys) == len(machines)

    def test_program_content_matters(self):
        assert (program_digest(small("ocean"))
                != program_digest(small("trfd")))
        assert (program_digest(small("ocean"))
                != program_digest(build_workload("ocean", size="default")))

    def test_params_and_tag_handling(self):
        base = Job(program=small("ocean"), scheme="tpi", machine=MACHINE)
        tagged = Job(program=small("ocean"), scheme="tpi", machine=MACHINE,
                     tag={"cell": "a"})
        assert base.fingerprint() == tagged.fingerprint()

    def test_group_by_prepare_dedups(self):
        jobs = jobs_for_schemes(small("ocean"), SCHEMES, MACHINE)
        jobs += jobs_for_schemes(small("ocean"), ("tpi",),
                                 MACHINE.with_(n_procs=8))
        groups = group_by_prepare(jobs)
        assert len(groups) == 2
        assert [index for _, members in groups
                for index, _ in members] == [0, 1, 2, 3, 4]


class TestExecutor:
    @pytest.mark.parametrize("workload", ["ocean", "trfd"])
    def test_serial_parallel_parity(self, workload):
        """jobs=1 and jobs=4 produce identical SimResults for every scheme."""
        jobs = jobs_for_schemes(small(workload), SCHEMES, MACHINE)
        serial = execute_jobs(jobs, n_jobs=1)
        parallel = execute_jobs(jobs, n_jobs=4)
        assert serial == parallel
        direct = [simulate(prepare(small(workload), MACHINE), scheme)
                  for scheme in SCHEMES]
        assert serial == direct

    def test_parallel_many_groups_parity(self):
        jobs = (jobs_for_schemes(small("ocean"), ("tpi", "hw"), MACHINE)
                + jobs_for_schemes(small("trfd"), ("tpi", "hw"), MACHINE)
                + jobs_for_schemes(small("ocean"), ("tpi",),
                                   MACHINE.with_(n_procs=2)))
        serial = execute_jobs(jobs, n_jobs=1)
        parallel = execute_jobs(jobs, n_jobs=3)
        assert serial == parallel

    def test_results_in_input_order(self):
        jobs = jobs_for_schemes(small("ocean"), SCHEMES, MACHINE)
        results = execute_jobs(jobs, n_jobs=2)
        assert [r.scheme for r in results] == list(SCHEMES)

    def test_serial_shares_front_end(self):
        telemetry = Telemetry()
        jobs = jobs_for_schemes(small("ocean"), SCHEMES, MACHINE)
        execute_jobs(jobs, n_jobs=1, telemetry=telemetry)
        assert telemetry.traces_generated == 1

    def test_worker_error_propagates(self):
        jobs = jobs_for_schemes(small("ocean"), ("nosuch",), MACHINE)
        with pytest.raises(Exception):
            execute_jobs(jobs, n_jobs=2)

    def test_effective_jobs(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(1) == 1
        assert effective_jobs(None) >= 1
        assert effective_jobs(0) >= 1


class TestCache:
    def test_round_trip_hit_and_equal(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        jobs = jobs_for_schemes(small("ocean"), ("tpi", "hw"), MACHINE)
        cold = Telemetry()
        first = execute_jobs(jobs, n_jobs=1, cache=cache, telemetry=cold)
        assert cold.result_misses == 2 and cold.result_hits == 0
        warm = Telemetry()
        second = execute_jobs(jobs, n_jobs=1, cache=cache, telemetry=warm)
        assert warm.result_hits == 2 and warm.result_misses == 0
        assert warm.traces_generated == 0
        assert first == second

    def test_warm_cache_zero_traces_parallel(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        jobs = (jobs_for_schemes(small("ocean"), ("tpi", "hw"), MACHINE)
                + jobs_for_schemes(small("trfd"), ("tpi", "hw"), MACHINE))
        execute_jobs(jobs, n_jobs=2, cache=cache)
        warm = Telemetry()
        execute_jobs(jobs, n_jobs=2, cache=cache, telemetry=warm)
        assert warm.traces_generated == 0
        assert warm.result_hits == 4

    def test_corrupt_entry_is_miss_not_crash(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        job = jobs_for_schemes(small("ocean"), ("tpi",), MACHINE)[0]
        [result] = execute_jobs([job], n_jobs=1, cache=cache)
        path = cache._path(KIND_RESULT, job.fingerprint())
        path.write_bytes(path.read_bytes()[:10])  # truncate -> bad pickle
        telemetry = Telemetry()
        [again] = execute_jobs([job], n_jobs=1, cache=cache,
                               telemetry=telemetry)
        assert telemetry.result_hits == 0 and telemetry.result_misses == 1
        assert again == result

    def test_corrupt_entry_removed_then_rewritten(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store(KIND_RESULT, "ab" * 32, {"x": 1})
        path = cache._path(KIND_RESULT, "ab" * 32)
        path.write_bytes(b"not a pickle")
        assert cache.load(KIND_RESULT, "ab" * 32) is None
        assert not path.exists()

    def test_stats_and_clear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        execute_jobs(jobs_for_schemes(small("ocean"), ("tpi",), MACHINE),
                     n_jobs=1, cache=cache)
        stats = cache.stats()
        assert stats.total_entries == 2  # one prepared + one result
        assert stats.total_bytes > 0
        assert "entries" in stats.render()
        assert cache.clear() == 2
        assert cache.stats().total_entries == 0

    def test_unpicklable_payloads_degrade_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        assert cache.store(KIND_RESULT, "cd" * 32, lambda: None) is False
        assert cache.load(KIND_RESULT, "cd" * 32) is None


class TestSweepIntegration:
    def _sweep(self, schemes=("tpi", "hw")):
        sweep = Sweep(small("ocean"), schemes=schemes, base=MACHINE)
        sweep.add_axis("line", axis_cache_lines([1, 4]))
        sweep.add_axis("k", axis_timetag_bits([2, 8]))
        return sweep

    def test_serial_parallel_parity(self):
        serial = self._sweep().run()
        parallel = self._sweep().run(jobs=2)
        assert [(p.labels, p.scheme, p.result) for p in serial] == \
               [(p.labels, p.scheme, p.result) for p in parallel]

    def test_front_end_shared_across_backend_variants(self):
        telemetry = Telemetry()
        self._sweep().run(telemetry=telemetry)
        # 4 grid cells x 2 schemes = 8 jobs; line size and timetag width
        # are back-end-only fields, so all 8 share ONE trace (the
        # fingerprint split) and gang-prime over it.
        assert telemetry.jobs_submitted == 8
        assert telemetry.traces_generated == 1
        assert telemetry.traces_shared == 7
        from repro.sim.engine import resolve_engine
        if resolve_engine(MACHINE) == "reference":
            assert telemetry.gang_width == 0  # reference members never prime
        else:
            assert telemetry.gang_width == 4
            assert telemetry.phase_s.get("gang", 0.0) > 0.0

    def test_warm_cache_sweep(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        self._sweep().run(jobs=2, cache=cache)
        telemetry = Telemetry()
        points = self._sweep().run(jobs=2, cache=cache, telemetry=telemetry)
        assert telemetry.traces_generated == 0
        assert telemetry.result_hits == 8
        assert points[0].result == self._sweep().run()[0].result


class TestSimulateAllIntegration:
    def test_parallel_matches_serial(self):
        program = small("trfd")
        serial = simulate_all(program, SCHEMES, MACHINE)
        parallel = simulate_all(program, SCHEMES, MACHINE, jobs=2)
        assert serial == parallel

    def test_prepared_run_not_rebuilt(self):
        run = prepare(small("ocean"), MACHINE)
        telemetry = Telemetry()
        results = simulate_all(run, ("tpi", "hw"), jobs=2,
                               telemetry=telemetry)
        assert telemetry.traces_generated == 0
        assert results["tpi"] == simulate(run, "tpi")


class TestSession:
    def test_experiment_warm_cache_generates_no_traces(self, tmp_path):
        from repro.experiments import run_experiment

        cache = ArtifactCache(tmp_path)
        plain = run_experiment("fig11_miss_rates", size="small")
        cold = Telemetry()
        first = run_experiment("fig11_miss_rates", size="small",
                               cache=cache, telemetry=cold)
        assert cold.traces_generated > 0
        warm = Telemetry()
        second = run_experiment("fig11_miss_rates", size="small",
                                cache=cache, telemetry=warm)
        assert warm.traces_generated == 0
        assert warm.result_hits > 0
        assert plain.to_dict() == first.to_dict() == second.to_dict()

    def test_session_scoping(self):
        from repro.runtime import current_session

        assert current_session() is None
        with session(jobs=1) as active:
            assert current_session() is active
        assert current_session() is None


class TestTelemetryReport:
    def test_report_shapes(self, tmp_path):
        telemetry = Telemetry()
        execute_jobs(jobs_for_schemes(small("ocean"), ("tpi",), MACHINE),
                     n_jobs=1, cache=ArtifactCache(tmp_path),
                     telemetry=telemetry)
        report = telemetry.report()
        payload = report.to_dict()
        assert payload["jobs"] == 1
        assert payload["cache"]["result_misses"] == 1
        assert payload["traces_generated"] == 1
        assert payload["per_job"][0]["scheme"] == "tpi"
        assert "run report" in report.render()
        out = tmp_path / "report.json"
        report.save(out)
        assert out.exists()

    def test_artifacts_pickle_roundtrip(self, tmp_path):
        [result] = execute_jobs(
            jobs_for_schemes(small("ocean"), ("tpi",), MACHINE), n_jobs=1)
        assert pickle.loads(pickle.dumps(result)) == result
