"""Unit tests for the diagnostics framework (rules, findings, reports)."""

import pytest

from repro.analysis.diagnostics import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    RULES,
    Diagnostic,
    Report,
    Severity,
    rule,
)


class TestRules:
    def test_catalogue_ids_match_keys(self):
        for rule_id, entry in RULES.items():
            assert entry.id == rule_id

    def test_lookup(self):
        assert rule("TPI001").severity is Severity.ERROR
        assert rule("TPI002").severity is Severity.WARNING
        assert rule("ANA001").severity is Severity.INFO
        with pytest.raises(KeyError):
            rule("NOPE999")

    def test_families_present(self):
        families = {rule_id[:3] for rule_id in RULES}
        assert {"VAL", "TPI", "SC0", "ANA", "SAN"} <= families


class TestDiagnostic:
    def test_severity_follows_rule(self):
        d = Diagnostic("TPI001", "under-marked")
        assert d.severity is Severity.ERROR
        assert d.rule.title == "under-marked read (TPI)"

    def test_severity_override(self):
        d = Diagnostic("TPI002", "downgraded", severity_override=Severity.INFO)
        assert d.severity is Severity.INFO

    def test_location_and_format(self):
        d = Diagnostic("TPI001", "bad read", procedure="sweep", site=7,
                       epoch="vort")
        assert d.location() == "sweep:site 7:epoch vort"
        assert d.format() == "error TPI001 [sweep:site 7:epoch vort]: bad read"

    def test_format_without_location(self):
        d = Diagnostic("VAL001", "entry missing")
        assert d.format() == "error VAL001: entry missing"

    def test_to_dict_skips_absent_fields(self):
        d = Diagnostic("SC001", "msg", site=3, detail={"mode": "inline"})
        payload = d.to_dict()
        assert payload["rule"] == "SC001"
        assert payload["severity"] == "error"
        assert payload["site"] == 3
        assert payload["detail"] == {"mode": "inline"}
        assert "procedure" not in payload
        assert "epoch" not in payload


class TestReport:
    def _mixed(self):
        report = Report(subject="demo")
        report.add(Diagnostic("TPI002", "warn one", site=5))
        report.extend([Diagnostic("TPI001", "err one", site=9),
                       Diagnostic("ANA001", "note", site=1)])
        return report

    def test_counts_and_accessors(self):
        report = self._mixed()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert [d.rule_id for d in report.errors] == ["TPI001"]
        assert [d.rule_id for d in report.warnings] == ["TPI002"]
        assert report.has_errors

    def test_exit_codes(self):
        report = self._mixed()
        assert report.exit_code() == EXIT_FINDINGS
        warnings_only = Report()
        warnings_only.add(Diagnostic("TPI002", "w"))
        assert warnings_only.exit_code() == EXIT_CLEAN
        assert warnings_only.exit_code(strict=True) == EXIT_FINDINGS
        assert Report().exit_code(strict=True) == EXIT_CLEAN

    def test_render_orders_by_severity(self):
        lines = self._mixed().render().splitlines()
        assert lines[0].startswith("lint demo: 1 error(s), 1 warning(s)")
        assert "TPI001" in lines[1]
        assert "TPI002" in lines[2]
        assert "ANA001" in lines[3]

    def test_render_can_hide_info(self):
        text = self._mixed().render(show_info=False)
        assert "ANA001" not in text
        assert "TPI001" in text

    def test_summary_includes_selected_meta(self):
        report = Report(subject="x")
        report.meta.update(modes="inline", cache="hit", internal="nope")
        summary = report.summary()
        assert "modes=inline" in summary and "cache=hit" in summary
        assert "internal" not in summary

    def test_to_dict_round_trip_fields(self):
        payload = self._mixed().to_dict()
        assert payload["subject"] == "demo"
        assert payload["counts"]["error"] == 1
        assert len(payload["diagnostics"]) == 3
