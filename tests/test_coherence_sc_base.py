"""Micro-tests for the SC (cache-bypass) and BASE schemes."""

import pytest

from repro.coherence.api import SimContext, make_scheme
from repro.common.config import CacheConfig, MachineConfig
from repro.common.errors import ConfigError
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking, RefMark
from repro.ir import ProgramBuilder
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout

BYPASS = 0
NORMAL = 1


def make_ctx(n_procs=2, words=256, line_words=4, lines=32):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words))
    b = ProgramBuilder("rig")
    b.array("M", (words,))
    with b.procedure("main"):
        pass
    layout = MemoryLayout(b.build(), n_procs, line_words)
    marking = Marking(
        tpi={BYPASS: RefMark.TIME_READ, NORMAL: RefMark.READ},
        sc={BYPASS: RefMark.TIME_READ, NORMAL: RefMark.READ},
        graph=EpochGraph())
    return SimContext(machine=machine, marking=marking,
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


class TestSc:
    def test_bypass_never_caches(self):
        sc = make_scheme("sc", make_ctx())
        r1 = sc.read(0, 8, BYPASS, True, False)
        r2 = sc.read(0, 8, BYPASS, True, False)
        assert r1.kind is MissKind.COLD
        assert r2.kind is MissKind.REPLACEMENT  # still not cached
        assert r1.read_words == r2.read_words == 2  # word fetch, no line

    def test_bypass_sees_current_data(self):
        ctx = make_ctx()
        sc = make_scheme("sc", ctx)
        ctx.shadow.write(8, proc=1)
        r = sc.read(0, 8, BYPASS, True, False)
        assert r.version == 1

    def test_normal_read_caches_and_hits(self):
        sc = make_scheme("sc", make_ctx())
        assert sc.read(0, 8, NORMAL, True, False).kind is MissKind.COLD
        assert sc.read(0, 8, NORMAL, True, False).kind is MissKind.HIT

    def test_own_write_then_normal_read_hits(self):
        sc = make_scheme("sc", make_ctx())
        sc.write(0, 8, NORMAL, True, False)
        assert sc.read(0, 8, NORMAL, True, False).kind is MissKind.HIT

    def test_bypass_conservative_when_data_unchanged(self):
        sc = make_scheme("sc", make_ctx())
        sc.read(0, 8, NORMAL, True, False)  # cached, fresh
        r = sc.read(0, 8, BYPASS, True, False)
        assert r.kind is MissKind.CONSERVATIVE

    def test_bypass_true_sharing_when_data_changed(self):
        ctx = make_ctx()
        sc = make_scheme("sc", ctx)
        sc.read(0, 8, NORMAL, True, False)
        sc.write(1, 8, NORMAL, True, False)  # other proc updates
        r = sc.read(0, 8, BYPASS, True, False)
        assert r.kind is MissKind.TRUE_SHARING

    def test_critical_read_bypasses_even_unmarked(self):
        sc = make_scheme("sc", make_ctx())
        sc.read(0, 8, NORMAL, True, False)
        r = sc.read(0, 8, NORMAL, True, in_critical=True)
        assert r.kind is not MissKind.HIT


class TestBase:
    def test_shared_reads_always_remote(self):
        base = make_scheme("base", make_ctx())
        for _ in range(3):
            r = base.read(0, 8, NORMAL, True, False)
            assert r.kind is MissKind.UNCACHED
            assert r.read_words == 2

    def test_shared_write_buffered(self):
        base = make_scheme("base", make_ctx())
        r = base.write(0, 8, NORMAL, True, False)
        assert r.kind is MissKind.UNCACHED
        assert r.latency == 1
        assert r.write_words == 2

    def test_private_data_cached(self):
        base = make_scheme("base", make_ctx())
        assert base.read(0, 8, NORMAL, False, False).kind is MissKind.COLD
        assert base.read(0, 8, NORMAL, False, False).kind is MissKind.HIT

    def test_private_write_no_remote_traffic(self):
        base = make_scheme("base", make_ctx())
        base.read(0, 8, NORMAL, False, False)
        r = base.write(0, 8, NORMAL, False, False)
        assert r.write_words == 0


class TestRegistry:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError):
            make_scheme("mesi", make_ctx())
