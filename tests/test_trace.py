"""Tests for memory layout, scheduling, and trace generation."""

import pytest

from repro.common.config import MachineConfig, SchedulePolicy, default_machine
from repro.common.errors import SimulationError
from repro.ir import ProgramBuilder
from repro.trace import (
    EventKind,
    MemoryLayout,
    MigrationSpec,
    generate_trace,
    schedule_iterations,
)


def machine(n_procs=4, policy=SchedulePolicy.CHUNK):
    return default_machine().with_(n_procs=n_procs, schedule=policy)


class TestLayout:
    def build(self):
        b = ProgramBuilder("p")
        b.array("A", (8, 8))
        b.array("t", (4,), private=True)
        with b.procedure("main"):
            pass
        return b.build()

    def test_shared_array_single_copy(self):
        layout = MemoryLayout(self.build(), n_procs=4)
        assert layout.base("A", 0) == layout.base("A", 3)

    def test_private_array_per_proc_copies(self):
        layout = MemoryLayout(self.build(), n_procs=4)
        bases = {layout.base("t", p) for p in range(4)}
        assert len(bases) == 4

    def test_row_major_addressing(self):
        layout = MemoryLayout(self.build(), n_procs=4)
        base = layout.base("A")
        assert layout.addr_of("A", (0, 0)) == base
        assert layout.addr_of("A", (0, 1)) == base + 1
        assert layout.addr_of("A", (1, 0)) == base + 8
        assert layout.addr_of("A", (2, 3)) == base + 19

    def test_bounds_checked(self):
        layout = MemoryLayout(self.build(), n_procs=4)
        with pytest.raises(SimulationError):
            layout.addr_of("A", (8, 0))
        with pytest.raises(SimulationError):
            layout.addr_of("A", (0, -1))

    def test_line_alignment(self):
        layout = MemoryLayout(self.build(), n_procs=4, line_words=4)
        assert layout.base("A") % 4 == 0
        for p in range(4):
            assert layout.base("t", p) % 4 == 0

    def test_reverse_lookup(self):
        layout = MemoryLayout(self.build(), n_procs=4)
        assert layout.array_of_addr(layout.addr_of("A", (3, 3))) == "A"


class TestScheduling:
    def test_chunk_contiguous(self):
        out = schedule_iterations(list(range(10)), 4, SchedulePolicy.CHUNK)
        assert out == [(0, [0, 1, 2]), (1, [3, 4, 5]), (2, [6, 7]), (3, [8, 9])]

    def test_interleaved(self):
        out = schedule_iterations(list(range(6)), 3, SchedulePolicy.INTERLEAVED)
        assert out == [(0, [0, 3]), (1, [1, 4]), (2, [2, 5])]

    def test_fewer_iterations_than_procs(self):
        out = schedule_iterations([7, 8], 16, SchedulePolicy.CHUNK)
        assert out == [(0, [7]), (1, [8])]

    def test_empty(self):
        assert schedule_iterations([], 4, SchedulePolicy.CHUNK) == []

    def test_all_iterations_exactly_once(self):
        for policy in SchedulePolicy:
            out = schedule_iterations(list(range(17)), 5, policy)
            flat = sorted(v for _, vs in out for v in vs)
            assert flat == list(range(17))


class TestGeneration:
    def simple(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)], work=3)
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)], reads=[b.at("A", 0)], work=2)
            b.stmt(reads=[b.at("A", 5)])
        return b.build()

    def test_epoch_structure(self):
        trace = generate_trace(self.simple(), machine())
        kinds = [e.parallel for e in trace.epochs]
        assert kinds == [False, True, False]
        assert trace.epochs[1].n_tasks_scheduled == 8

    def test_doall_task_distribution(self):
        trace = generate_trace(self.simple(), machine(n_procs=4))
        doall = trace.epochs[1]
        assert [t.proc for t in doall.tasks] == [0, 1, 2, 3]
        assert all(len(t.events) == 4 for t in doall.tasks)  # 2 iters x 2 events

    def test_event_addresses(self):
        trace = generate_trace(self.simple(), machine(n_procs=4))
        doall = trace.epochs[1]
        base = trace.layout.base("A")
        writes = [ev for t in doall.tasks for ev in t.events
                  if ev.kind is EventKind.WRITE]
        assert sorted(ev.addr for ev in writes) == [base + k for k in range(8)]

    def test_work_attached_to_first_event(self):
        trace = generate_trace(self.simple(), machine())
        serial0 = trace.epochs[0].tasks[0]
        assert serial0.events[0].work == 3
        doall_task = trace.epochs[1].tasks[0]
        # Each iteration: read (carries work=2) then write (work=0).
        assert doall_task.events[0].work == 2
        assert doall_task.events[1].work == 0

    def test_sites_preserved(self):
        program = self.simple()
        trace = generate_trace(program, machine())
        sites = {ev.site for e in trace.epochs for t in e.tasks for ev in t.events}
        assert sites <= set(range(program.n_sites))

    def test_serial_loop_iterates(self):
        b = ProgramBuilder("p", params={"T": 3})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
        trace = generate_trace(b.build(), machine())
        assert sum(e.parallel for e in trace.epochs) == 3

    def test_if_takes_one_branch(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.when(b.p("N"), ">", 4):
                b.stmt(writes=[b.at("A", 0)])
            b.stmt(writes=[b.at("A", 1)])
        trace = generate_trace(b.build(), machine())
        assert trace.n_events == 2
        trace2 = generate_trace(b.build(), machine(), params={"N": 2})
        assert trace2.n_events == 1

    def test_scalar_evaluation(self):
        b = ProgramBuilder("p", params={"N": 4})
        b.array("A", (16,))
        with b.procedure("main"):
            off = b.assign("off", b.p("N") * 2)
            b.stmt(writes=[b.at("A", off + 1)])
        trace = generate_trace(b.build(), machine())
        ev = trace.epochs[0].tasks[0].events[0]
        assert ev.addr == trace.layout.base("A") + 9

    def test_call_interpreted(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("kernel"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
        with b.procedure("main"):
            b.call("kernel")
            b.call("kernel")
        trace = generate_trace(b.build(), machine())
        assert sum(e.parallel for e in trace.epochs) == 2

    def test_critical_section_events(self):
        b = ProgramBuilder("p")
        b.array("sum", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                with b.critical("L"):
                    b.stmt(reads=[b.at("sum", 0)], writes=[b.at("sum", 0)])
        trace = generate_trace(b.build(), machine())
        task0 = trace.epochs[0].tasks[0]
        kinds = [ev.kind for ev in task0.events]
        assert kinds[0] is EventKind.LOCK and kinds[-1] is EventKind.UNLOCK
        inner = [ev for ev in task0.events
                 if ev.kind in (EventKind.READ, EventKind.WRITE)]
        assert all(ev.in_critical for ev in inner)

    def test_private_array_addresses_differ_by_proc(self):
        b = ProgramBuilder("p")
        b.array("t", (4,), private=True)
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("t", 0)], reads=[b.at("A", i)])
        trace = generate_trace(b.build(), machine(n_procs=4))
        writes = {t.proc: [ev.addr for ev in t.events if ev.kind is EventKind.WRITE]
                  for t in trace.epochs[0].tasks}
        addrs = {addrs[0] for addrs in writes.values()}
        assert len(addrs) == 4

    def test_migration_splits_tasks(self):
        b = ProgramBuilder("p")
        b.array("A", (8, 4))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                for k in range(4):
                    b.stmt(writes=[b.at("A", i, k)])
        trace = generate_trace(b.build(), machine(n_procs=4),
                               migration=MigrationSpec(every=3))
        doall = trace.epochs[0]
        total = sum(len(t.events) for t in doall.tasks)
        assert total == 32  # nothing lost
        # With chunked scheduling each proc runs 2 iterations = 8 events;
        # migration moves halves around, so some task sizes differ from 8.
        # (every=2 would move equal halves around the full ring and land
        # back at 8 each, so the test uses every=3.)
        sizes = sorted(len(t.events) for t in doall.tasks)
        assert sizes != [8, 8, 8, 8]

    def test_deterministic(self):
        a = generate_trace(self.simple(), machine())
        b = generate_trace(self.simple(), machine())
        assert a.counts() == b.counts()
        assert a.n_events == b.n_events
