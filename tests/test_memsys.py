"""Unit tests for the memory-system substrate."""

import pytest

from repro.common.config import CacheConfig, MachineConfig, NetworkConfig
from repro.memsys.cache import Cache
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.memsys.wbuffer import (
    WRITE_MESSAGE_WORDS,
    CoalescingWriteBuffer,
    FifoWriteBuffer,
)


def tiny_cache(line_words=4, lines=8, assoc=1):
    return Cache(CacheConfig(size_bytes=lines * line_words * 4,
                             line_words=line_words, associativity=assoc))


class TestCacheGeometry:
    def test_split(self):
        cache = tiny_cache()
        line, set_index, word = cache.split(22)
        assert (line, word) == (5, 2)
        assert set_index == 5 % cache.n_sets

    def test_probe_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.probe(5) is None
        loc, evicted, dirty = cache.install(5)
        assert evicted is None and not dirty
        assert cache.probe(5) == loc

    def test_direct_mapped_conflict(self):
        cache = tiny_cache(lines=8)
        cache.install(3)
        _, evicted, _ = cache.install(3 + 8)  # same set
        assert evicted == 3
        assert cache.probe(3) is None

    def test_associative_avoids_conflict(self):
        cache = tiny_cache(lines=8, assoc=2)
        cache.install(3)
        _, evicted, _ = cache.install(3 + 4)  # same set (4 sets), other way
        assert evicted is None
        assert cache.probe(3) is not None and cache.probe(7) is not None

    def test_lru_eviction(self):
        cache = tiny_cache(lines=8, assoc=2)
        a, _, _ = cache.install(0)
        b, _, _ = cache.install(4)
        cache.touch(cache.probe(0))  # 0 most recent
        _, evicted, _ = cache.install(8)
        assert evicted == 4

    def test_dirty_eviction_reported(self):
        cache = tiny_cache()
        loc, _, _ = cache.install(2)
        cache.dirty[loc.set_index, loc.way] = True
        _, evicted, dirty = cache.install(2 + cache.n_sets)
        assert evicted == 2 and dirty

    def test_install_sets_all_words_valid(self):
        cache = tiny_cache()
        loc, _, _ = cache.install(1)
        assert cache.word_valid[loc.set_index, loc.way].all()
        assert not cache.used[loc.set_index, loc.way].any()

    def test_invalidate_line(self):
        cache = tiny_cache()
        loc, _, _ = cache.install(1)
        cache.invalidate_line(loc, reason=2)
        assert cache.probe(1) is None
        assert cache.inval_reason[loc.set_index, loc.way] == 2


class TestTwoPhaseReset:
    def test_invalidates_only_target_phase(self):
        cache = tiny_cache(line_words=4)
        loc, _, _ = cache.install(0)
        cache.timetag[loc.set_index, loc.way] = [3, 130, 127, 128]
        count = cache.two_phase_reset(128, 255, modulus=256)
        assert count == 2
        valid = cache.word_valid[loc.set_index, loc.way]
        assert list(valid) == [True, False, True, False]

    def test_ignores_invalid_words(self):
        cache = tiny_cache()
        loc, _, _ = cache.install(0)
        cache.word_valid[loc.set_index, loc.way, :] = False
        assert cache.two_phase_reset(0, 255, modulus=256) == 0

    def test_flush_all(self):
        cache = tiny_cache()
        cache.install(0)
        cache.install(1)
        assert cache.flush_all_words() == 8
        assert cache.flush_all_words() == 0


class TestWriteBuffers:
    def test_fifo_counts_every_write(self):
        wb = FifoWriteBuffer()
        traffic = sum(wb.note_write(7) for _ in range(5))
        assert traffic == 5 * WRITE_MESSAGE_WORDS
        assert wb.drain() == 0

    def test_coalescing_merges(self):
        wb = CoalescingWriteBuffer()
        for _ in range(5):
            assert wb.note_write(7) == 0
        wb.note_write(9)
        assert wb.drain() == 2 * WRITE_MESSAGE_WORDS
        assert wb.merged_writes == 4
        assert wb.drain() == 0  # empty after drain

    def test_coalescing_resets_between_sync_points(self):
        wb = CoalescingWriteBuffer()
        wb.note_write(7)
        wb.drain()
        wb.note_write(7)
        assert wb.drain() == WRITE_MESSAGE_WORDS  # second epoch pays again


class TestNetwork:
    def net(self, **kw):
        return KruskalSnirNetwork(MachineConfig(**kw))

    def test_unloaded_latency_near_base(self):
        net = self.net()
        # 100 base + 4 words * 8 cycles = 132 unloaded
        assert net.miss_latency(4) == 132

    def test_latency_monotone_in_load(self):
        net = self.net()
        unloaded = net.miss_latency(4)
        net.rho = 0.5
        loaded = net.miss_latency(4)
        net.rho = 0.9
        saturated = net.miss_latency(4)
        assert unloaded < loaded < saturated

    def test_latency_monotone_in_line_size(self):
        net = self.net()
        net.rho = 0.3
        lat = [net.miss_latency(w) for w in (1, 4, 8, 16)]
        assert lat == sorted(lat) and len(set(lat)) == 4

    def test_calibration_matches_paper_latency_table(self):
        """The paper's table: ~136 cycles at 16-byte lines, ~355 at 64-byte.

        Larger lines quadruple the words per miss, so the feedback loop runs
        them at a much higher offered load; at the resulting operating
        points the model should land near the published numbers.
        """
        net = self.net()
        net.rho = 0.15  # light load typical of 16-byte-line runs
        assert 128 <= net.miss_latency(4) <= 145
        net.rho = 0.72  # heavy load typical of 64-byte-line runs
        assert 320 <= net.miss_latency(16) <= 400

    def test_observe_epoch_smoothing(self):
        net = self.net()
        net.observe_epoch(words_injected=1600, proc_cycles=1000, smoothing=0.5)
        assert net.rho == pytest.approx(0.05)
        net.observe_epoch(1600, 1000, smoothing=0.5)
        assert net.rho == pytest.approx(0.075)

    def test_load_clamped(self):
        net = self.net()
        net.observe_epoch(10 ** 9, 10, smoothing=1.0)
        assert net.rho <= net.config.max_load

    def test_word_and_control_latency(self):
        net = self.net()
        assert net.word_latency() < net.miss_latency(4)
        assert net.control_latency() < net.word_latency()


class TestShadowMemory:
    def test_versions_monotone(self):
        shadow = ShadowMemory(16)
        assert shadow.read_version(3) == 0
        assert shadow.write(3, proc=1) == 1
        assert shadow.write(3, proc=2) == 2
        assert shadow.last_writer[3] == 2

    def test_barrier_floor(self):
        shadow = ShadowMemory(16)
        shadow.write(3, 0)
        assert shadow.visible_floor(3) == 0
        shadow.barrier()
        assert shadow.visible_floor(3) == 1

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            ShadowMemory(0)
