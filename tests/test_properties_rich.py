"""Property tests over structurally rich random programs.

Complements ``test_properties.py``: the generator here exercises calls
(pure-serial and DOALL-containing helpers), If branches around epochs,
2-D arrays, critical sections, private scratch arrays, and scalar
assignments — with every scheme's per-read coherence oracle active.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CacheConfig,
    SchedulePolicy,
    TpiConfig,
    default_machine,
)
from repro.compiler import mark_program
from repro.compiler.marking import InterprocMode, MarkingOptions
from repro.sim import prepare, simulate
from repro.trace.schedule import MigrationSpec
from tests.strategies import rich_programs

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def small(**kw):
    defaults = dict(n_procs=3,
                    cache=CacheConfig(size_bytes=1024, line_words=4),
                    epoch_setup_cycles=5, task_dispatch_cycles=1)
    defaults.update(kw)
    return default_machine().with_(**defaults)


class TestRichPrograms:
    @settings(max_examples=40, **SETTINGS)
    @given(rich_programs(), st.sampled_from(list(SchedulePolicy)))
    def test_all_schemes_coherent(self, program, policy):
        run = prepare(program, small(schedule=policy))
        for scheme in ("base", "sc", "tpi", "hw", "update"):
            result = simulate(run, scheme)
            assert sum(result.miss_counts.values()) == result.reads
            assert sum(result.breakdown.values()) == (
                result.n_procs * result.exec_cycles)

    @settings(max_examples=25, **SETTINGS)
    @given(rich_programs(), st.integers(1, 3))
    def test_tpi_wraparound_safe(self, program, bits):
        machine = small(tpi=TpiConfig(timetag_bits=bits))
        simulate(prepare(program, machine), "tpi")

    @settings(max_examples=20, **SETTINGS)
    @given(rich_programs())
    def test_migration_safe(self, program):
        run = prepare(program, small(),
                      opts=MarkingOptions(assume_no_migration=False),
                      migration=MigrationSpec(every=5))
        simulate(run, "tpi")
        simulate(run, "hw")

    @settings(max_examples=20, **SETTINGS)
    @given(rich_programs())
    def test_all_interproc_modes_sound(self, program):
        """Less precise analysis modes must still be safe (they may only
        add Time-Reads, never remove needed ones)."""
        machine = small()
        counts = {}
        for mode in InterprocMode:
            run = prepare(program, machine,
                          opts=MarkingOptions(interproc=mode))
            simulate(run, "tpi")
            counts[mode] = run.marking.stats["sites.time_read.tpi"]
        assert counts[InterprocMode.INLINE] <= counts[InterprocMode.NONE]

    @settings(max_examples=20, **SETTINGS)
    @given(rich_programs())
    def test_marking_deterministic(self, program):
        a = mark_program(program)
        b = mark_program(program)
        assert a.tpi == b.tpi
        assert a.sc == b.sc
        assert a.strict_sites == b.strict_sites


class TestPrivateDataUnderMigration:
    def test_private_storage_becomes_coherent(self):
        """Regression: a migrated task fragment accesses the original
        processor's 'private' storage from another processor; all schemes
        must treat it coherently (found by the arc2d residual phase)."""
        from repro.ir import ProgramBuilder
        from repro.compiler.marking import RefMark

        b = ProgramBuilder("privmig", params={"T": 3})
        b.array("A", (16,))
        b.array("scratch", (4,), private=True)
        refs = {}
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 15) as i:
                    b.stmt(writes=[b.at("scratch", 0)], reads=[b.at("A", i)],
                           work=3)
                    refs["priv_read"] = b.at("scratch", 0)
                    b.stmt(reads=[refs["priv_read"]], writes=[b.at("A", i)],
                           work=3)
        program = b.build()

        # Without migration: private reads stay ordinary reads.
        plain = prepare(program, small())
        assert plain.marking.tpi_mark(refs["priv_read"].site) is RefMark.READ

        # With migration: the same site must be protected, and every scheme
        # must run without tripping the version oracle.
        migrated = prepare(program, small(n_procs=4),
                           opts=MarkingOptions(assume_no_migration=False),
                           migration=MigrationSpec(every=2))
        for scheme in ("base", "sc", "tpi", "hw", "update"):
            simulate(migrated, scheme)
