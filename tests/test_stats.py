"""Unit tests for repro.common.stats."""

from repro.common.stats import Counter, MissKind


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("reads", 2)
        c.add("reads")
        assert c["reads"] == 3
        assert c["absent"] == 0

    def test_merge(self):
        a, b = Counter(), Counter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 5)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 5

    def test_prefix_total(self):
        c = Counter()
        c.add("miss.cold", 2)
        c.add("miss.true", 3)
        c.add("hit", 7)
        assert c.total("miss.") == 5
        assert c.total() == 12


class TestMissKind:
    def test_hit_is_not_miss(self):
        assert not MissKind.HIT.is_miss
        assert MissKind.COLD.is_miss

    def test_unnecessary_kinds(self):
        assert MissKind.FALSE_SHARING.is_unnecessary
        assert MissKind.CONSERVATIVE.is_unnecessary
        assert not MissKind.TRUE_SHARING.is_unnecessary
        assert not MissKind.COLD.is_unnecessary
