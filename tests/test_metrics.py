"""Unit tests for SimResult metrics accounting."""

from repro.common.stats import MissKind, TrafficClass
from repro.sim.metrics import SimResult


def make_result():
    r = SimResult(scheme="tpi", program="p", n_procs=4)
    r.note_read(shared=True, kind=MissKind.HIT, latency=1)
    r.note_read(shared=True, kind=MissKind.COLD, latency=100)
    r.note_read(shared=False, kind=MissKind.CONSERVATIVE, latency=140)
    r.note_read(shared=True, kind=MissKind.TRUE_SHARING, latency=160)
    r.note_write(shared=True)
    r.note_write(shared=False)
    r.note_traffic(10, 4, 2)
    r.note_traffic(5, 0, 0)
    return r


class TestAccounting:
    def test_read_counts(self):
        r = make_result()
        assert r.reads == 4
        assert r.shared_reads == 3
        assert r.read_misses == 3
        assert r.miss_rate == 0.75

    def test_latency_only_over_misses(self):
        r = make_result()
        assert r.miss_latency_count == 3
        assert r.avg_miss_latency == (100 + 140 + 160) / 3

    def test_unnecessary(self):
        r = make_result()
        assert r.unnecessary_misses == 1
        assert r.unnecessary_fraction == 1 / 3

    def test_traffic(self):
        r = make_result()
        assert r.traffic[TrafficClass.READ] == 15
        assert r.traffic[TrafficClass.WRITE] == 4
        assert r.traffic[TrafficClass.COHERENCE] == 2
        assert r.total_traffic == 21
        assert r.traffic_per_access() == 21 / 6

    def test_kind_count(self):
        r = make_result()
        assert r.kind_count(MissKind.COLD) == 1
        assert r.kind_count(MissKind.FALSE_SHARING) == 0

    def test_summary_renders(self):
        text = make_result().summary()
        assert "p / tpi" in text
        assert "miss rate 75.00%" in text

    def test_empty_result_no_division_errors(self):
        r = SimResult(scheme="hw", program="p", n_procs=1)
        assert r.miss_rate == 0.0
        assert r.avg_miss_latency == 0.0
        assert r.unnecessary_fraction == 0.0
        assert r.traffic_per_access() == 0.0
