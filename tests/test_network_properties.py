"""Property tests for the Kruskal-Snir network model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import MachineConfig, NetworkConfig
from repro.memsys.network import KruskalSnirNetwork


def make_net(**net_kw):
    return KruskalSnirNetwork(MachineConfig(network=NetworkConfig(**net_kw)))


class TestModelProperties:
    @given(st.floats(0.0, 0.94), st.floats(0.0, 0.94))
    def test_latency_monotone_in_load(self, a, b):
        net = make_net()
        lo, hi = sorted((a, b))
        net.rho = lo
        lat_lo = net.miss_latency(4)
        net.rho = hi
        assert net.miss_latency(4) >= lat_lo

    @given(st.floats(0.0, 0.94), st.integers(1, 32), st.integers(1, 32))
    def test_latency_monotone_in_line_words(self, rho, w1, w2):
        net = make_net()
        net.rho = rho
        lo, hi = sorted((w1, w2))
        assert net.miss_latency(hi) >= net.miss_latency(lo)

    @given(st.floats(0.0, 0.94))
    def test_latency_at_least_base(self, rho):
        net = make_net()
        net.rho = rho
        assert net.miss_latency(1) >= net.base_miss_latency

    @given(st.floats(-5.0, 5.0))
    def test_queueing_clamped_and_nonnegative(self, rho):
        net = make_net()
        q = net.stage_queueing(rho)
        assert q >= 0.0
        assert q <= net.stage_queueing(net.config.max_load)

    @given(st.integers(2, 4096))
    def test_stage_count_sane(self, procs):
        net = make_net()
        stages = net.config.stages(procs)
        assert 1 <= stages
        assert net.config.switch_degree ** stages >= procs

    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(1, 10_000)),
                    min_size=1, max_size=20),
           st.floats(0.05, 1.0))
    def test_observed_load_always_in_range(self, epochs, smoothing):
        net = make_net()
        for words, cycles in epochs:
            net.observe_epoch(words, cycles, smoothing)
            assert 0.0 <= net.rho <= net.config.max_load
