"""Error paths and API-misuse guards."""

import pytest

from repro.common.config import default_machine
from repro.common.errors import SimulationError
from repro.compiler import mark_program
from repro.compiler.report import marking_report, render_report
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate
from repro.sim.engine import Engine
from repro.trace import generate_trace


def tiny():
    b = ProgramBuilder("tiny")
    b.array("A", (8,))
    with b.procedure("main"):
        with b.doall("i", 0, 7) as i:
            b.stmt(writes=[b.at("A", i)])
    return b.build()


class TestEngineGuards:
    def test_trace_without_layout_rejected(self):
        program = tiny()
        machine = default_machine().with_(n_procs=2)
        trace = generate_trace(program, machine)
        trace.layout = None
        with pytest.raises(SimulationError):
            Engine(trace, mark_program(program), machine, "tpi")

    def test_unknown_scheme_rejected(self):
        from repro.common.errors import ConfigError

        run = prepare(tiny(), default_machine().with_(n_procs=2))
        with pytest.raises(ConfigError):
            simulate(run, "mesif")


class TestRunnerConveniences:
    def test_simulate_accepts_raw_program(self):
        result = simulate(tiny(), "tpi", default_machine().with_(n_procs=2))
        assert result.writes == 8

    def test_simulate_all_accepts_raw_program(self):
        from repro.sim import simulate_all

        results = simulate_all(tiny(), ("tpi", "hw"),
                               machine=default_machine().with_(n_procs=2))
        assert set(results) == {"tpi", "hw"}


class TestOracleCatchesBrokenSchemes:
    def test_oracle_detects_a_stale_protocol(self):
        """Disable TPI's W-register updates: the scheme silently serves
        stale data, and the per-read oracle must catch it."""
        program_builder = ProgramBuilder("stale")
        b = program_builder
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("r0", 0, 7) as r0:  # proc 0..: cache A
                b.stmt(reads=[b.at("A", 7 - r0)], writes=[b.at("B", r0)])
            with b.doall("w", 0, 7) as w:  # rewrite A elsewhere
                b.stmt(writes=[b.at("A", w)])
            with b.doall("r1", 0, 7) as r1:  # re-read: must see new data
                b.stmt(reads=[b.at("A", 7 - r1)], writes=[b.at("B", r1)])
        program = b.build()
        machine = default_machine().with_(n_procs=4)
        run = prepare(program, machine)
        run.marking.epoch_writes.clear()  # sabotage the compiler epilogues
        with pytest.raises(SimulationError, match="stale read"):
            simulate(run, "tpi")

    def test_oracle_can_be_disabled(self):
        """check_coherence=False turns the oracle off (for speed studies);
        the sabotaged run then completes, wrongly but silently."""
        program = tiny()
        machine = default_machine().with_(n_procs=2, check_coherence=False)
        run = prepare(program, machine)
        run.marking.epoch_writes.clear()
        simulate(run, "tpi")  # must not raise


class TestReportRendering:
    def test_render_report(self):
        report = marking_report(tiny())
        text = render_report("tiny", report)
        assert "tiny" in text
        assert "inline" in text and "none" in text
