"""Processor-axis scaling: sparse per-proc state at large ``n_procs``.

The engines and coherence schemes keep per-processor state lazily — an
untouched processor's cache, write buffer, stall counter, or directory
pointer costs nothing — so simulated machines can be orders of magnitude
wider than the busy processor set.  Three layers of evidence:

* **front end** — :func:`schedule_iterations` allocates buckets only for
  processors that receive work, so a DOALL with 8 iterations schedules
  identically (and as cheaply) on a million-processor machine;
* **parity** — the sparse representation is observationally invisible:
  reference, fast, and gang engines stay byte-identical at irregular
  processor counts (1, primes, powers-of-two-minus-one), and the
  ``REPRO_DENSE_STATE`` escape hatch reproduces the exact same results;
* **scale smoke** — a 4096-processor machine runs a tiny workload under
  both engines, bit-identically, in test-suite time.

The ``n_procs`` configuration cap (``REPRO_MAX_PROCS``) is tested here
too: a typo like ``procs=10**9`` must die with a one-line error at
config time, not an OOM at layout time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import (DEFAULT_MAX_PROCS, SchedulePolicy,
                                 default_machine, max_procs)
from repro.common.errors import ConfigError
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate
from repro.trace.schedule import schedule_iterations
from repro.workloads import build_workload
from tests.strategies import machines, rich_programs
from tests.test_engine_parity import SCHEMES, SETTINGS, snapshot

POLICIES = (SchedulePolicy.CHUNK, SchedulePolicy.INTERLEAVED,
            SchedulePolicy.SELF)


def tiny_program(iters: int = 24):
    """Two dependent DOALLs: enough to exercise scheduling, barriers,
    and sharing misses, small enough for the reference engine at P=4096."""
    b = ProgramBuilder("tiny", params={})
    b.array("A", (iters,))
    b.array("B", (iters,))
    with b.procedure("main"):
        with b.doall("i", 0, iters - 1) as i:
            b.stmt(reads=[b.at("A", i)], writes=[b.at("B", i)], work=1)
        with b.doall("j", 0, iters - 1) as j:
            b.stmt(reads=[b.at("B", j)], writes=[b.at("A", j)], work=1)
    return b.build()


# --------------------------------------------------------------------------
# schedule_iterations: O(iterations), not O(n_procs)


class TestScheduleSparse:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_buckets_bounded_by_iterations(self, policy):
        """procs >> iterations must not allocate a bucket per processor."""
        out = schedule_iterations(list(range(8)), 1_000_000, policy)
        assert len(out) <= 8
        covered = [value for _proc, values in out for value in values]
        assert sorted(covered) == list(range(8))
        assert all(0 <= proc < 1_000_000 for proc, _values in out)

    def test_chunk_at_scale_matches_small_machine(self):
        """With P >= n the chunk policy is one iteration per processor,
        independent of how much wider the machine gets."""
        small = schedule_iterations(list(range(10)), 10, SchedulePolicy.CHUNK)
        wide = schedule_iterations(list(range(10)), 10**6,
                                   SchedulePolicy.CHUNK)
        assert wide == small == [(p, [p]) for p in range(10)]

    @settings(max_examples=50, **SETTINGS)
    @given(n=st.integers(0, 40), extra=st.integers(0, 10**6),
           policy=st.sampled_from(POLICIES))
    def test_every_iteration_exactly_once(self, n, extra, policy):
        iterations = list(range(100, 100 + n))
        out = schedule_iterations(iterations, n + extra + 1, policy)
        covered = [value for _proc, values in out for value in values]
        assert sorted(covered) == iterations
        procs = [proc for proc, _values in out]
        assert procs == sorted(set(procs))
        assert all(values for _proc, values in out)


# --------------------------------------------------------------------------
# n_procs cap


class TestProcsCap:
    def test_over_cap_is_a_one_line_config_error(self):
        with pytest.raises(ConfigError, match="REPRO_MAX_PROCS") as err:
            default_machine().with_(n_procs=DEFAULT_MAX_PROCS + 1)
        assert "\n" not in str(err.value)

    def test_cap_boundary_is_inclusive(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_PROCS", "100")
        default_machine().with_(n_procs=100)  # allowed
        with pytest.raises(ConfigError, match="exceeds the cap of 100"):
            default_machine().with_(n_procs=101)

    def test_escape_hatch_raises_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_PROCS", str(DEFAULT_MAX_PROCS * 4))
        machine = default_machine().with_(n_procs=DEFAULT_MAX_PROCS + 1)
        assert machine.n_procs == DEFAULT_MAX_PROCS + 1

    def test_bad_escape_hatch_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_PROCS", "lots")
        with pytest.raises(ConfigError, match="REPRO_MAX_PROCS"):
            max_procs()

    def test_non_positive_escape_hatch_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_PROCS", "0")
        assert max_procs() == DEFAULT_MAX_PROCS


# --------------------------------------------------------------------------
# parity at irregular processor counts


@st.composite
def irregular_machines(draw):
    """Random machines re-pinned to the processor counts the sparse
    representation is most likely to get wrong: a single processor,
    primes (never divide the iteration count evenly), and powers of two
    minus one (every off-by-one in a bitset or pointer-pool sizing)."""
    machine = draw(machines())
    return machine.with_(n_procs=draw(st.sampled_from([1, 7, 13, 31, 127])))


class TestIrregularCounts:
    @settings(max_examples=12, **SETTINGS)
    @given(program=rich_programs(), machine=irregular_machines(),
           scheme=st.sampled_from(SCHEMES))
    def test_three_engine_parity(self, program, machine, scheme):
        snaps = {}
        for engine in ("reference", "fast", "gang"):
            run = prepare(program, machine.with_(engine=engine))
            snaps[engine] = snapshot(simulate(run, scheme))
        assert snaps["fast"] == snaps["reference"]
        assert snaps["gang"] == snaps["reference"]

    @pytest.mark.parametrize("scheme", ("tpi", "hw", "tardis"))
    def test_dense_state_escape_hatch_is_result_neutral(self, monkeypatch,
                                                        scheme):
        """``REPRO_DENSE_STATE=1`` materializes every per-proc container
        eagerly; results must be bit-identical to the lazy default."""
        program = build_workload("ocean", size="small")
        machine = default_machine().with_(n_procs=31, engine="fast",
                                          record_epochs=True)
        run = prepare(program, machine)
        sparse = snapshot(simulate(run, scheme))
        monkeypatch.setenv("REPRO_DENSE_STATE", "1")
        dense = snapshot(simulate(run, scheme))
        assert dense == sparse


# --------------------------------------------------------------------------
# wide-machine smoke


class TestWideMachineSmoke:
    @pytest.mark.parametrize("scheme", ("tpi", "hw"))
    def test_4096_procs_under_both_engines(self, scheme):
        """A 4096-processor machine on a tiny workload: both engines
        complete in test-suite time and agree byte-for-byte.  Only 24
        processors ever receive work, so per-proc state must stay sparse
        for this to be fast."""
        program = tiny_program()
        machine = default_machine().with_(n_procs=4096, record_epochs=True)
        snaps = {}
        for engine in ("reference", "fast"):
            run = prepare(program, machine.with_(engine=engine))
            result = simulate(run, scheme)
            snaps[engine] = snapshot(result)
            assert result.exec_cycles > 0
        assert snaps["fast"] == snaps["reference"]

    def test_wide_machine_barrier_accounting(self):
        """Idle processors still accrue barrier-idle cycles even though
        they are never materialized: the cycle breakdown must account for
        all 4096 processors, not just the active ones."""
        program = tiny_program(iters=8)
        machine = default_machine().with_(n_procs=4096)
        run = prepare(program, machine.with_(engine="fast"))
        result = simulate(run, "base")
        fractions = result.breakdown_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # 4088 of 4096 processors never run a task: almost everything
        # is barrier idle.
        assert fractions.get("barrier_idle", 0.0) > 0.9
