"""Unit tests for repro.common.config."""

import math

import pytest

from repro.common.config import (
    CacheConfig,
    MachineConfig,
    NetworkConfig,
    TimetagResetPolicy,
    TpiConfig,
    default_machine,
    parameter_table,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_default_geometry_matches_paper(self):
        cache = CacheConfig()
        assert cache.size_bytes == 64 * 1024
        assert cache.line_words == 4
        assert cache.line_bytes == 16
        assert cache.n_lines == 4096
        assert cache.n_sets == 4096  # direct-mapped

    def test_associativity_divides_lines(self):
        cache = CacheConfig(associativity=4)
        assert cache.n_sets == cache.n_lines // 4

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=48 * 1024)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ConfigError):
            CacheConfig(line_words=-1)


class TestTpiConfig:
    def test_default_is_8bit_two_phase(self):
        tpi = TpiConfig()
        assert tpi.timetag_bits == 8
        assert tpi.counter_modulus == 256
        assert tpi.phase_size == 128
        assert tpi.reset_policy is TimetagResetPolicy.TWO_PHASE
        assert tpi.reset_stall_cycles == 128

    @pytest.mark.parametrize("bits", [0, 17, -3])
    def test_rejects_bad_widths(self, bits):
        with pytest.raises(ConfigError):
            TpiConfig(timetag_bits=bits)

    @pytest.mark.parametrize("bits,phase", [(1, 1), (2, 2), (4, 8), (8, 128)])
    def test_phase_is_half_the_counter_space(self, bits, phase):
        assert TpiConfig(timetag_bits=bits).phase_size == phase


class TestNetworkConfig:
    def test_stage_count(self):
        net = NetworkConfig(switch_degree=4)
        assert net.stages(16) == 2
        assert net.stages(64) == 3
        assert net.stages(1024) == 5

    def test_stage_count_at_least_one(self):
        assert NetworkConfig().stages(2) == 1

    def test_rejects_degenerate_switch(self):
        with pytest.raises(ConfigError):
            NetworkConfig(switch_degree=1)

    def test_rejects_bad_max_load(self):
        with pytest.raises(ConfigError):
            NetworkConfig(max_load=1.5)


class TestMachineConfig:
    def test_defaults_match_figure8(self):
        m = default_machine()
        assert m.n_procs == 16
        assert m.hit_latency == 1
        assert m.base_miss_latency == 100
        assert m.tpi.timetag_bits == 8

    def test_with_replaces_fields(self):
        m = default_machine().with_(n_procs=64)
        assert m.n_procs == 64
        assert default_machine().n_procs == 16  # original untouched

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigError):
            MachineConfig(n_procs=0)
        with pytest.raises(ConfigError):
            MachineConfig(base_miss_latency=0)

    def test_parameter_table_contains_key_rows(self):
        rows = dict(parameter_table(default_machine()))
        assert rows["number of processors"] == "16"
        assert rows["cache size"] == "64 KB, direct-mapped"
        assert rows["timetag size"] == "8-bits"
        assert rows["two-phase reset"] == "128 cycles"
        assert rows["cache line base miss latency"] == "100 CPU cycles"
