"""Coverage for smaller paths: LimitLess end-to-end, SELF scheduling,
pretty-printer else-branches, counters."""

import pytest

from repro.common.config import DirectoryConfig, SchedulePolicy, default_machine
from repro.ir import ProgramBuilder
from repro.ir.expr import Cond, sym
from repro.ir.pprint import format_program
from repro.ir.program import Statement
from repro.sim import prepare, simulate
from repro.workloads import build_workload


class TestLimitLessEndToEnd:
    def test_runs_coherently_and_traps(self):
        machine = default_machine().with_(
            n_procs=8,
            directory=DirectoryConfig(limitless_pointers=2,
                                      overflow_trap_cycles=200))
        run = prepare(build_workload("spec77", size="small"), machine)
        full = simulate(run, "hw")
        limited = simulate(run, "limitless")
        # Broadcast-read data (SPEC coefficients) has > 2 sharers, so the
        # spectral update's invalidations overflow the pointers.
        assert limited.extra["software_traps"] > 0
        # Same protocol, same misses; only latency differs.
        assert limited.miss_counts == full.miss_counts
        assert limited.exec_cycles >= full.exec_cycles

    def test_generous_pointers_match_full_map(self):
        machine = default_machine().with_(
            n_procs=4, directory=DirectoryConfig(limitless_pointers=64))
        run = prepare(build_workload("ocean", size="small"), machine)
        full = simulate(run, "hw")
        limited = simulate(run, "limitless")
        assert limited.extra["software_traps"] == 0
        assert limited.exec_cycles == full.exec_cycles


class TestSelfScheduling:
    @pytest.mark.parametrize("scheme", ("tpi", "hw"))
    def test_runs_coherently(self, scheme):
        machine = default_machine().with_(n_procs=4,
                                          schedule=SchedulePolicy.SELF)
        run = prepare(build_workload("qcd2", size="small"), machine)
        result = simulate(run, scheme)
        assert result.exec_cycles > 0


class TestPrettyPrinterBranches:
    def test_else_branch_rendered(self):
        b = ProgramBuilder("els", params={"N": 4})
        b.array("A", (8,))
        with b.procedure("main"):
            pass
        # if_else requires pre-built bodies; build them via a throwaway
        # builder to get site ids.
        b2 = ProgramBuilder("els2", params={"N": 4})
        b2.array("A", (8,))
        with b2.procedure("main"):
            then = (Statement(writes=(b2.at("A", 0),)),)
            els = (Statement(writes=(b2.at("A", 1),)),)
            b2.if_else(Cond(sym("N"), ">", sym("N") - 1), then, els)
        program = b2.build()
        text = format_program(program)
        assert "ELSE" in text

    def test_read_only_statement_rendered(self):
        b = ProgramBuilder("ro")
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])
        assert "use(A[0])" in format_program(b.build())

    def test_pure_write_statement_rendered(self):
        b = ProgramBuilder("wo")
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
        assert "A[0] = f()" in format_program(b.build())
