"""Tests for the processor-cycle breakdown accounting."""

import pytest

from repro.common.config import (
    ConsistencyModel,
    TpiConfig,
    default_machine,
)
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names


def machine(**kw):
    defaults = dict(n_procs=4, epoch_setup_cycles=10, task_dispatch_cycles=2)
    defaults.update(kw)
    return default_machine().with_(**defaults)


class TestAccountingIdentity:
    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("scheme", ("base", "sc", "tpi", "hw"))
    def test_every_cycle_accounted(self, name, scheme):
        run = prepare(build_workload(name, size="small"), machine())
        r = simulate(run, scheme)
        assert sum(r.breakdown.values()) == r.n_procs * r.exec_cycles

    def test_identity_with_locks(self):
        b = ProgramBuilder("locky")
        b.array("acc", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                with b.critical("L"):
                    b.stmt(reads=[b.at("acc", 0)], writes=[b.at("acc", 0)],
                           work=20)
        r = simulate(b.build(), "tpi", machine())
        assert sum(r.breakdown.values()) == r.n_procs * r.exec_cycles
        assert r.breakdown["sync_stall"] > 0


class TestCategories:
    def test_read_stall_dominates_base(self):
        run = prepare(build_workload("ocean", size="small"), machine())
        base = simulate(run, "base")
        f = base.breakdown_fractions()
        assert f["read_stall"] > f["busy"]

    def test_reset_stall_appears_with_tiny_tags(self):
        m = machine(tpi=TpiConfig(timetag_bits=2, reset_stall_cycles=500))
        run = prepare(build_workload("flo52", size="small"), m)
        r = simulate(run, "tpi")
        assert r.breakdown["reset_stall"] > 0

    def test_write_stall_only_under_sequential_consistency(self):
        run_weak = prepare(build_workload("ocean", size="small"), machine())
        weak = simulate(run_weak, "tpi")
        assert weak.breakdown["write_stall"] == 0
        run_seq = prepare(build_workload("ocean", size="small"),
                          machine(consistency=ConsistencyModel.SEQUENTIAL))
        seq = simulate(run_seq, "tpi")
        assert seq.breakdown["write_stall"] > 0

    def test_imbalance_shows_as_barrier_idle(self):
        b = ProgramBuilder("imbalance")
        b.array("A", (4,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                with b.when(b.v("i"), "==", 0):
                    b.stmt(writes=[b.at("A", 0)], work=50_000)
                b.stmt(reads=[b.at("A", i)], work=1)
        r = simulate(b.build(), "tpi", machine())
        f = r.breakdown_fractions()
        assert f["barrier_idle"] > 0.5  # three processors wait for one

    def test_lock_spin_does_not_double_charge_work(self):
        """Work attached to a LOCK event is charged once even if the lock
        is contended and the event retries many times."""
        b = ProgramBuilder("spin")
        b.array("acc", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                with b.critical("L"):
                    b.stmt(reads=[b.at("acc", 0)], writes=[b.at("acc", 0)],
                           work=1000)
        r = simulate(b.build(), "tpi", machine())
        # 4 tasks x (1000 work + 2 buffered writes...), so busy is bounded.
        assert r.breakdown["busy"] <= 4 * 1000 + 100
