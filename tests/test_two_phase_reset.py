"""Two-phase reset wrap-around coverage on the production cache.

The sweep in :meth:`repro.memsys.cache.Cache.two_phase_reset` has two
execution paths (dense full-array ops vs the sparse occupied-line gather
added for big-cache sweeps); both must invalidate *exactly* the words
the shared pure predicate :func:`repro.coherence.tpi_rules.reset_selects`
selects — nothing more (fresh words survive), nothing less (stale-
aliased words die).  The scheme-level tests force the k-bit counter
through multiple full wrap-arounds and use the pure rules as an
independent oracle for every sweep the hardware fires.
"""

import numpy as np
import pytest

from repro.coherence import tpi_rules
from repro.common.config import CacheConfig
from repro.memsys.cache import Cache

from tests.test_coherence_tpi import TR_SITE, WKEY, make_ctx
from repro.coherence.api import make_scheme
from repro.common.stats import MissKind


def _seeded_cache(n_lines_resident: int, n_sets: int, line_words: int = 4,
                  modulus: int = 4) -> Cache:
    """A cache with ``n_lines_resident`` lines whose word timetags cycle
    through every residue mod ``modulus`` and whose valid bits alternate."""
    cache = Cache(CacheConfig(size_bytes=n_sets * line_words * 4,
                              line_words=line_words))
    value = 0
    for line_addr in range(n_lines_resident):
        loc, _, _ = cache.install(line_addr)
        s, w = loc.set_index, loc.way
        for word in range(line_words):
            cache.timetag[s, w, word] = value % (2 * modulus)  # wrapped tags
            cache.word_valid[s, w, word] = (value % 3) != 0
            value += 1
    return cache


def _oracle_sweep(cache: Cache, lo: int, hi: int, modulus: int) -> np.ndarray:
    """Expected invalidation mask, from the pure predicate alone."""
    occupied = (cache.tags != -1)[:, :, None]
    return (cache.word_valid & occupied
            & tpi_rules.reset_selects(cache.timetag, lo, hi, modulus))


class TestSweepPaths:
    """Dense and sparse code paths agree exactly with the pure rule."""

    @pytest.mark.parametrize("lo,hi", [(0, 1), (2, 3)])
    def test_dense_path_invalidates_exactly_the_selected_words(self, lo, hi):
        # 4 of 4 sets occupied -> the dense full-array branch runs.
        cache = _seeded_cache(n_lines_resident=4, n_sets=4)
        before_valid = cache.word_valid.copy()
        expected = _oracle_sweep(cache, lo, hi, 4)
        count = cache.two_phase_reset(lo, hi, 4)
        assert count == int(expected.sum())
        assert count > 0
        np.testing.assert_array_equal(cache.word_valid,
                                      before_valid & ~expected)

    @pytest.mark.parametrize("lo,hi", [(0, 1), (2, 3)])
    def test_sparse_path_invalidates_exactly_the_selected_words(self, lo, hi):
        # 3 of 64 sets occupied -> the sparse gather branch runs.
        cache = _seeded_cache(n_lines_resident=3, n_sets=64)
        before_valid = cache.word_valid.copy()
        expected = _oracle_sweep(cache, lo, hi, 4)
        count = cache.two_phase_reset(lo, hi, 4)
        assert count == int(expected.sum())
        assert count > 0
        np.testing.assert_array_equal(cache.word_valid,
                                      before_valid & ~expected)

    def test_paths_agree_with_each_other(self):
        dense = _seeded_cache(n_lines_resident=4, n_sets=4)
        sparse = _seeded_cache(n_lines_resident=4, n_sets=64)
        assert dense.two_phase_reset(2, 3, 4) == sparse.two_phase_reset(2, 3, 4)
        # Same resident lines, so the surviving words match 1:1.
        for line_addr in range(4):
            dl, sl = dense.probe(line_addr), sparse.probe(line_addr)
            np.testing.assert_array_equal(
                dense.word_valid[dl.set_index, dl.way],
                sparse.word_valid[sl.set_index, sl.way])

    def test_empty_cache_sweeps_nothing(self):
        cache = Cache(CacheConfig(size_bytes=64 * 4 * 4, line_words=4))
        assert cache.two_phase_reset(0, 1, 4) == 0

    def test_wrapped_tags_selected_by_residue(self):
        """Tags are full epoch indices; the sweep must select on their
        k-bit residue (tag 5 mod 4 == 1 lies in phase [0, 1])."""
        cache = Cache(CacheConfig(size_bytes=4 * 4 * 4, line_words=4))
        loc, _, _ = cache.install(0)
        s, w = loc.set_index, loc.way
        cache.timetag[s, w, :] = [1, 5, 2, 6]
        cache.word_valid[s, w, :] = True
        assert cache.two_phase_reset(0, 1, 4) == 2
        np.testing.assert_array_equal(cache.word_valid[s, w],
                                      [False, False, True, True])


class TestSchemeWrapAround:
    """Drive the production TpiScheme through >= 2 full counter wraps,
    predicting every sweep with the shared pure rules."""

    def _predict_sweep(self, scheme, bounds):
        if bounds is None:
            return 0
        lo, hi = bounds
        expected = 0
        for cache in scheme.caches:
            expected += int(_oracle_sweep(cache, lo, hi, scheme.modulus).sum())
        return expected

    def test_every_sweep_matches_the_pure_oracle(self):
        k = 2
        ctx = make_ctx(timetag_bits=k, lines=8)
        scheme = make_scheme("tpi", ctx)
        modulus, phase = 1 << k, 1 << (k - 1)
        epochs = 3 * modulus  # three full wrap-arounds
        invalidated = 0
        for epoch in range(epochs):
            bounds = tpi_rules.crossed_phase_bounds(
                scheme.epoch_index, scheme.epoch_index + 1, modulus, phase)
            expected = self._predict_sweep(scheme, bounds)
            before = scheme.reset_invalidations
            scheme.begin_epoch(epoch, True)
            assert scheme.reset_invalidations - before == expected
            invalidated += expected
            # Touch data each epoch so later sweeps have prey: proc 0
            # writes (tag R), proc 1 reads (tags R / R-1 across the line).
            scheme.write(0, 8, 2, True, False)
            scheme.read(1, 9, TR_SITE, True, False)
            scheme.end_epoch(WKEY)
            ctx.shadow.barrier()
        wraps = (scheme.epoch_index + 1) // modulus
        assert wraps >= 2
        assert scheme.resets == sum(
            1 for e in range(epochs)
            if tpi_rules.crossed_phase_bounds(e, e + 1, modulus, phase))
        assert invalidated > 0
        assert scheme.reset_invalidations == invalidated

    def test_sparse_big_cache_wraps_cleanly(self):
        """PR 5's sparse sweep path at scheme level: a big cache with a
        few resident lines, >= 2 wraps, oracle-exact sweeps."""
        k = 2
        ctx = make_ctx(timetag_bits=k, lines=256, words=2048)
        scheme = make_scheme("tpi", ctx)
        modulus, phase = 1 << k, 1 << (k - 1)
        for epoch in range(2 * modulus + 1):
            bounds = tpi_rules.crossed_phase_bounds(
                scheme.epoch_index, scheme.epoch_index + 1, modulus, phase)
            expected = self._predict_sweep(scheme, bounds)
            before = scheme.reset_invalidations
            scheme.begin_epoch(epoch, True)
            assert scheme.reset_invalidations - before == expected
            # Two resident lines in a 256-set cache: sparse branch.
            scheme.read(0, 8, TR_SITE, True, False)
            scheme.read(1, 512, TR_SITE, True, False)
            scheme.end_epoch(None)
            ctx.shadow.barrier()
        assert (scheme.epoch_index + 1) // modulus >= 2
        assert scheme.reset_invalidations > 0

    def test_no_aliased_hit_survives_two_wraps(self):
        """After the counter returns to the same k-bit value twice over,
        a word last validated 2^k epochs ago must not hit: the sweep has
        removed it, exactly as reset_selects predicts."""
        k = 2
        ctx = make_ctx(timetag_bits=k)
        scheme = make_scheme("tpi", ctx)
        modulus = 1 << k
        scheme.begin_epoch(0, True)  # counter 1
        scheme.read(0, 8, TR_SITE, True, False)  # tag 1
        scheme.end_epoch(None)
        ctx.shadow.barrier()
        for epoch in range(1, 2 * modulus + 1):
            scheme.begin_epoch(epoch, True)
            scheme.end_epoch(None)
            ctx.shadow.barrier()
        # Counter is back at 1 (mod 4) for the second time.
        assert scheme.epoch_index % modulus == 1
        result = scheme.read(0, 8, TR_SITE, True, False)
        assert result.kind is MissKind.RESET
