"""Static/dynamic epoch agreement — the W-register soundness contract.

The compiler's W-register updates and the strict/timestamp hit rules are
sound only if the runtime (a) increments the epoch counter exactly once per
static epoch entered on the taken path, and (b) applies each epoch's
compiler-emitted write-set update.  These tests check the contract on every
workload: each dynamic epoch's ``write_key`` resolves to a static epoch,
and the arrays dynamically written inside an epoch are a subset of the
compiler's may-write set for that key.
"""

import pytest

from repro.common.config import default_machine
from repro.compiler import mark_program
from repro.compiler.epochs import build_epoch_graph
from repro.ir import ProgramBuilder
from repro.ir.program import Sharing
from repro.trace import EventKind, generate_trace
from repro.workloads import build_workload, workload_names

MACHINE = default_machine().with_(n_procs=4)


def dynamic_write_sets(program, trace):
    """Per dynamic epoch: the shared arrays actually written."""
    layout = trace.layout
    region_of, names = layout.shared_region_table()
    out = []
    for epoch in trace.epochs:
        written = set()
        for task in epoch.tasks:
            for event in task.events:
                if event.kind is EventKind.WRITE and event.shared:
                    region = int(region_of[event.addr])
                    if region >= 0:
                        written.add(names[region])
        out.append((epoch, written))
    return out


@pytest.mark.parametrize("name", workload_names())
class TestAgreementOnWorkloads:
    def test_write_keys_resolve_to_static_epochs(self, name):
        program = build_workload(name, size="small")
        graph = build_epoch_graph(program)
        static_keys = {e.write_key for e in graph.epochs if e.write_key}
        trace = generate_trace(program, MACHINE)
        for epoch in trace.epochs:
            assert epoch.write_key in static_keys, (
                f"dynamic epoch {epoch.index} ({epoch.label}) has no "
                "matching static epoch")

    def test_dynamic_writes_covered_by_compiler_write_sets(self, name):
        program = build_workload(name, size="small")
        marking = mark_program(program)
        trace = generate_trace(program, MACHINE)
        for epoch, written in dynamic_write_sets(program, trace):
            declared = set(marking.epoch_writes.get(epoch.write_key, {}))
            assert written <= declared, (
                f"epoch {epoch.index} ({epoch.label}) wrote {written} but "
                f"the compiler declared only {declared}")

    def test_parallel_epoch_counts_agree(self, name):
        """Each dynamic parallel epoch is an instance of a static DOALL."""
        program = build_workload(name, size="small")
        graph = build_epoch_graph(program)
        static_parallel_keys = {e.write_key for e in graph.parallel_epochs}
        trace = generate_trace(program, MACHINE)
        for epoch in trace.epochs:
            if epoch.parallel:
                assert epoch.write_key in static_parallel_keys


class TestAgreementCornerCases:
    def test_branch_skip_keeps_boundary(self):
        """Taking the empty else of an opened If still crosses exactly one
        boundary between the pre and post serial epochs."""
        b = ProgramBuilder("skip", params={"GO": 0})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])  # pre
            with b.when(b.p("GO"), "==", 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 0)])  # post
        trace = generate_trace(b.build(), MACHINE)
        kinds = [e.parallel for e in trace.epochs]
        assert kinds == [False, False]  # pre, post: distinct epochs

        trace_taken = generate_trace(b.build(), MACHINE, params={"GO": 1})
        kinds = [e.parallel for e in trace_taken.epochs]
        assert kinds == [False, True, False]

    def test_zero_trip_doall_still_an_epoch(self):
        b = ProgramBuilder("zerotrip", params={"N": 0})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.doall("i", 1, b.p("N")) as i:
                b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 0)])
        trace = generate_trace(b.build(), MACHINE)
        kinds = [(e.parallel, e.n_events) for e in trace.epochs]
        assert kinds == [(False, 1), (True, 0), (False, 1)]

    def test_scalar_only_serial_epoch_emitted(self):
        """A serial stretch of pure scalar assignments is a static epoch and
        must be a (possibly event-free) dynamic epoch too."""
        b = ProgramBuilder("scalarophilia")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            b.assign("s", 3)
            with b.doall("j", 0, 7) as j:
                b.stmt(reads=[b.at("A", j)])
        trace = generate_trace(b.build(), MACHINE)
        kinds = [(e.parallel, e.n_events) for e in trace.epochs]
        assert kinds == [(True, 8), (False, 0), (True, 8)]

    def test_loop_iterations_separate_epochs(self):
        b = ProgramBuilder("iters", params={"T": 3})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
                b.stmt(reads=[b.at("A", 0)])  # serial tail per iteration
        trace = generate_trace(b.build(), MACHINE)
        kinds = [e.parallel for e in trace.epochs]
        assert kinds == [True, False] * 3
