"""Micro-tests for the write-update directory scheme (extension)."""

import pytest

from repro.coherence.api import SimContext, make_scheme
from repro.common.config import (
    CacheConfig,
    ConsistencyModel,
    MachineConfig,
    WriteBufferKind,
)
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking
from repro.ir import ProgramBuilder
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout


def make_ctx(n_procs=3, words=256, line_words=4, lines=32,
             wbuffer=WriteBufferKind.FIFO,
             consistency=ConsistencyModel.WEAK):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words),
        write_buffer=wbuffer, consistency=consistency)
    b = ProgramBuilder("rig")
    b.array("M", (words,))
    with b.procedure("main"):
        pass
    layout = MemoryLayout(b.build(), n_procs, line_words)
    return SimContext(machine=machine,
                      marking=Marking(tpi={}, sc={}, graph=EpochGraph()),
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def new_update(**kw):
    ctx = make_ctx(**kw)
    return make_scheme("update", ctx), ctx


class TestUpdateSemantics:
    def test_no_invalidations_ever(self):
        up, _ = new_update()
        up.read(0, 8, 0, True, False)
        up.read(1, 8, 0, True, False)
        up.write(2, 8, 0, True, False)
        # Both readers still hit, at the *new* version.
        r0 = up.read(0, 8, 0, True, False)
        r1 = up.read(1, 8, 0, True, False)
        assert r0.kind is MissKind.HIT and r1.kind is MissKind.HIT
        assert r0.version == r1.version == 1

    def test_write_broadcasts_to_sharers_only(self):
        up, _ = new_update()
        up.read(0, 8, 0, True, False)
        up.read(1, 8, 0, True, False)
        r = up.write(0, 8, 0, True, False)
        assert up.updates_sent == 1  # proc 1 only
        assert r.write_words >= 2 + 2  # memory + one sharer

    def test_no_sharing_misses(self):
        up, _ = new_update()
        up.read(0, 8, 0, True, False)
        for _ in range(5):
            up.write(1, 8, 0, True, False)
        assert up.read(0, 8, 0, True, False).kind is MissKind.HIT

    def test_eviction_leaves_sharers(self):
        up, _ = new_update(lines=4, words=4096)
        up.read(0, 0, 0, True, False)
        up.read(0, 16, 0, True, False)  # evicts line 0 (4 sets, dm)
        assert 0 not in up.sharers.get(0, set())
        # A write by another proc must not try to update the evicted copy.
        up.write(1, 0, 0, True, False)

    def test_coalescing_defers_and_merges(self):
        up, _ = new_update(wbuffer=WriteBufferKind.COALESCING)
        up.read(1, 8, 0, True, False)  # proc 1 shares the line
        for _ in range(4):
            r = up.write(0, 8, 0, True, False)
            assert r.write_words == 0  # deferred
        drained = up.end_epoch(None)
        assert drained[0] > 0
        assert up.merged_writes == 3
        assert up.updates_sent == 1  # one broadcast after merging

    def test_coalesced_update_applied_by_barrier(self):
        up, ctx = new_update(wbuffer=WriteBufferKind.COALESCING)
        up.read(1, 8, 0, True, False)
        up.write(0, 8, 0, True, False)
        up.end_epoch(None)
        ctx.shadow.barrier()
        r = up.read(1, 8, 0, True, False)
        assert r.kind is MissKind.HIT and r.version == 1

    def test_sequential_consistency_stalls_writes(self):
        weak, _ = new_update()
        seq, _ = new_update(consistency=ConsistencyModel.SEQUENTIAL)
        weak.read(1, 8, 0, True, False)
        seq.read(1, 8, 0, True, False)
        assert weak.write(0, 8, 0, True, False).latency == 1
        assert seq.write(0, 8, 0, True, False).latency > 50


class TestUpdateEndToEnd:
    def test_workload_runs_coherently(self):
        from repro.common.config import default_machine
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        machine = default_machine().with_(n_procs=4)
        run = prepare(build_workload("ocean", size="small"), machine)
        r = simulate(run, "update")
        # No invalidations -> no sharing misses of either kind.
        assert r.kind_count(MissKind.TRUE_SHARING) == 0
        assert r.kind_count(MissKind.FALSE_SHARING) == 0
        # ...but plenty of update/write traffic.
        from repro.common.stats import TrafficClass
        assert r.traffic[TrafficClass.WRITE] > 0

    def test_coalescing_cuts_update_traffic_on_trfd(self):
        from repro.common.config import default_machine
        from repro.common.stats import TrafficClass
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        base = default_machine().with_(n_procs=4)
        program = build_workload("trfd", size="small")
        fifo = simulate(prepare(program, base), "update")
        coal = simulate(prepare(program, base.with_(
            write_buffer=WriteBufferKind.COALESCING)), "update")
        assert (coal.traffic[TrafficClass.WRITE]
                < 0.75 * fifo.traffic[TrafficClass.WRITE])
