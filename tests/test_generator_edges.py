"""Trace-generator edge cases: steps, parameter overrides, empty bodies."""

import pytest

from repro.common.config import default_machine
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate
from repro.trace import EventKind, generate_trace

MACHINE = default_machine().with_(n_procs=4)


def events_of(trace):
    return [ev for e in trace.epochs for t in e.tasks for ev in t.events]


class TestSteps:
    def test_strided_doall(self):
        b = ProgramBuilder("stride")
        b.array("A", (16,))
        with b.procedure("main"):
            with b.doall("i", 0, 15, step=4) as i:
                b.stmt(writes=[b.at("A", i)])
        trace = generate_trace(b.build(), MACHINE)
        addrs = sorted(ev.addr - trace.layout.base("A")
                       for ev in events_of(trace))
        assert addrs == [0, 4, 8, 12]

    def test_negative_step_serial(self):
        b = ProgramBuilder("down")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("i", 7, 0, step=-1) as i:
                b.stmt(writes=[b.at("A", i)])
        trace = generate_trace(b.build(), MACHINE)
        addrs = [ev.addr - trace.layout.base("A") for ev in events_of(trace)]
        assert addrs == [7, 6, 5, 4, 3, 2, 1, 0]

    def test_negative_step_doall(self):
        b = ProgramBuilder("downp")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 7, 0, step=-2) as i:
                b.stmt(writes=[b.at("A", i)])
        trace = generate_trace(b.build(), MACHINE)
        addrs = sorted(ev.addr - trace.layout.base("A")
                       for ev in events_of(trace))
        assert addrs == [1, 3, 5, 7]

    def test_empty_serial_loop(self):
        b = ProgramBuilder("empty", params={"N": 0})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.serial("i", 1, b.p("N")) as i:
                b.stmt(writes=[b.at("A", i)])
        trace = generate_trace(b.build(), MACHINE)
        assert trace.n_events == 1


class TestParams:
    def build(self):
        b = ProgramBuilder("param", params={"N": 8, "REPS": 2})
        b.array("A", (32,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("REPS") - 1):
                with b.doall("i", 0, b.p("N") - 1) as i:
                    b.stmt(writes=[b.at("A", i)])
        return b.build()

    def test_defaults(self):
        trace = generate_trace(self.build(), MACHINE)
        assert trace.n_events == 16

    def test_override(self):
        trace = generate_trace(self.build(), MACHINE, params={"N": 4, "REPS": 3})
        assert trace.n_events == 12

    def test_unknown_override_rejected(self):
        with pytest.raises(KeyError):
            generate_trace(self.build(), MACHINE, params={"WAT": 1})

    def test_compile_and_simulate_with_overrides(self):
        run = prepare(self.build(), MACHINE, params={"N": 16, "REPS": 1})
        result = simulate(run, "tpi")
        assert result.writes == 16


class TestEventFields:
    def test_lock_events_carry_lock_ids(self):
        b = ProgramBuilder("locks")
        b.array("x", (1,))
        b.array("y", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 1) as i:
                with b.critical("first"):
                    b.stmt(writes=[b.at("x", 0)])
                with b.critical("second"):
                    b.stmt(writes=[b.at("y", 0)])
        trace = generate_trace(b.build(), MACHINE)
        lock_ids = {ev.lock for ev in events_of(trace)
                    if ev.kind in (EventKind.LOCK, EventKind.UNLOCK)}
        assert lock_ids == {0, 1}

    def test_trace_counts(self):
        b = ProgramBuilder("counts")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)], reads=[b.at("A", 0)])
        trace = generate_trace(b.build(), MACHINE)
        counts = trace.counts()
        assert counts["read"] == 8 and counts["write"] == 8
        assert counts["lock"] == 0
