"""Tests for the sharded read-through cache and cache concurrency.

Covers the :class:`~repro.runtime.shardcache.ShardedCache` peer tier
(path peers, corruption tolerance, single-flight population) plus two
properties the serve deployment depends on:

* concurrent writers on one fingerprint never corrupt the entry (the
  atomic temp-file/rename store);
* a reader racing a writer sees either a miss or a complete artifact —
  never a partial pickle;
* ``stats``/``clear`` tolerate another worker mutating the directory
  tree mid-scan.
"""

import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.runtime import ArtifactCache, ShardedCache
from repro.runtime.cache import KIND_RESULT
from repro.runtime.shardcache import peers_from_env

KEY = "ab" + "0" * 62
OTHER = "cd" + "0" * 62


def _spin_writer(root, key, rounds):
    """Store `rounds` distinguishable-but-valid payloads on one key."""
    cache = ArtifactCache(root)
    for i in range(rounds):
        payload = {"round": i, "blob": list(range(200))}
        assert cache.store(KIND_RESULT, key, payload)
    return rounds


def _spin_reader(root, key, rounds):
    """Load repeatedly; every hit must be a complete artifact."""
    cache = ArtifactCache(root)
    complete = 0
    for _ in range(rounds):
        hit = cache.load(KIND_RESULT, key)
        if hit is None:
            continue  # a miss is legal mid-race; a partial pickle is not
        assert set(hit) == {"round", "blob"}
        assert hit["blob"] == list(range(200))
        complete += 1
    return complete


class TestConcurrentWriters:
    def test_two_processes_writing_one_fingerprint(self, tmp_path):
        root = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(_spin_writer, root, KEY, 60)
                       for _ in range(2)]
            for future in futures:
                assert future.result() == 60
        cache = ArtifactCache(root)
        final = cache.load(KIND_RESULT, KEY)
        assert final is not None and final["round"] == 59
        # exactly one entry on disk, no leftover temp files
        shard = cache._path(KIND_RESULT, KEY).parent
        assert [p.name for p in shard.iterdir()] == [f"{KEY}.pkl"]

    def test_reader_racing_writer_sees_miss_or_complete(self, tmp_path):
        root = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=2) as pool:
            writer = pool.submit(_spin_writer, root, KEY, 120)
            reader = pool.submit(_spin_reader, root, KEY, 400)
            assert writer.result() == 120
            reader.result()  # raises if any load returned a partial pickle

    def test_partial_pickle_on_disk_is_a_tolerated_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.store(KIND_RESULT, KEY, {"ok": True})
        path = cache._path(KIND_RESULT, KEY)
        path.write_bytes(path.read_bytes()[:10])  # truncate mid-pickle
        assert cache.load(KIND_RESULT, KEY) is None
        assert not path.exists()  # the damaged entry was evicted


class TestStatsClearTolerance:
    def test_stats_on_missing_root_is_zeroed(self, tmp_path):
        stats = ArtifactCache(tmp_path / "never-created").stats()
        assert stats.total_entries == 0
        assert stats.total_bytes == 0

    def test_clear_on_missing_root_returns_zero(self, tmp_path):
        assert ArtifactCache(tmp_path / "never-created").clear() == 0

    def test_stats_tolerates_directory_vanishing_mid_scan(self, tmp_path,
                                                          monkeypatch):
        import pathlib

        cache = ArtifactCache(tmp_path / "cache")
        cache.store(KIND_RESULT, KEY, {"ok": True})

        def exploding_rglob(self, pattern):
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(pathlib.Path, "rglob", exploding_rglob)
        stats = cache.stats()  # zeroed, not a traceback
        assert stats.total_entries == 0

    def test_clear_tolerates_racing_deletion(self, tmp_path, monkeypatch):
        import pathlib

        cache = ArtifactCache(tmp_path / "cache")
        cache.store(KIND_RESULT, KEY, {"ok": True})
        real_unlink = pathlib.Path.unlink

        def racing_unlink(self, *args, **kwargs):
            real_unlink(self, *args, **kwargs)  # someone else got it first
            raise FileNotFoundError(str(self))

        monkeypatch.setattr(pathlib.Path, "unlink", racing_unlink)
        assert cache.clear() == 0  # nothing *we* removed, and no traceback
        monkeypatch.undo()
        assert cache.load(KIND_RESULT, KEY) is None


class TestShardedCache:
    def test_layout_is_artifactcache_compatible(self, tmp_path):
        plain = ArtifactCache(tmp_path / "cache")
        sharded = ShardedCache(tmp_path / "cache", peers=[])
        plain.store(KIND_RESULT, KEY, {"v": 1})
        assert sharded.load(KIND_RESULT, KEY) == {"v": 1}
        assert sharded._path(KIND_RESULT, KEY) == plain._path(KIND_RESULT, KEY)
        assert ShardedCache.shard_of(KEY) == "ab"

    def test_path_peer_read_through_promotes_locally(self, tmp_path):
        peer = ArtifactCache(tmp_path / "peer")
        peer.store(KIND_RESULT, KEY, {"v": 2})
        local = ShardedCache(tmp_path / "local", peers=[str(tmp_path / "peer")])
        assert local.load(KIND_RESULT, KEY) == {"v": 2}
        assert local.counters["peer_hits"] == 1
        # promoted: a second load is a local hit even with the peer gone
        local.peers = []
        assert local.load(KIND_RESULT, KEY) == {"v": 2}
        assert local.counters["local_hits"] == 1

    def test_corrupt_peer_entry_degrades_to_miss(self, tmp_path):
        peer = ArtifactCache(tmp_path / "peer")
        path = peer._path(KIND_RESULT, OTHER)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        local = ShardedCache(tmp_path / "local", peers=[str(tmp_path / "peer")])
        assert local.load(KIND_RESULT, OTHER) is None
        assert local.counters["peer_errors"] == 1
        assert local.counters["misses"] == 1

    def test_unreachable_peers_fall_back_to_compute(self, tmp_path):
        local = ShardedCache(tmp_path / "local",
                             peers=[str(tmp_path / "gone"),
                                    "http://127.0.0.1:1/"])
        # ShardedCache collapses the HTTP timeout for the test's sake by
        # pointing at a closed local port — connection refused is instant.
        assert local.load(KIND_RESULT, KEY) is None
        assert local.counters["misses"] == 1

    def test_single_flight_peer_population(self, tmp_path):
        fetches = []
        barrier = threading.Barrier(4)

        class CountingPeer:
            name = "counting"

            def fetch(self, kind, key):
                import pickle

                fetches.append(key)
                return pickle.dumps({"v": 3})

        local = ShardedCache(tmp_path / "local", peers=[])
        local.peers = [CountingPeer()]

        def load():
            barrier.wait()
            assert local.load(KIND_RESULT, KEY) == {"v": 3}

        threads = [threading.Thread(target=load) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # one flight fetched; the rest were served from the local shard
        assert len(fetches) == 1

    def test_shard_stats_and_describe(self, tmp_path):
        local = ShardedCache(tmp_path / "local", peers=["peer-a"])
        local.store(KIND_RESULT, KEY, {"v": 1})
        local.store(KIND_RESULT, OTHER, {"v": 2})
        shards = local.shard_stats()
        assert shards["ab"]["entries"] == 1
        assert shards["cd"]["entries"] == 1
        info = local.describe()
        assert info["peers"] == ["peer-a"]
        assert info["shards"] == 2
        assert info["counters"]["misses"] == 0

    def test_peers_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_PEERS",
                           " /a/b , http://h:1 ,, ")
        assert peers_from_env() == ["/a/b", "http://h:1"]
        monkeypatch.delenv("REPRO_CACHE_PEERS")
        assert peers_from_env() == []

    def test_executor_accepts_sharded_cache(self, tmp_path):
        """Drop-in property: the executor runs unchanged on a ShardedCache."""
        from repro.common.config import default_machine
        from repro.runtime import Job, execute_jobs
        from repro.workloads import build_workload

        cache = ShardedCache(tmp_path / "cache", peers=[])
        job = Job(program=build_workload("ocean", size="small"),
                  scheme="tpi", machine=default_machine().with_(n_procs=4))
        first = execute_jobs([job], cache=cache)
        again = execute_jobs([job], cache=cache)
        assert first[0].to_dict() == again[0].to_dict()
        assert cache.counters["local_hits"] >= 1
