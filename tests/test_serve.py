"""Tests for the repro.serve subsystem (service, HTTP server, CLI).

The two load-bearing guarantees:

* **differential**: a server response is byte-identical to the CLI
  ``--json`` file for the same job fingerprints (shared payload
  builders + shared artifact cache);
* **dedup**: N concurrent identical cold requests dispatch exactly one
  simulation (coalescing), and warm requests never touch the worker
  pool (read-through cache).
"""

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.runtime import ShardedCache, Telemetry
from repro.serve import (
    ServeConfig,
    ServeError,
    ServeServer,
    SimulationService,
    json_bytes,
    simulate_payload,
    sweep_payload,
)

SIM_BODY = {"workload": "ocean", "size": "small", "procs": 4,
            "schemes": ["tpi", "hw"]}
SWEEP_BODY = {"workload": "ocean", "axes": ["line=1,4"],
              "schemes": ["tpi"], "size": "small"}


def make_service(tmp_path, **config):
    cache = ShardedCache(tmp_path / "cache", peers=[])
    return SimulationService(cache=cache, config=ServeConfig(**config))


def run(coro):
    return asyncio.run(coro)


class TestPayloadBuilders:
    def test_json_bytes_matches_write_json_file(self, tmp_path):
        from repro.runtime import write_json

        payload = {"b": 1, "a": {"x": [1, 2]}}
        path = tmp_path / "out.json"
        write_json(payload, path)
        assert json_bytes(payload) == path.read_bytes()

    def test_simulate_payload_phases_only_when_recorded(self):
        class FakeResult:
            def to_dict(self):
                return {"cycles": 1}

        cold = Telemetry()
        cold.note_phase("engine", 0.25)
        assert "phases" in simulate_payload({"tpi": FakeResult()}, cold)
        assert "phases" not in simulate_payload({"tpi": FakeResult()},
                                                Telemetry())

    def test_sweep_payload_shape(self):
        payload = sweep_payload([], Telemetry())
        assert payload["points"] == []
        assert payload["gang"] == {"traces_shared": 0, "results_shared": 0,
                                   "width": 0}
        assert payload["phases"] == {}


class TestServiceDedup:
    def test_concurrent_identical_cold_requests_run_one_simulation(
            self, tmp_path):
        service = make_service(tmp_path)

        async def stampede():
            return await asyncio.gather(
                *[service.answer("simulate", dict(SIM_BODY))
                  for _ in range(5)])

        payloads = run(stampede())
        service.close()
        assert len(set(payloads)) == 1  # every waiter got the same bytes
        assert service.dispatched == 1
        assert service.telemetry.serve_coalesced == 4
        assert service.telemetry.serve_requests == 5

    def test_warm_request_served_without_worker_pool(self, tmp_path):
        service = make_service(tmp_path)
        run(service.answer("simulate", dict(SIM_BODY)))
        assert service.dispatched == 1
        warm = run(service.answer("simulate", dict(SIM_BODY)))
        service.close()
        assert service.dispatched == 1  # pool untouched the second time
        assert service.telemetry.serve_hits == 1
        # warm payloads are deterministic: no phases key
        assert "phases" not in json.loads(warm.decode())

    def test_sweep_requests_coalesce_too(self, tmp_path):
        service = make_service(tmp_path)

        async def stampede():
            return await asyncio.gather(
                *[service.answer("sweep", dict(SWEEP_BODY))
                  for _ in range(3)])

        payloads = run(stampede())
        service.close()
        assert len(set(payloads)) == 1
        assert service.dispatched == 1
        assert service.telemetry.serve_coalesced == 2

    def test_distinct_requests_do_not_coalesce(self, tmp_path):
        service = make_service(tmp_path)
        other = dict(SIM_BODY, procs=8)

        async def pair():
            return await asyncio.gather(
                service.answer("simulate", dict(SIM_BODY)),
                service.answer("simulate", other))

        run(pair())
        service.close()
        assert service.dispatched == 2
        assert service.telemetry.serve_coalesced == 0

    def test_request_fingerprint_is_stable(self, tmp_path):
        service = make_service(tmp_path)
        a = service.request_fingerprint(service.parse_simulate(SIM_BODY))
        b = service.request_fingerprint(service.parse_simulate(dict(SIM_BODY)))
        c = service.request_fingerprint(
            service.parse_simulate(dict(SIM_BODY, procs=8)))
        service.close()
        assert a == b
        assert a != c


class TestServiceValidation:
    @pytest.mark.parametrize("body,fragment", [
        ({"workload": "nope"}, "unknown workload"),
        ({"workload": "ocean", "schemes": ["bogus"]}, "unknown scheme"),
        ({"workload": "ocean", "engine": "warp"}, "unknown engine"),
        ({"workload": "ocean", "procs": -1}, "procs"),
        ({"workload": "ocean", "procs": 10**9}, "REPRO_MAX_PROCS"),
        ([], "JSON object"),
    ])
    def test_simulate_rejections(self, tmp_path, body, fragment):
        service = make_service(tmp_path)
        with pytest.raises(ServeError) as err:
            service.parse_simulate(body)
        service.close()
        assert err.value.status == 400
        assert fragment in str(err.value)

    @pytest.mark.parametrize("body,fragment", [
        ({"workload": "ocean"}, "axes"),
        ({"workload": "ocean", "axes": ["voltage=1"]}, "unknown axis"),
        ({"workload": "ocean", "axes": ["line=abc"]}, "integers"),
    ])
    def test_sweep_rejections(self, tmp_path, body, fragment):
        service = make_service(tmp_path)
        with pytest.raises(ServeError) as err:
            service.parse_sweep(body)
        service.close()
        assert err.value.status == 400
        assert fragment in str(err.value)

    def test_error_requests_are_counted(self, tmp_path):
        service = make_service(tmp_path)
        with pytest.raises(ServeError):
            run(service.answer("simulate", {"workload": "nope"}))
        service.close()
        assert service.telemetry.serve_errors == 1


class TestDifferentialAgainstCli:
    """Server responses == CLI --json bytes for the same fingerprints."""

    def warm_cli(self, tmp_path, monkeypatch):
        cache_dir = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        out = {}
        for name, argv in {
            "simulate": ["simulate", "ocean", "--size", "small",
                         "--procs", "4", "--scheme", "tpi",
                         "--scheme", "hw"],
            "sweep": ["sweep", "ocean", "--axis", "line=1,4",
                      "--scheme", "tpi", "--size", "small"],
        }.items():
            # Twice: the second (fully warm) run has deterministic
            # telemetry-derived fields (no phases, zero counters).
            for attempt in (1, 2):
                path = tmp_path / f"{name}{attempt}.json"
                assert main([*argv, "--json", str(path)]) == 0
            out[name] = (tmp_path / f"{name}2.json").read_bytes()
        return cache_dir, out

    def test_server_bytes_match_cli_json(self, tmp_path, monkeypatch, capsys):
        cache_dir, cli = self.warm_cli(tmp_path, monkeypatch)
        service = SimulationService(cache=ShardedCache(cache_dir, peers=[]))

        async def go():
            return (await service.answer("simulate", dict(SIM_BODY)),
                    await service.answer("sweep", dict(SWEEP_BODY)))

        srv_sim, srv_swp = run(go())
        service.close()
        assert srv_sim == cli["simulate"]
        assert srv_swp == cli["sweep"]
        # and both were pure cache hits — the pool never started
        assert service.dispatched == 0
        assert service.telemetry.serve_hits == 2


class TestHttpServer:
    """End-to-end over a real socket."""

    @pytest.fixture
    def served(self, tmp_path):
        service = make_service(tmp_path)
        server = ServeServer(service, host="127.0.0.1", port=0)
        yield service, server

    @staticmethod
    def _post(port, path, body):
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"})
        return urllib.request.urlopen(req)

    @staticmethod
    def _get(port, path):
        return urllib.request.urlopen(f"http://127.0.0.1:{port}{path}")

    def _with_server(self, server, fn):
        async def go():
            await server.start()
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(None, fn, server.port)
            finally:
                await server.shutdown()

        return run(go())

    def test_simulate_sweep_and_introspection(self, served):
        service, server = served

        def client(port):
            sim = self._post(port, "/simulate", SIM_BODY)
            sim_body = sim.read()
            job_id = sim.headers["X-Repro-Job"]
            swp = self._post(port, "/sweep", SWEEP_BODY).read()
            health = json.loads(self._get(port, "/healthz").read())
            stats = json.loads(self._get(port, "/stats").read())
            record = json.loads(self._get(port, f"/jobs/{job_id}").read())
            return sim_body, swp, health, stats, record, job_id

        sim_body, swp, health, stats, record, job_id = \
            self._with_server(server, client)
        payload = json.loads(sim_body.decode())
        assert set(SIM_BODY["schemes"]) <= set(payload)
        assert json.loads(swp.decode())["points"]
        assert health["status"] == "ok"
        assert stats["requests"]["total"] == 2
        assert stats["requests"]["dispatched"] == 2
        assert stats["latency"]["samples"] == 2
        assert record["job"] == job_id
        assert record["status"] == "done"
        assert record["result"] == payload

    def test_detach_and_poll(self, served):
        service, server = served

        def client(port):
            resp = self._post(port, "/simulate",
                              dict(SIM_BODY, detach=True))
            ticket = json.loads(resp.read())
            assert resp.status == 202
            for _ in range(200):
                record = json.loads(
                    self._get(port, f"/jobs/{ticket['job']}").read())
                if record["status"] in ("done", "error"):
                    return ticket, record
                import time
                time.sleep(0.05)
            raise AssertionError("detached job never finished")

        ticket, record = self._with_server(server, client)
        assert ticket["status"] == "pending"
        assert record["status"] == "done"
        assert "result" in record

    def test_error_statuses(self, served):
        service, server = served

        def client(port):
            codes = {}
            for name, fn in {
                "unknown_route": lambda: self._get(port, "/nope"),
                "unknown_job": lambda: self._get(port, "/jobs/zzz"),
                "get_on_post": lambda: self._get(port, "/simulate"),
                "bad_json": lambda: urllib.request.urlopen(
                    urllib.request.Request(
                        f"http://127.0.0.1:{port}/simulate",
                        data=b"{not json")),
                "bad_workload": lambda: self._post(
                    port, "/simulate", {"workload": "nope"}),
                "bad_artifact": lambda: self._get(
                    port, "/artifact/result/zz"),
            }.items():
                try:
                    fn()
                    codes[name] = 200
                except urllib.error.HTTPError as err:
                    codes[name] = err.code
            return codes

        codes = self._with_server(server, client)
        assert codes == {"unknown_route": 404, "unknown_job": 404,
                         "get_on_post": 405, "bad_json": 400,
                         "bad_workload": 400, "bad_artifact": 404}

    def test_artifact_route_serves_cached_pickles(self, served, tmp_path):
        service, server = served
        from repro.runtime.cache import KIND_RESULT

        key = "ab" + "0" * 62
        service.cache.store(KIND_RESULT, key, {"payload": 42})

        def client(port):
            resp = self._get(port, f"/artifact/result/{key}")
            return resp.read(), resp.headers["Content-Type"]

        raw, content_type = self._with_server(server, client)
        assert content_type == "application/octet-stream"
        import pickle

        assert pickle.loads(raw) == {"payload": 42}


class TestServeCliErrors:
    def test_unknown_engine_is_usage_error(self, capsys):
        code = main(["simulate", "ocean", "--size", "small",
                     "--engine", "warp"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.count("\n") == 1  # one line, no traceback
        assert "unknown engine 'warp'" in err
        assert "fast, gang, reference" in err

    def test_unbindable_host_is_usage_error(self, capsys):
        code = main(["serve", "--host", "256.1.1.1", "--port", "80"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error: cannot bind 256.1.1.1:80")
        assert "Traceback" not in err

    def test_sweep_unknown_axis_exits_2_one_line(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "ocean", "--axis", "voltage=1,2"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "unknown axis 'voltage'" in err
