"""The compiled (numba) kernel tier: selection, fallback, provenance.

Byte-parity of the tier's *results* lives in test_engine_parity.py (the
jit legs of the grid and hypothesis sweeps); this file covers the knob
itself — the ``REPRO_JIT`` grammar, the ``--jit``/serve surfaces, the
clean wholesale fallback when numba is absent or the geometry is
unsupported, and the provenance/telemetry trail those fallbacks leave.
Everything here runs with or without numba installed: the ``interp``
mode drives the identical loop functions uncompiled.
"""

import warnings

import pytest

from repro.cli import main
from repro.common.config import default_machine
from repro.common.errors import ConfigError
from repro.runtime import JobRecord, Telemetry
from repro.runtime.jobs import Job
from repro.serve.service import ServeError, SimulationService
from repro.sim import jit, prepare
from repro.sim.engine import make_engine
from repro.sim.jit import (JIT_MODES, JitScan, numba_available,
                           parse_jit_env, resolve_jit)
from repro.workloads import build_workload

HAVE_NUMBA = numba_available()[0] is not None


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_JIT", raising=False)


def small_run(jit_mode, **machine_kw):
    machine = default_machine().with_(jit=jit_mode, **machine_kw)
    return prepare(build_workload("flo52", size="small"), machine)


def run_engine(jit_mode, scheme="tpi", **machine_kw):
    run = small_run(jit_mode, **machine_kw)
    engine = make_engine(run.trace, run.marking, run.machine, scheme)
    return engine, engine.run()


class TestEnvGrammar:
    @pytest.mark.parametrize("raw,mode", [
        ("1", "on"), ("on", "on"), ("true", "on"), ("YES", "on"),
        ("0", "off"), ("off", "off"), ("false", "off"), ("No", "off"),
        ("interp", "interp"), ("", "")])
    def test_accepted(self, monkeypatch, raw, mode):
        monkeypatch.setenv("REPRO_JIT", raw)
        assert parse_jit_env() == mode

    def test_unset_is_empty(self):
        assert parse_jit_env() == ""

    @pytest.mark.parametrize("raw", ["banana", "2", "jit", "ON=1"])
    def test_garbage_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_JIT", raw)
        with pytest.raises(ConfigError, match="REPRO_JIT"):
            parse_jit_env()

    def test_machine_field_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "interp")
        assert resolve_jit(default_machine().with_(jit="off")) == "off"

    def test_auto_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "interp")
        assert resolve_jit(default_machine()) == "interp"
        monkeypatch.delenv("REPRO_JIT")
        assert resolve_jit(default_machine()) == "off"

    def test_machine_validates_tier(self):
        with pytest.raises(ConfigError, match="jit tier"):
            default_machine().with_(jit="banana")


class TestProvenance:
    def test_off_leaves_blank(self):
        engine, result = run_engine("off")
        assert result.jit == ""
        assert not isinstance(engine._kernel._scan, JitScan)

    def test_interp_attaches_and_engages(self):
        engine, result = run_engine("interp")
        assert result.jit == "interp"
        assert isinstance(engine._kernel._scan, JitScan)
        assert engine._kernel._scan.calls > 0

    def test_no_kernel_fallback(self):
        from repro.common.config import CacheConfig

        engine, result = run_engine(
            "interp", cache=CacheConfig(associativity=2))
        assert result.jit == "fallback:no-kernel"
        assert engine._kernel is None

    def test_jit_absent_from_to_dict(self):
        _engine, result = run_engine("interp")
        assert "jit" not in result.to_dict()

    def test_reference_engine_ignores_tier(self):
        run = small_run("interp")
        engine = make_engine(run.trace, run.marking,
                             run.machine.with_(engine="reference"), "tpi")
        assert engine.run().jit == ""


@pytest.mark.skipif(HAVE_NUMBA, reason="numba present; fallback unreachable")
class TestMissingNumbaFallback:
    def test_warns_once_and_falls_back(self):
        jit._warned.discard("numba-missing")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            _engine, first = run_engine("on")
            _engine, second = run_engine("on")
        assert first.jit == "fallback:numba-missing"
        assert second.jit == "fallback:numba-missing"
        relevant = [w for w in caught if "numba" in str(w.message)]
        assert len(relevant) == 1
        assert issubclass(relevant[0].category, RuntimeWarning)

    def test_fallback_results_match_off(self):
        import json

        jit._warned.add("numba-missing")  # keep the log clean
        _e, on = run_engine("on")
        _e, off = run_engine("off")
        assert json.dumps(on.to_dict(), sort_keys=True) == \
            json.dumps(off.to_dict(), sort_keys=True)


class TestCliSurface:
    def test_garbage_env_is_usage_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JIT", "banana")
        assert main(["simulate", "flo52", "--size", "small",
                     "--scheme", "base"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "REPRO_JIT" in err

    def test_unknown_jit_mode_is_usage_error(self, capsys):
        assert main(["simulate", "flo52", "--size", "small",
                     "--scheme", "base", "--jit", "banana"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "banana" in err

    def test_jit_flag_exports_mode(self, monkeypatch, capsys):
        import os

        assert main(["simulate", "flo52", "--size", "small",
                     "--scheme", "base", "--no-cache",
                     "--jit", "interp"]) == 0
        assert os.environ.get("REPRO_JIT") == "interp"

    def test_modes_cover_cli_choices(self):
        assert JIT_MODES == ("on", "off", "interp")


class TestServeSurface:
    def test_invalid_jit_is_400(self):
        service = SimulationService()
        with pytest.raises(ServeError) as err:
            service.parse_simulate({"workload": "flo52", "jit": "banana"})
        assert err.value.status == 400
        assert "jit" in str(err.value)

    @pytest.mark.parametrize("flag,mode", [
        (True, "on"), (False, "off"), ("interp", "interp")])
    def test_jit_flag_reaches_machine(self, flag, mode):
        service = SimulationService()
        parsed = service.parse_simulate(
            {"workload": "flo52", "size": "small", "jit": flag})
        assert all(job.machine.jit == mode for job in parsed.jobs)

    def test_absent_flag_keeps_auto(self):
        service = SimulationService()
        parsed = service.parse_simulate({"workload": "flo52",
                                         "size": "small"})
        assert all(job.machine.jit == "auto" for job in parsed.jobs)


class TestFingerprints:
    def test_fingerprints_jit_agnostic(self):
        program = build_workload("flo52", size="small")
        prints = set()
        for mode in ("auto", "on", "off", "interp"):
            job = Job(program, "tpi", default_machine().with_(jit=mode))
            prints.add((job.prepare_fingerprint(), job.fingerprint()))
        assert len(prints) == 1


class TestTelemetry:
    def record(self, jit_value):
        return JobRecord(label="flo52/tpi", scheme="tpi", fingerprint="f",
                         jit=jit_value)

    def test_fallbacks_counted_by_reason(self):
        t = Telemetry()
        for value in ("fallback:numba-missing", "fallback:numba-missing",
                      "fallback:no-kernel", "numba", "interp", ""):
            t.note_job(self.record(value))
        assert t.jit_fallbacks == {"numba-missing": 2, "no-kernel": 1}
        report = t.report().to_dict()
        assert report["jit_fallbacks"] == {"no-kernel": 1,
                                           "numba-missing": 2}
        assert "numba-missing x2" in t.report().render()

    def test_merge_worker_routes_through_note_job(self):
        t = Telemetry()
        t.merge_worker({"records": [
            {"label": "a/tpi", "scheme": "tpi", "fingerprint": "f",
             "jit": "fallback:no-kernel"}]})
        assert t.jit_fallbacks == {"no-kernel": 1}

    def test_clean_runs_omit_section(self):
        t = Telemetry()
        t.note_job(self.record("numba"))
        assert "jit_fallbacks" not in t.report().to_dict()


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestCompiledTier:
    def test_compiled_attaches_and_engages(self):
        engine, result = run_engine("on")
        assert result.jit == "numba"
        assert engine._kernel._scan.calls > 0

    def test_compiled_matches_interp(self):
        import json

        _e, on = run_engine("on")
        _e, interp = run_engine("interp")
        assert json.dumps(on.to_dict(), sort_keys=True) == \
            json.dumps(interp.to_dict(), sort_keys=True)
