"""Smoke tests for the runnable examples (they must stay executable)."""

import runpy
import sys

import pytest


def run_example(path, argv):
    saved = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_compiler_walkthrough(self, capsys):
        run_example("examples/compiler_walkthrough.py", [])
        out = capsys.readouterr().out
        assert "epoch flow graph" in out
        assert "time_read" in out

    def test_reproduce_paper_single_small(self, capsys):
        run_example("examples/reproduce_paper.py",
                    ["--small", "fig5_storage"])
        out = capsys.readouterr().out
        assert "fig5_storage" in out and "two-phase invalidation" in out

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        run_example("examples/quickstart.py", [])
        out = capsys.readouterr().out
        assert "speedup over BASE" in out

    @pytest.mark.slow
    def test_custom_scheme(self, capsys):
        run_example("examples/custom_scheme.py", ["trfd"])
        out = capsys.readouterr().out
        assert "flush" in out and "tpi" in out

    @pytest.mark.slow
    def test_sensitivity_study(self, capsys):
        run_example("examples/sensitivity_study.py", ["trfd"])
        out = capsys.readouterr().out
        assert "timetag width" in out
