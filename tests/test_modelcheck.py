"""Bounded-exhaustive protocol verification (repro.analysis.modelcheck
and repro.analysis.modelcheck_tardis).

Covers the verification claims end to end for both checked protocols
(TPI timetags and Tardis leases): the default config grids are clean and
force the counter wrap-arounds / timestamp rebases, the checkers consult
the *same* rule functions the production schemes execute, every seeded
protocol bug yields a counterexample that the production implementation
refutes (and, when production shares the bug, confirms), and the CLI /
cache plumbing behaves like ``repro lint``'s.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis.diagnostics import RULES, Severity
from repro.analysis.modelcheck import (
    DEFAULT_CONFIGS,
    PRODUCTION_RULES,
    ModelConfig,
    check_config,
    modelcheck_report,
    protocol_mutants,
    protocol_self_test,
    replay_counterexample,
)
from repro.analysis.modelcheck_tardis import (
    TARDIS_DEFAULT_CONFIGS,
    TARDIS_PRODUCTION_RULES,
    TARDIS_SELF_TEST_CONFIGS,
    TardisModelConfig,
    replay_tardis_counterexample,
    tardis_check_config,
    tardis_modelcheck_report,
    tardis_mutants,
    tardis_self_test,
)
from repro.cli import main
from repro.coherence import tardis_rules, tpi_rules
from repro.common.errors import ConfigError
from repro.runtime import ArtifactCache

SMALL = ModelConfig(n_procs=2, n_lines=1, line_words=1, timetag_bits=2,
                    max_epochs=10)


class TestSharedRules:
    """The verified logic must BE the production logic, not a copy."""

    def test_production_rules_bind_the_shared_module(self):
        assert PRODUCTION_RULES.timestamp_hit is tpi_rules.timestamp_hit
        assert PRODUCTION_RULES.strict_hit is tpi_rules.strict_hit
        assert PRODUCTION_RULES.fill_tag is tpi_rules.fill_tag
        assert PRODUCTION_RULES.w_register_update is tpi_rules.w_register_update
        assert PRODUCTION_RULES.crossed_phase_bounds is \
            tpi_rules.crossed_phase_bounds
        assert PRODUCTION_RULES.reset_selects is tpi_rules.reset_selects

    def test_simulator_imports_the_same_functions(self):
        import repro.coherence.tpi as tpi

        assert tpi.timestamp_hit is tpi_rules.timestamp_hit
        assert tpi.strict_hit is tpi_rules.strict_hit
        assert tpi.fill_tag is tpi_rules.fill_tag
        assert tpi.w_register_update is tpi_rules.w_register_update
        assert tpi.crossed_phase_bounds is tpi_rules.crossed_phase_bounds

    def test_batch_kernel_imports_the_same_functions(self):
        import repro.coherence.batch as batch

        assert batch.time_read_window is tpi_rules.time_read_window
        assert batch.word_age is tpi_rules.word_age


class TestDefaultGrid:
    def test_grid_covers_the_issue_bounds(self):
        assert any(c.n_procs >= 3 for c in DEFAULT_CONFIGS)
        assert any(c.n_lines >= 2 for c in DEFAULT_CONFIGS)
        assert any(c.line_words >= 2 for c in DEFAULT_CONFIGS)
        assert {c.timetag_bits for c in DEFAULT_CONFIGS} >= {2, 3}
        assert all(c.n_procs >= 2 for c in DEFAULT_CONFIGS)
        assert all(c.wraps >= 2 for c in DEFAULT_CONFIGS)

    def test_smallest_config_is_exhaustive_and_clean(self):
        result = check_config(SMALL)
        assert result.ok
        assert not result.truncated
        assert result.violations == []
        assert result.states > 1000
        assert result.reads_checked > 0
        assert "OK" in result.summary()

    def test_three_procs_and_k3_configs_are_clean(self):
        for config in DEFAULT_CONFIGS:
            if config.n_procs == 3 or config.timetag_bits == 3:
                result = check_config(config)
                assert result.ok, result.summary()

    def test_bounds_are_validated(self):
        with pytest.raises(ConfigError):
            ModelConfig(n_procs=1)
        with pytest.raises(ConfigError):
            ModelConfig(timetag_bits=9)
        with pytest.raises(ConfigError):
            ModelConfig(max_epochs=0)

    def test_state_cap_marks_truncation(self):
        result = check_config(SMALL, max_states=50)
        assert result.truncated
        assert not result.ok


class TestMutationSelfTest:
    """Acceptance gate: 100% of seeded protocol bugs must be caught."""

    def test_every_seeded_bug_is_caught(self):
        result = protocol_self_test(replay=False)
        assert result.seeded == 4
        assert result.detection_rate == 1.0, result.summary()
        assert result.missed == []

    def test_production_refutes_every_mutant_counterexample(self):
        """The replay direction tests cannot fake: production does not
        have the seeded bugs, so it must reject each mutant's trace."""
        result = protocol_self_test(replay=True)
        assert all(m.refuted_by_production for m in result.mutations), \
            [(m.name, m.refuted_by_production) for m in result.mutations]

    @pytest.mark.parametrize("mutant", protocol_mutants(),
                             ids=lambda m: m.name)
    def test_each_mutant_falls_on_the_small_config(self, mutant):
        for config in (SMALL,
                       ModelConfig(n_procs=2, n_lines=1, line_words=2,
                                   timetag_bits=2, max_epochs=8)):
            result = check_config(config, mutant)
            if result.violations:
                violation = result.violations[0]
                rendered = "\n".join(violation.render())
                assert "staleness-safety violation" in rendered
                assert violation.stale_since < violation.epoch
                return
        pytest.fail(f"mutant {mutant.name} produced no counterexample")


def _window_off_by_one(epoch, tag, w_reg, modulus):
    return tpi_rules.word_age(epoch, tag, modulus) <= \
        tpi_rules.time_read_window(epoch, w_reg, modulus) + 1


class TestProductionReplay:
    def test_replay_confirms_when_production_shares_the_bug(self, monkeypatch):
        """Completeness cross-check: seed the same bug into the model AND
        the production scheme; the replay must now confirm the trace."""
        import repro.coherence.tpi as tpi

        monkeypatch.setattr(tpi, "timestamp_hit", _window_off_by_one)
        mutant = replace(PRODUCTION_RULES, name="window-off-by-one",
                         timestamp_hit=_window_off_by_one)
        result = check_config(SMALL, mutant)
        assert result.violations
        outcome = replay_counterexample(result.violations[0])
        assert outcome.confirmed, outcome
        assert "stale read" in outcome.detail

    def test_divergence_raises_mc002(self, monkeypatch):
        """A counterexample against the production *rules* that production
        itself refutes means the abstract model drifted: MC002."""
        import repro.analysis.modelcheck as mc

        mutant = replace(PRODUCTION_RULES, name="production",
                         timestamp_hit=_window_off_by_one)
        monkeypatch.setattr(mc, "PRODUCTION_RULES", mutant)
        report = mc.modelcheck_report([SMALL], rules=mutant,
                                      max_violations=1)
        rule_ids = {d.rule_id for d in report.diagnostics}
        assert "MC001" in rule_ids
        assert "MC002" in rule_ids
        assert report.exit_code() == 1


class TestReportAndCache:
    def test_clean_report_exits_zero(self):
        report = modelcheck_report([SMALL], cache=None)
        assert report.tool == "modelcheck"
        assert report.exit_code() == 0
        assert report.meta["wraps"] >= 2
        assert report.meta["states"] > 0
        payload = report.to_dict()
        assert payload["tool"] == "modelcheck"
        assert payload["counts"]["error"] == 0

    def test_under_two_wraps_warns_mc003(self):
        shallow = ModelConfig(n_procs=2, n_lines=1, line_words=1,
                              timetag_bits=2, max_epochs=6)
        report = modelcheck_report([shallow], cache=None)
        assert [d.rule_id for d in report.diagnostics] == ["MC003"]
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_truncation_warns_mc004(self):
        report = modelcheck_report([SMALL], max_states=50, cache=None)
        assert "MC004" in {d.rule_id for d in report.diagnostics}

    def test_mc_rules_are_catalogued(self):
        assert RULES["MC001"].severity is Severity.ERROR
        assert RULES["MC002"].severity is Severity.ERROR
        assert RULES["MC003"].severity is Severity.WARNING
        assert RULES["MC004"].severity is Severity.WARNING

    def test_warm_repeat_hits_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = modelcheck_report([SMALL], cache=cache)
        assert cold.meta["cache"] == "miss"
        warm = modelcheck_report([SMALL], cache=cache)
        assert warm.meta["cache"] == "hit"
        assert warm.to_dict()["counts"] == cold.to_dict()["counts"]
        assert cache.stats().entries.get("modelcheck") == 1

    def test_cache_key_depends_on_bounds(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        modelcheck_report([SMALL], cache=cache)
        other = modelcheck_report(
            [replace(SMALL, max_epochs=9)], cache=cache)
        assert other.meta["cache"] == "miss"
        assert cache.stats().entries.get("modelcheck") == 2

    def test_mutant_reports_are_never_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        mutant = protocol_mutants()[0]
        modelcheck_report([SMALL], rules=mutant, cache=cache)
        assert cache.stats().entries.get("modelcheck", 0) == 0


class TestCli:
    ARGS = ["modelcheck", "--procs", "2", "--lines", "1", "--words", "1",
            "--k", "2", "--epochs", "10", "--no-cache"]

    def test_explicit_bounds_exit_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "modelcheck tpi-protocol: 0 error(s)" in out
        assert "p2.l1.w1.k2.e10" in out

    def test_bad_bounds_one_line_exit_2(self, capsys):
        assert main(["modelcheck", "--epochs", "99", "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_self_test_flag(self, capsys):
        assert main([*self.ARGS, "--self-test", "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "4/4 seeded protocol bugs" in out
        assert "MISSED" not in out

    def test_shallow_bounds_warn_but_exit_zero(self, capsys):
        args = ["modelcheck", "--procs", "2", "--lines", "1", "--words", "1",
                "--k", "2", "--epochs", "6", "--no-cache"]
        assert main(args) == 0
        assert "MC003" in capsys.readouterr().out
        assert main([*args, "--strict"]) == 1

    def test_json_report_written(self, tmp_path, capsys):
        path = tmp_path / "mc.json"
        assert main([*self.ARGS, "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["tool"] == "modelcheck"
        assert payload["counts"]["error"] == 0
        assert payload["meta"]["wraps"] >= 2

    def test_unwritable_json_one_line_exit_2(self, capsys):
        args = ["modelcheck", "--procs", "2", "--lines", "1", "--words", "1",
                "--k", "2", "--epochs", "6", "--no-cache",
                "--json", "/nonexistent-dir/out.json"]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot write --json output")
        assert len(err.strip().splitlines()) == 1

    def test_cache_dir_round_trip(self, tmp_path, capsys):
        args = ["modelcheck", "--procs", "2", "--lines", "1", "--words", "1",
                "--k", "2", "--epochs", "10", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache=hit" in capsys.readouterr().out


# --------------------------------------------------------------------- tardis


TARDIS_SMALL = TardisModelConfig(n_procs=2, n_lines=1, line_words=1,
                                 timestamp_bits=2, lease=1, max_ts=9)


class TestTardisSharedRules:
    """The verified logic must BE the production logic, not a copy."""

    def test_production_rules_bind_the_shared_module(self):
        assert TARDIS_PRODUCTION_RULES.lease_hit is tardis_rules.lease_hit
        assert TARDIS_PRODUCTION_RULES.lease_grant is tardis_rules.lease_grant
        assert TARDIS_PRODUCTION_RULES.own_lease is tardis_rules.own_lease
        assert TARDIS_PRODUCTION_RULES.write_timestamp is \
            tardis_rules.write_timestamp
        assert TARDIS_PRODUCTION_RULES.pts_join is tardis_rules.pts_join
        assert TARDIS_PRODUCTION_RULES.renewal_ok is tardis_rules.renewal_ok
        assert TARDIS_PRODUCTION_RULES.write_renewal_ok is \
            tardis_rules.renewal_ok
        assert TARDIS_PRODUCTION_RULES.rebase_needed is \
            tardis_rules.rebase_needed
        assert TARDIS_PRODUCTION_RULES.rebase_base is tardis_rules.rebase_base
        assert TARDIS_PRODUCTION_RULES.clamp is tardis_rules.clamp

    def test_simulator_binds_the_same_module(self):
        import repro.coherence.tardis as tardis

        assert tardis.tardis_rules is tardis_rules


class TestTardisDefaultGrid:
    def test_grid_covers_the_issue_bounds(self):
        assert any(c.n_procs >= 3 for c in TARDIS_DEFAULT_CONFIGS)
        assert any(c.n_lines >= 2 for c in TARDIS_DEFAULT_CONFIGS)
        assert any(c.line_words >= 2 for c in TARDIS_DEFAULT_CONFIGS)
        assert {c.timestamp_bits for c in TARDIS_DEFAULT_CONFIGS} >= {2, 3}
        assert all(c.n_procs >= 2 for c in TARDIS_DEFAULT_CONFIGS)

    def test_smallest_config_is_exhaustive_and_clean(self):
        result = tardis_check_config(TARDIS_SMALL)
        assert result.ok
        assert not result.truncated
        assert result.violations == []
        assert result.states > 1000
        assert result.reads_checked > 0
        assert result.max_rebases >= 2
        assert "OK" in result.summary()

    def test_k3_config_is_clean_and_rebases_twice(self):
        for config in TARDIS_DEFAULT_CONFIGS:
            if config.timestamp_bits == 3:
                result = tardis_check_config(config)
                assert result.ok, result.summary()
                assert result.max_rebases >= 2

    def test_bounds_are_validated(self):
        with pytest.raises(ConfigError):
            TardisModelConfig(n_procs=1)
        with pytest.raises(ConfigError):
            TardisModelConfig(timestamp_bits=5)
        with pytest.raises(ConfigError):
            TardisModelConfig(timestamp_bits=2, lease=2)
        with pytest.raises(ConfigError):
            TardisModelConfig(max_ts=0)

    def test_state_cap_marks_truncation(self):
        result = tardis_check_config(TARDIS_SMALL, max_states=50)
        assert result.truncated
        assert not result.ok


class TestTardisMutationSelfTest:
    """Acceptance gate: 100% of seeded protocol bugs must be caught."""

    def test_every_seeded_bug_is_caught(self):
        result = tardis_self_test(replay=False)
        assert result.seeded == 4
        assert result.detection_rate == 1.0, result.summary()
        assert result.missed == []

    def test_production_refutes_every_mutant_counterexample(self):
        """The replay direction tests cannot fake: production does not
        have the seeded bugs, so it must reject each mutant's trace."""
        result = tardis_self_test(replay=True)
        assert all(m.refuted_by_production for m in result.mutations), \
            [(m.name, m.refuted_by_production) for m in result.mutations]

    @pytest.mark.parametrize("mutant", tardis_mutants(),
                             ids=lambda m: m.name)
    def test_each_mutant_falls_on_the_self_test_grid(self, mutant):
        for config in TARDIS_SELF_TEST_CONFIGS:
            result = tardis_check_config(config, mutant)
            if result.violations:
                violation = result.violations[0]
                rendered = "\n".join(violation.render())
                assert "staleness-safety violation" in rendered
                assert violation.version < violation.floor
                assert violation.served in ("hit", "renewal")
                return
        pytest.fail(f"mutant {mutant.name} produced no counterexample")


def _lease_off_by_one(pts, rts):
    return rts + 1 >= pts


class TestTardisProductionReplay:
    def test_replay_confirms_when_production_shares_the_bug(self, monkeypatch):
        """Completeness cross-check: seed the same bug into the model AND
        the production scheme; the replay must now confirm the trace."""
        monkeypatch.setattr(tardis_rules, "lease_hit", _lease_off_by_one)
        mutant = replace(TARDIS_PRODUCTION_RULES, name="lease-off-by-one",
                         lease_hit=_lease_off_by_one)
        result = tardis_check_config(TARDIS_SELF_TEST_CONFIGS[0], mutant)
        assert result.violations
        outcome = replay_tardis_counterexample(result.violations[0])
        assert outcome.confirmed, outcome
        assert "stale read" in outcome.detail

    def test_divergence_raises_mc102(self, monkeypatch):
        """A counterexample against the production *rules* that production
        itself refutes means the abstract model drifted: MC102."""
        import repro.analysis.modelcheck_tardis as mct

        mutant = replace(TARDIS_PRODUCTION_RULES, name="production",
                         lease_hit=_lease_off_by_one)
        monkeypatch.setattr(mct, "TARDIS_PRODUCTION_RULES", mutant)
        report = mct.tardis_modelcheck_report(
            [TARDIS_SELF_TEST_CONFIGS[0]], rules=mutant, max_violations=1)
        rule_ids = {d.rule_id for d in report.diagnostics}
        assert "MC101" in rule_ids
        assert "MC102" in rule_ids
        assert report.exit_code() == 1


class TestTardisReportAndCache:
    def test_clean_report_exits_zero(self):
        report = tardis_modelcheck_report([TARDIS_SMALL], cache=None)
        assert report.tool == "modelcheck"
        assert report.exit_code() == 0
        assert report.meta["rebases"] >= 2
        assert report.meta["states"] > 0
        payload = report.to_dict()
        assert payload["counts"]["error"] == 0

    def test_under_two_rebases_warns_mc103(self):
        shallow = TardisModelConfig(n_procs=2, n_lines=1, line_words=1,
                                    timestamp_bits=2, lease=1, max_ts=3)
        report = tardis_modelcheck_report([shallow], cache=None)
        assert [d.rule_id for d in report.diagnostics] == ["MC103"]
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_truncation_warns_mc104(self):
        report = tardis_modelcheck_report([TARDIS_SMALL], max_states=50,
                                          cache=None)
        assert "MC104" in {d.rule_id for d in report.diagnostics}

    def test_mc_rules_are_catalogued(self):
        assert RULES["MC101"].severity is Severity.ERROR
        assert RULES["MC102"].severity is Severity.ERROR
        assert RULES["MC103"].severity is Severity.WARNING
        assert RULES["MC104"].severity is Severity.WARNING

    def test_warm_repeat_hits_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = tardis_modelcheck_report([TARDIS_SMALL], cache=cache)
        assert cold.meta["cache"] == "miss"
        warm = tardis_modelcheck_report([TARDIS_SMALL], cache=cache)
        assert warm.meta["cache"] == "hit"
        assert warm.to_dict()["counts"] == cold.to_dict()["counts"]
        assert cache.stats().entries.get("modelcheck") == 1

    def test_cache_key_depends_on_bounds_and_scheme(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        tardis_modelcheck_report([TARDIS_SMALL], cache=cache)
        other = tardis_modelcheck_report(
            [replace(TARDIS_SMALL, max_ts=8)], cache=cache)
        assert other.meta["cache"] == "miss"
        modelcheck_report([SMALL], cache=cache)
        assert cache.stats().entries.get("modelcheck") == 3

    def test_mutant_reports_are_never_cached(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        mutant = tardis_mutants()[0]
        tardis_modelcheck_report([TARDIS_SMALL], rules=mutant, cache=cache)
        assert cache.stats().entries.get("modelcheck", 0) == 0


class TestTardisCli:
    ARGS = ["modelcheck", "--scheme", "tardis", "--procs", "2", "--lines",
            "1", "--words", "1", "--k", "2", "--max-ts", "9", "--no-cache"]

    def test_explicit_bounds_exit_zero(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "modelcheck tardis-protocol: 0 error(s)" in out
        assert "p2.l1.w1.k2.s1.t9" in out

    def test_bad_bounds_one_line_exit_2(self, capsys):
        assert main(["modelcheck", "--scheme", "tardis", "--max-ts", "99",
                     "--no-cache"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_scheme_flag_mismatch_exit_2(self, capsys):
        assert main(["modelcheck", "--lease", "2", "--no-cache"]) == 2
        assert "tardis only" in capsys.readouterr().err
        assert main(["modelcheck", "--scheme", "tardis", "--epochs", "6",
                     "--no-cache"]) == 2
        assert "tpi only" in capsys.readouterr().err

    def test_self_test_flag(self, capsys):
        assert main([*self.ARGS, "--self-test", "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "4/4 seeded protocol bugs" in out
        assert "MISSED" not in out

    def test_shallow_bounds_warn_but_exit_zero(self, capsys):
        args = ["modelcheck", "--scheme", "tardis", "--procs", "2",
                "--lines", "1", "--words", "1", "--k", "2", "--max-ts", "3",
                "--no-cache"]
        assert main(args) == 0
        assert "MC103" in capsys.readouterr().out
        assert main([*args, "--strict"]) == 1

    def test_json_report_written(self, tmp_path, capsys):
        path = tmp_path / "mc.json"
        assert main([*self.ARGS, "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["tool"] == "modelcheck"
        assert payload["counts"]["error"] == 0
        assert payload["meta"]["rebases"] >= 2
