"""Tests for the stale-reference marking pass (Time-Read insertion).

These check the classic scenarios the paper describes: cross-epoch staleness,
the serial->serial same-processor precision, DOALL cross-iteration
dependences, intra-task validation downgrades, critical sections, and the
interprocedural modes.
"""

import pytest

from repro.compiler import InterprocMode, MarkingOptions, RefMark, mark_program
from repro.ir import ProgramBuilder


def mark_of(marking, ref):
    return marking.tpi_mark(ref.site)


class TestCrossEpochStaleness:
    def test_read_after_parallel_write_is_time_read(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            r = b.at("A", 3)
            b.stmt(reads=[r])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_parallel_read_after_serial_write_is_time_read(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.doall("i", 0, 7) as i:
                r = b.at("A", 0)
                b.stmt(reads=[r], writes=[b.at("B", i)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_serial_read_after_serial_write_is_normal(self):
        """Serial epochs share the master processor: never stale."""
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("B", i)])  # unrelated array
            r = b.at("A", 0)
            b.stmt(reads=[r])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_migration_flag_kills_serial_precision(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("B", i)])
            r = b.at("A", 0)
            b.stmt(reads=[r])
        m = mark_program(b.build(), opts=MarkingOptions(assume_no_migration=False))
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_disjoint_sections_not_stale(self):
        b = ProgramBuilder("p")
        b.array("A", (16,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])  # writes 0..7
            r = b.at("A", 12)
            b.stmt(reads=[r])  # reads 12: untouched
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_write_in_later_epoch_not_stale_without_loop(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("main"):
            r = b.at("A", 0)
            b.stmt(reads=[r])
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_loop_back_edge_makes_later_write_stale(self):
        b = ProgramBuilder("p", params={"T": 4})
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    r = b.at("A", i)  # reads what the *next* doall wrote last time
                    b.stmt(reads=[r], writes=[b.at("B", i)])
                with b.doall("j", 0, 7) as j:
                    b.stmt(writes=[b.at("A", j)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ


class TestSameEpochDependences:
    def test_same_iteration_access_is_normal(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
                r = b.at("A", i)  # same element, same task
                b.stmt(reads=[r], writes=[b.at("B", i)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_cross_iteration_read_is_time_read(self):
        b = ProgramBuilder("p")
        b.array("A", (16,))
        b.array("B", (16,))
        with b.procedure("main"):
            with b.doall("i", 1, 7) as i:
                r = b.at("A", i - 1)  # neighbour element: another task writes it
                b.stmt(reads=[r], writes=[b.at("A", i)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_disjoint_halves_in_same_doall_are_normal(self):
        b = ProgramBuilder("p")
        b.array("A", (32,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                r = b.at("A", i + 16)  # reads upper half
                b.stmt(reads=[r], writes=[b.at("A", i)])  # writes lower half
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_strided_write_vs_offset_read_disjoint(self):
        b = ProgramBuilder("p")
        b.array("A", (64,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                r = b.at("A", i * 2 + 1)  # odd elements
                b.stmt(reads=[r], writes=[b.at("A", i * 2)])  # even elements
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ


class TestIntraTaskValidation:
    def test_read_after_own_write_downgraded(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 7) as j:
                b.stmt(writes=[b.at("A", j)])  # own write validates
                r = b.at("A", j)
                b.stmt(reads=[r], writes=[b.at("B", j)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ
        assert m.sc_mark(r.site) is RefMark.READ  # write validates SC too

    def test_read_after_time_read_downgraded_for_tpi_only(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8, 2))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 7) as j:
                r1 = b.at("A", j)
                b.stmt(reads=[r1], writes=[b.at("B", j, 0)])
                r2 = b.at("A", j)
                b.stmt(reads=[r2], writes=[b.at("B", j, 1)])
        m = mark_program(b.build())
        assert m.tpi_mark(r1.site) is RefMark.TIME_READ
        assert m.tpi_mark(r2.site) is RefMark.READ  # validated by r1
        assert m.sc_mark(r1.site) is RefMark.TIME_READ
        assert m.sc_mark(r2.site) is RefMark.TIME_READ  # bypass validates nothing

    def test_reuse_disabled_keeps_time_reads(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 7) as j:
                b.stmt(writes=[b.at("A", j)])
                r = b.at("A", j)
                b.stmt(reads=[r], writes=[b.at("B", j)])
        m = mark_program(b.build(), opts=MarkingOptions(intra_task_reuse=False))
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_validation_does_not_leak_across_inner_loop_iterations(self):
        b = ProgramBuilder("p")
        b.array("A", (8, 8))
        b.array("B", (8, 8))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i, 0)])
            with b.doall("x", 0, 7) as x:
                with b.serial("k", 0, 7) as k:
                    r = b.at("A", x, k)  # read before the write in body order
                    b.stmt(reads=[r], writes=[b.at("B", x, k)])
                    b.stmt(writes=[b.at("A", x, k)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_branch_validation_intersects(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("A", (8,))
        b.array("B", (8, 2))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 7) as j:
                with b.when(b.v("j"), "<", 4):
                    b.stmt(writes=[b.at("A", j)])  # validates only in then-branch
                r = b.at("A", j)
                b.stmt(reads=[r], writes=[b.at("B", j, 0)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ


class TestCriticalSections:
    def test_reads_in_critical_section_forced_time_read(self):
        b = ProgramBuilder("p")
        b.array("sum", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                with b.critical("L"):
                    r = b.at("sum", 0)
                    b.stmt(reads=[r], writes=[b.at("sum", 0)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ

    def test_critical_read_of_never_written_array_is_normal(self):
        b = ProgramBuilder("p")
        b.array("cfg", (4,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                with b.critical("L"):
                    r = b.at("cfg", 0)
                    b.stmt(reads=[r], writes=[b.at("B", i)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ

    def test_validation_cleared_after_critical_section(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("B", (8, 2))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 7) as j:
                b.stmt(writes=[b.at("A", j)])  # would validate...
                with b.critical("L"):
                    b.stmt(writes=[b.at("B", j, 0)])
                r = b.at("A", j)  # ...but the lock region cleared it
                b.stmt(reads=[r], writes=[b.at("B", j, 1)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.TIME_READ


class TestPrivateData:
    def test_private_arrays_never_time_read(self):
        b = ProgramBuilder("p")
        b.array("tmp", (8,), private=True)
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("tmp", i)])
            with b.doall("j", 0, 7) as j:
                r = b.at("tmp", j)
                b.stmt(reads=[r], writes=[b.at("B", j)])
        m = mark_program(b.build())
        assert m.tpi_mark(r.site) is RefMark.READ


class TestInterprocModes:
    def build(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        b.array("C", (8,))
        self_refs = {}
        with b.procedure("reader"):
            r = b.at("C", 0)
            b.stmt(reads=[r])
            self_refs["r"] = r
        with b.procedure("main"):
            b.stmt(writes=[b.at("C", 0)])  # serial write: same processor
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            b.call("reader")
        return b.build(), self_refs

    def test_inline_mode_sees_same_processor(self):
        program, refs = self.build()
        m = mark_program(program, opts=MarkingOptions(interproc=InterprocMode.INLINE))
        assert m.tpi_mark(refs["r"].site) is RefMark.READ

    def test_none_mode_marks_everything_written(self):
        program, refs = self.build()
        m = mark_program(program, opts=MarkingOptions(interproc=InterprocMode.NONE))
        assert m.tpi_mark(refs["r"].site) is RefMark.TIME_READ

    def test_summary_mode_widens_callee_sections(self):
        b = ProgramBuilder("p")
        b.array("A", (16,))
        b.array("B", (16,))
        with b.procedure("reader"):
            r = b.at("A", 12)  # disjoint from the writes under INLINE
            b.stmt(reads=[r])
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            b.call("reader")
        program = b.build()
        inline = mark_program(program, opts=MarkingOptions(interproc=InterprocMode.INLINE))
        summary = mark_program(program, opts=MarkingOptions(interproc=InterprocMode.SUMMARY))
        assert inline.tpi_mark(r.site) is RefMark.READ
        assert summary.tpi_mark(r.site) is RefMark.TIME_READ


class TestStats:
    def test_stats_counts(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 0)])
        m = mark_program(b.build())
        assert m.stats["sites.time_read.tpi"] == 1
        assert m.stats["epochs.parallel"] == 1
        assert m.stats["epochs"] == 2
