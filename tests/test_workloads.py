"""Tests for the six Perfect-Club-like workloads."""

import pytest

from repro.common.config import default_machine
from repro.common.stats import MissKind, TrafficClass
from repro.compiler import mark_program
from repro.ir.validate import validate_program
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names

SMALL_MACHINE = default_machine().with_(n_procs=4)


class TestRegistry:
    def test_six_workloads(self):
        assert sorted(workload_names()) == [
            "arc2d", "flo52", "ocean", "qcd2", "spec77", "trfd"]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            build_workload("nope")

    def test_unknown_size_rejected(self):
        with pytest.raises(KeyError):
            build_workload("ocean", size="gigantic")

    def test_overrides(self):
        program = build_workload("ocean", n=8, steps=1)
        assert program.arrays["UA"].shape == (8, 8)


@pytest.mark.parametrize("name", workload_names())
class TestEveryWorkload:
    def test_validates(self, name):
        validate_program(build_workload(name, size="small"))

    def test_marks(self, name):
        marking = mark_program(build_workload(name, size="small"))
        assert marking.stats["epochs.parallel"] >= 1
        assert marking.stats["sites.time_read.tpi"] >= 1

    def test_simulates_coherently_on_all_schemes(self, name):
        """The per-scheme coherence oracles raise on any stale read."""
        run = prepare(build_workload(name, size="small"), SMALL_MACHINE)
        for scheme in ("base", "sc", "tpi", "hw"):
            result = simulate(run, scheme)
            assert result.exec_cycles > 0
            assert sum(result.miss_counts.values()) == result.reads

    def test_scheme_ordering(self, name):
        """BASE is never faster than TPI; TPI never has a worse miss rate
        than SC (the paper's consistent ordering)."""
        run = prepare(build_workload(name, size="small"), SMALL_MACHINE)
        base = simulate(run, "base")
        sc = simulate(run, "sc")
        tpi = simulate(run, "tpi")
        assert tpi.exec_cycles <= base.exec_cycles
        assert tpi.miss_rate <= sc.miss_rate


class TestWorkloadCharacteristics:
    def test_trfd_most_redundant_writes(self):
        """TRFD: the highest fraction of *redundant* writes (the paper's
        discussion: its write traffic is removable by a coalescing
        buffer), measured as the coalescing buffer's merge rate."""
        from repro.common.config import WriteBufferKind

        machine = SMALL_MACHINE.with_(write_buffer=WriteBufferKind.COALESCING)
        merge_rate = {}
        for name in workload_names():
            run = prepare(build_workload(name, size="small"), machine)
            r = simulate(run, "tpi")
            merged = r.extra.get("merged_writes", 0)
            merge_rate[name] = merged / max(1, r.extra["buffered_writes"])
        assert merge_rate["trfd"] == max(merge_rate.values())
        assert merge_rate["trfd"] > 0.3

    def test_trfd_coalescing_removes_redundant_writes(self):
        from repro.common.config import WriteBufferKind

        program = build_workload("trfd", size="small")
        fifo = simulate(prepare(program, SMALL_MACHINE), "tpi")
        coal_machine = SMALL_MACHINE.with_(
            write_buffer=WriteBufferKind.COALESCING)
        coal = simulate(prepare(program, coal_machine), "tpi")
        assert (coal.traffic[TrafficClass.WRITE]
                < 0.7 * fifo.traffic[TrafficClass.WRITE])

    def test_arc2d_false_sharing_on_hw(self):
        run = prepare(build_workload("arc2d", size="small"), SMALL_MACHINE)
        hw = simulate(run, "hw")
        assert hw.kind_count(MissKind.FALSE_SHARING) > 0
        tpi = simulate(run, "tpi")
        assert tpi.kind_count(MissKind.FALSE_SHARING) == 0

    def test_qcd2_locks(self):
        run = prepare(build_workload("qcd2", size="small"), SMALL_MACHINE)
        r = simulate(run, "tpi")
        assert r.extra.get("lock_acquires", 0) > 0

    def test_qcd2_hw_coherence_traffic_significant(self):
        """QCD2's scattered sharing drives directory transactions (the
        reason its HW miss latency is the outlier in the paper's table)."""
        run = prepare(build_workload("qcd2", size="small"), SMALL_MACHINE)
        hw = simulate(run, "hw")
        assert (hw.traffic.get(TrafficClass.COHERENCE, 0)
                > 0.3 * hw.traffic.get(TrafficClass.READ, 1))

    def test_spec77_readmostly_tpi_close_to_hw(self):
        run = prepare(build_workload("spec77", size="small"), SMALL_MACHINE)
        tpi = simulate(run, "tpi")
        hw = simulate(run, "hw")
        assert tpi.exec_cycles <= 4 * hw.exec_cycles

    def test_trfd_induction_scalar_forces_conservatism(self):
        """The triangular walk's induction scalar widens sections; the
        reads it governs must be Time-Reads."""
        program = build_workload("trfd", size="small")
        marking = mark_program(program)
        assert marking.stats["sites.time_read.tpi"] >= 2


class TestLargePresets:
    def test_large_sizes_build_and_validate(self):
        for name in workload_names():
            program = build_workload(name, size="large")
            validate_program(program)

    def test_large_exceeds_default_events(self):
        from repro.trace import generate_trace

        machine = default_machine()
        for name in ("ocean", "qcd2"):
            small = generate_trace(build_workload(name, size="small"), machine)
            large = generate_trace(build_workload(name, size="large"), machine)
            assert large.n_events > 5 * small.n_events

    def test_large_ocean_simulates(self):
        run = prepare(build_workload("ocean", size="large"),
                      default_machine())
        result = simulate(run, "tpi")
        assert result.exec_cycles > 0
