"""Columnar trace store and vectorized DOALL front end.

Three layers of evidence that the columnar path changes *representation*
only, never *semantics*:

* lossless round-trip — ``ColumnarTrace.from_trace(t).to_trace()`` is
  field-identical to ``t``, for every workload and for hypothesis-random
  programs;
* generation parity — :func:`repro.trace.generate_columnar` (affine
  template expansion with interpreter fallback) produces the same epochs,
  tasks, and events as the per-iteration interpreter;
* simulation parity — both engines produce byte-identical canonical JSON
  whether fed the columnar or the object trace.

Plus the batching heuristic, the phase telemetry, and the parallel /
cached :func:`simulate_all` paths that ship columnar buffers.
"""

import dataclasses
import json
import pickle

import pytest
from hypothesis import HealthCheck, given, settings

from repro.cli import main
from repro.common.config import default_machine
from repro.compiler import mark_program
from repro.ir import ProgramBuilder
from repro.runtime import ArtifactCache, Telemetry
from repro.sim import prepare, simulate, simulate_all
from repro.sim.engine import make_engine
from repro.sim.fastengine import _MIN_TASK_EVENTS, FastEngine
from repro.trace import (
    ColumnarTrace,
    Trace,
    generate_columnar,
    generate_trace,
)
from repro.workloads import build_workload, workload_names
from tests.strategies import machines, rich_programs

MACHINE = default_machine().with_(n_procs=4)
SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def assert_traces_equal(a, b):
    """Field-wise trace equality.

    ``Trace.__eq__`` compares ``layout`` by identity (MemoryLayout has no
    ``__eq__``), so traces from two generator runs must be compared on
    the fields that matter: name, processor count, and the full epoch /
    task / event structure.
    """
    assert a.program_name == b.program_name
    assert a.n_procs == b.n_procs
    assert a.epochs == b.epochs


# --------------------------------------------------------------- round-trip


class TestRoundTrip:
    @pytest.mark.parametrize("name", workload_names())
    def test_workload_round_trip_identity(self, name):
        trace = generate_trace(build_workload(name, size="small"), MACHINE)
        back = ColumnarTrace.from_trace(trace).to_trace()
        # Same layout object survives the round trip, so full equality
        # (including the identity-compared layout field) must hold.
        assert back == trace
        assert back.layout is trace.layout

    @pytest.mark.parametrize("name", workload_names())
    def test_workload_counts_match(self, name):
        trace = generate_trace(build_workload(name, size="small"), MACHINE)
        assert ColumnarTrace.from_trace(trace).counts() == trace.counts()

    @given(program=rich_programs(), machine=machines())
    @settings(max_examples=25, **SETTINGS)
    def test_random_program_round_trip_identity(self, program, machine):
        trace = generate_trace(program, machine)
        columnar = ColumnarTrace.from_trace(trace)
        assert columnar.to_trace() == trace
        assert columnar.n_events == trace.n_events
        assert columnar.counts() == trace.counts()

    def test_pickle_round_trip(self):
        columnar = generate_columnar(build_workload("ocean", size="small"),
                                     MACHINE)
        clone = pickle.loads(pickle.dumps(columnar))
        assert_traces_equal(clone.to_trace(), columnar.to_trace())
        assert clone.n_expanded_epochs == columnar.n_expanded_epochs


# --------------------------------------------------------- generation parity


class TestGenerationParity:
    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("size", ["small", "default"])
    def test_workload_parity(self, name, size):
        program = build_workload(name, size=size)
        interpreted = generate_trace(program, MACHINE)
        columnar = generate_columnar(program, MACHINE)
        assert isinstance(columnar, ColumnarTrace)
        assert_traces_equal(columnar.to_trace(), interpreted)

    @pytest.mark.parametrize("name", workload_names())
    def test_workloads_actually_vectorize(self, name):
        columnar = generate_columnar(build_workload(name, size="small"),
                                     MACHINE)
        assert columnar.n_expanded_epochs > 0

    @given(program=rich_programs(), machine=machines())
    @settings(max_examples=40, **SETTINGS)
    def test_random_program_parity(self, program, machine):
        # rich_programs mixes affine DOALL bodies (expanded) with critical
        # sections, calls, and loop-carried scalars (interpreter fallback);
        # both halves must agree with the pure interpreter.
        assert_traces_equal(generate_columnar(program, machine).to_trace(),
                            generate_trace(program, machine))


# --------------------------------------------------------- simulation parity


def snapshot(result) -> str:
    return json.dumps(
        {"result": result.to_dict(),
         "epoch_records": [dataclasses.asdict(r)
                           for r in result.epoch_records]},
        sort_keys=True)


class TestSimulationParity:
    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_columnar_vs_object_trace(self, name, engine):
        program = build_workload(name, size="small")
        machine = MACHINE.with_(engine=engine, record_epochs=True)
        marking = mark_program(program)
        object_trace = generate_trace(program, machine)
        columnar = generate_columnar(program, machine)
        for scheme in ("base", "sc", "tpi", "hw"):
            via_object = make_engine(object_trace, marking, machine,
                                     scheme).run()
            via_columnar = make_engine(columnar, marking, machine,
                                       scheme).run()
            assert snapshot(via_columnar) == snapshot(via_object)


# ------------------------------------------------------- batching heuristic


def _tiny_program():
    """One event per task — far below the batching floor."""
    b = ProgramBuilder("tiny", params={})
    b.array("A", (8,))
    with b.procedure("main"):
        with b.doall("i", 0, 3) as i:
            b.stmt(reads=[b.at("A", i)], work=1)
    return b.build()


def _heavy_program():
    """Well above ``_MIN_TASK_EVENTS`` events per task."""
    b = ProgramBuilder("heavy", params={})
    b.array("A", (40,))
    b.array("B", (40,))
    with b.procedure("main"):
        with b.doall("i", 0, 3):
            with b.serial("j", 0, 39) as j:
                b.stmt(reads=[b.at("A", j)], writes=[b.at("B", j)], work=1)
    return b.build()


class TestBatchingHeuristic:
    def run_fast(self, program, scheme="base"):
        machine = MACHINE.with_(engine="fast")
        engine = make_engine(generate_columnar(program, machine),
                             mark_program(program), machine, scheme)
        assert isinstance(engine, FastEngine)
        engine.run()
        return engine

    def test_tiny_epochs_fall_back(self):
        engine = self.run_fast(_tiny_program())
        assert engine.batched_epochs == 0
        assert engine.fallback_epochs > 0

    def test_heavy_epochs_batch(self):
        engine = self.run_fast(_heavy_program())
        assert engine.batched_epochs > 0

    def test_floor_is_calibrated(self):
        # The tiny/heavy programs must actually straddle the floor, or the
        # two tests above stop exercising the heuristic.
        machine = MACHINE.with_(engine="fast")
        tiny = generate_columnar(_tiny_program(), machine)
        heavy = generate_columnar(_heavy_program(), machine)
        tiny_epoch = tiny.epochs[0]
        heavy_epoch = heavy.epochs[0]
        assert (tiny_epoch.n_events
                < _MIN_TASK_EVENTS * max(1, tiny_epoch.n_tasks))
        assert (heavy_epoch.n_events
                >= _MIN_TASK_EVENTS * max(1, heavy_epoch.n_tasks))

    def test_heuristic_preserves_results(self):
        for program in (_tiny_program(), _heavy_program()):
            machine = MACHINE.with_(engine="fast", record_epochs=True)
            reference = MACHINE.with_(engine="reference", record_epochs=True)
            for scheme in ("base", "hw"):
                fast = simulate(prepare(program, machine), scheme)
                ref = simulate(prepare(program, reference), scheme)
                assert snapshot(fast) == snapshot(ref)


# ------------------------------------------------- runtime: scatter + cache


class TestRuntimeParity:
    def test_jobs_1_vs_n_and_cold_vs_warm(self, tmp_path):
        program = build_workload("ocean", size="small")
        schemes = ("base", "tpi", "hw")
        plain = simulate_all(program, schemes, MACHINE)

        cache = ArtifactCache(tmp_path / "cache")
        serial = simulate_all(program, schemes, MACHINE, jobs=1, cache=cache)
        scattered = simulate_all(program, schemes, MACHINE, jobs=2,
                                 cache=ArtifactCache(tmp_path / "cache2"))
        warm_telemetry = Telemetry()
        warm = simulate_all(program, schemes, MACHINE, jobs=1, cache=cache,
                            telemetry=warm_telemetry)

        for scheme in schemes:
            expected = snapshot(plain[scheme])
            assert snapshot(serial[scheme]) == expected
            assert snapshot(scattered[scheme]) == expected
            assert snapshot(warm[scheme]) == expected
        assert warm_telemetry.result_hits == len(schemes)

    def test_prepared_cache_stores_columnar(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        telemetry = Telemetry()
        simulate_all(build_workload("flo52", size="small"), ("tpi",),
                     MACHINE, jobs=1, cache=cache, telemetry=telemetry)
        assert telemetry.prepare_misses == 1
        stats = cache.stats()
        assert stats.entries["prepared"] == 1
        # The artifact on disk is the columnar form, not the object graph.
        [path] = (cache.base / "prepared").rglob("*.pkl")
        with open(path, "rb") as handle:
            prepared = pickle.load(handle)
        assert isinstance(prepared.trace, ColumnarTrace)
        assert not isinstance(prepared.trace, Trace)


# --------------------------------------------------------- phase telemetry


class TestPhaseTelemetry:
    def test_phases_flow_into_report(self, tmp_path):
        telemetry = Telemetry()
        simulate_all(build_workload("flo52", size="small"), ("base", "tpi"),
                     MACHINE, jobs=1,
                     cache=ArtifactCache(tmp_path / "cache"),
                     telemetry=telemetry)
        report = telemetry.report().to_dict()
        assert set(report["phases"]) == {"compile", "trace", "engine"}
        assert report["phases"]["engine"] > 0
        assert all(seconds >= 0 for seconds in report["phases"].values())
        assert "phases:" in telemetry.report().render()

    def test_cli_simulate_surfaces_phases(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        report = tmp_path / "report.json"
        assert main(["simulate", "flo52", "--size", "small",
                     "--scheme", "tpi",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(out), "--report", str(report)]) == 0
        payload = json.loads(out.read_text())
        assert payload["tpi"]["scheme"] == "tpi"
        assert "engine" in payload["phases"]
        telemetry = json.loads(report.read_text())
        assert "engine" in telemetry["phases"]
