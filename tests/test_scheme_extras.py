"""The ``CoherenceScheme.extras()`` metrics contract.

Every engine collects scheme-specific counters through the one
``extras()`` method (plus the ``resets``/``reset_invalidations``
attributes); nothing probes scheme objects with ``hasattr``.  These tests
pin the per-scheme key sets so a scheme cannot silently stop exporting a
counter the figures depend on.
"""

import pytest

from repro.coherence.api import CoherenceScheme
from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.workloads import build_workload

EXPECTED_KEYS = {
    "base": set(),
    "sc": {"buffered_writes"},
    "tpi": {"time_reads", "time_read_hits", "strict_reads",
            "buffered_writes"},
    "hw": {"invalidations_sent", "false_invalidations"},
    "limitless": {"invalidations_sent", "false_invalidations",
                  "software_traps"},
    "update": {"updates_sent", "buffered_writes"},
    "tardis": {"lease_renewals", "lease_expiries", "rebases"},
    "snoop": {"invalidations_sent", "false_invalidations",
              "cache_to_cache_transfers"},
}


@pytest.fixture(scope="module")
def run():
    machine = default_machine().with_(n_procs=4)
    return prepare(build_workload("ocean", size="small"), machine)


class TestExtrasContract:
    def test_default_is_empty(self):
        # The base implementation takes nothing from self.
        assert CoherenceScheme.extras(None) == {}

    @pytest.mark.parametrize("scheme", sorted(EXPECTED_KEYS))
    def test_scheme_counters_reach_result(self, run, scheme):
        result = simulate(run, scheme)
        # lock_acquires is engine-side; everything else comes via extras().
        scheme_keys = set(result.extra) - {"lock_acquires"}
        assert scheme_keys >= EXPECTED_KEYS[scheme]

    def test_extras_values_are_counters(self, run):
        for scheme in EXPECTED_KEYS:
            result = simulate(run, scheme)
            for key, value in result.extra.items():
                assert isinstance(value, int) and value >= 0, (scheme, key)

    def test_tpi_counts_time_reads(self, run):
        result = simulate(run, "tpi")
        assert result.extra["time_reads"] > 0
        assert result.extra["time_read_hits"] <= result.extra["time_reads"]

    def test_hw_counts_invalidations(self, run):
        result = simulate(run, "hw")
        assert result.extra["invalidations_sent"] > 0
        assert (result.extra["false_invalidations"]
                <= result.extra["invalidations_sent"])

    def test_tardis_counts_lease_traffic(self, run):
        result = simulate(run, "tardis")
        assert result.extra["lease_expiries"] > 0
        assert (result.extra["lease_renewals"]
                <= result.extra["lease_expiries"])

    def test_snoop_counts_bus_transactions(self, run):
        result = simulate(run, "snoop")
        assert result.extra["invalidations_sent"] > 0
        assert (result.extra["false_invalidations"]
                <= result.extra["invalidations_sent"])
        assert result.extra["cache_to_cache_transfers"] > 0
