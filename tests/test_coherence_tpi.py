"""Micro-tests of the TPI scheme driven access-by-access.

The test rig builds a one-array address space and hand-crafted markings so
each hardware rule can be exercised in isolation: strict vs timestamp
Time-Reads, the W-register updates, the R-1 fill rule, the two-phase reset,
and the write path.
"""

import pytest

from repro.coherence.api import SimContext, make_scheme
from repro.common.config import (
    CacheConfig,
    MachineConfig,
    TimetagResetPolicy,
    TpiConfig,
    WriteBufferKind,
)
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking, RefMark
from repro.ir import ProgramBuilder
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout

TR_SITE = 0  # timestamp Time-Read
STRICT_SITE = 1  # strict Time-Read (possible same-epoch writer)
NORMAL_SITE = 2  # ordinary read

WKEY = 999  # write_key of "an epoch that writes array M"
WKEY_RACY = 998


def make_ctx(n_procs=2, timetag_bits=4, words=256, line_words=4, lines=32,
             wbuffer=WriteBufferKind.FIFO,
             reset=TimetagResetPolicy.TWO_PHASE):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words),
        tpi=TpiConfig(timetag_bits=timetag_bits, reset_policy=reset),
        write_buffer=wbuffer,
    )
    b = ProgramBuilder("rig")
    b.array("M", (words,))
    with b.procedure("main"):
        pass
    layout = MemoryLayout(b.build(), machine.n_procs, line_words)
    marking = Marking(
        tpi={TR_SITE: RefMark.TIME_READ, STRICT_SITE: RefMark.TIME_READ,
             NORMAL_SITE: RefMark.READ},
        sc={TR_SITE: RefMark.TIME_READ, STRICT_SITE: RefMark.TIME_READ,
            NORMAL_SITE: RefMark.READ},
        graph=EpochGraph(),
        strict_sites={STRICT_SITE},
        epoch_writes={WKEY: {"M": False}, WKEY_RACY: {"M": True}},
    )
    return SimContext(machine=machine, marking=marking,
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def new_tpi(**kw):
    ctx = make_ctx(**kw)
    return make_scheme("tpi", ctx), ctx


class TestTimestampTimeRead:
    def test_first_read_misses_cold(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is MissKind.COLD
        assert r.read_words == 1 + 4

    def test_hits_within_epoch(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        assert tpi.read(0, 8, TR_SITE, True, False).kind is MissKind.HIT

    def test_hits_across_epochs_when_array_unwritten(self):
        """Loop-invariant data: W[M] never advances, so copies keep hitting."""
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        for e in range(1, 5):
            tpi.begin_epoch(e, True)
            tpi.end_epoch(None)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is MissKind.HIT

    def test_misses_after_writing_epoch(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        tpi.end_epoch(None)
        tpi.begin_epoch(1, True)
        tpi.write(1, 8, NORMAL_SITE, True, False)  # another proc writes
        tpi.end_epoch(WKEY)  # compiler: this epoch wrote M
        tpi.begin_epoch(2, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is MissKind.TRUE_SHARING

    def test_writers_own_copy_survives_the_writing_epoch(self):
        """Producer-consumer with the same processor: hits, like a directory."""
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        tpi.end_epoch(WKEY)
        tpi.begin_epoch(1, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is MissKind.HIT

    def test_other_procs_copy_does_not_survive(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(1, 8, TR_SITE, True, False)  # proc 1 caches it
        tpi.end_epoch(None)
        tpi.begin_epoch(1, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)  # proc 0 rewrites
        tpi.end_epoch(WKEY)
        tpi.begin_epoch(2, True)
        assert tpi.read(1, 8, TR_SITE, True, False).kind is MissKind.TRUE_SHARING

    def test_racy_epoch_distrusts_even_writers(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        tpi.end_epoch(WKEY_RACY)
        tpi.begin_epoch(1, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is not MissKind.HIT

    def test_copy_fetched_during_writing_epoch_distrusted_later(self):
        """A fill during the writing epoch may have raced the writes; the
        R-1 stamp keeps it outside the next epoch's window."""
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, STRICT_SITE, True, False)  # strict fill: tag R-1
        tpi.end_epoch(WKEY)  # epoch wrote M
        tpi.begin_epoch(1, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is not MissKind.HIT


class TestStrictTimeRead:
    def test_strict_hits_only_on_own_epoch_products(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        assert tpi.read(0, 8, STRICT_SITE, True, False).kind is MissKind.HIT

    def test_strict_misses_on_prior_epoch_copy(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        tpi.end_epoch(None)
        tpi.begin_epoch(1, True)
        r = tpi.read(0, 8, STRICT_SITE, True, False)
        assert r.kind is MissKind.CONSERVATIVE  # data unchanged: conservatism

    def test_strict_fill_does_not_validate_for_later_strict_reads(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, STRICT_SITE, True, False)  # fill stamps R-1
        r = tpi.read(0, 8, STRICT_SITE, True, False)
        assert r.kind is not MissKind.HIT  # racy word: every strict read misses


class TestLineFillRule:
    def test_neighbour_words_get_previous_timetag(self):
        """A strict Time-Read to another word of a line fetched this epoch
        must miss (implicit same-epoch RAW/WAR)."""
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)  # fills words 8..11
        assert tpi.read(0, 9, STRICT_SITE, True, False).kind is not MissKind.HIT

    def test_neighbour_words_valid_for_normal_reads(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        assert tpi.read(0, 9, NORMAL_SITE, True, False).kind is MissKind.HIT

    def test_neighbour_words_hit_timestamp_reads_when_no_writer(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        # W[M] is ancient, so tag R-1 is comfortably inside the window.
        assert tpi.read(0, 9, TR_SITE, True, False).kind is MissKind.HIT

    def test_refresh_preserves_validated_neighbours(self):
        """Sweeping strict Time-Reads must not thrash each other."""
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)  # tag R on word 8
        tpi.read(0, 9, STRICT_SITE, True, False)  # miss -> refresh, not fill
        assert tpi.read(0, 8, STRICT_SITE, True, False).kind is MissKind.HIT


class TestTwoPhaseResetBehaviour:
    def test_reset_fires_at_phase_boundary(self):
        tpi, ctx = new_tpi(timetag_bits=2)  # phases of size 2
        stalls = tpi.begin_epoch(0, True)  # counter 0 -> 1, same phase
        assert stalls == {}
        stalls = tpi.begin_epoch(1, True)  # counter 1 -> 2: new phase
        assert stalls == {p: ctx.machine.tpi.reset_stall_cycles
                          for p in range(ctx.machine.n_procs)}
        assert tpi.resets == 1

    def test_reset_kills_old_but_fresh_words(self):
        """The cost of small timetags: loop-invariant data dies by sweep."""
        tpi, _ = new_tpi(timetag_bits=2)
        tpi.begin_epoch(0, True)  # counter 1
        tpi.read(0, 8, TR_SITE, True, False)  # tag 1
        for e in range(1, 4):
            tpi.begin_epoch(e, True)  # counter 2, 3, 0 (two sweeps)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is MissKind.RESET

    def test_large_timetag_preserves_fresh_words(self):
        tpi, _ = new_tpi(timetag_bits=8)
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)
        for e in range(1, 4):
            tpi.begin_epoch(e, True)
        assert tpi.read(0, 8, TR_SITE, True, False).kind is MissKind.HIT

    def test_no_aliasing_after_wraparound(self):
        """A word validated ~2^k epochs ago must not satisfy a Time-Read
        via modular aliasing; the sweep guarantees it died first."""
        tpi, _ = new_tpi(timetag_bits=2)
        tpi.begin_epoch(0, True)  # counter 1
        tpi.read(0, 8, TR_SITE, True, False)  # tag 1
        for e in range(1, 4):
            tpi.begin_epoch(e, True)
        tpi.begin_epoch(4, True)  # counter = 1 again (mod 4)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is not MissKind.HIT

    def test_flush_policy_invalidates_everything(self):
        tpi, _ = new_tpi(timetag_bits=2, reset=TimetagResetPolicy.FLUSH)
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, NORMAL_SITE, True, False)
        for e in range(1, 4):
            tpi.begin_epoch(e, True)  # counter wraps to 0 at epoch 4 % 4
        assert tpi.resets == 1
        assert tpi.read(0, 8, NORMAL_SITE, True, False).kind is not MissKind.HIT


class TestWritePath:
    def test_write_allocate_fetches_line(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        r = tpi.write(0, 8, NORMAL_SITE, True, False)
        assert r.read_words == 5  # allocation fill
        assert r.write_words == 2  # FIFO write-through message
        assert r.latency == 1  # buffered, non-blocking

    def test_write_hit_no_fill(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        assert tpi.write(0, 8, NORMAL_SITE, True, False).read_words == 0

    def test_coalescing_buffer_defers_traffic(self):
        tpi, _ = new_tpi(wbuffer=WriteBufferKind.COALESCING)
        tpi.begin_epoch(0, True)
        for _ in range(5):
            assert tpi.write(0, 8, NORMAL_SITE, True, False).write_words == 0
        drained = tpi.end_epoch(WKEY)
        assert drained[0] == 2  # one word survives the merge
        assert drained[1] == 0

    def test_critical_read_forced_miss(self):
        tpi, _ = new_tpi()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        r = tpi.read(0, 8, TR_SITE, True, in_critical=True)
        assert r.kind is not MissKind.HIT

    def test_release_fence_drains(self):
        tpi, _ = new_tpi(wbuffer=WriteBufferKind.COALESCING)
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        r = tpi.release_fence(0)
        assert r.write_words == 2
        assert tpi.end_epoch(WKEY)[0] == 0  # already drained


class TestPerLineTags:
    def test_strict_never_hits(self):
        tpi, _ = new_tpi_line()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        r = tpi.read(0, 8, STRICT_SITE, True, False)
        assert r.kind is not MissKind.HIT

    def test_timestamp_hits_on_filled_lines(self):
        tpi, _ = new_tpi_line()
        tpi.begin_epoch(0, True)
        tpi.read(0, 8, TR_SITE, True, False)  # fill: line tag R-1
        tpi.end_epoch(None)
        tpi.begin_epoch(1, True)
        # Array unwritten: huge window -> the filled line still hits.
        assert tpi.read(0, 9, TR_SITE, True, False).kind is MissKind.HIT

    def test_producer_consumer_reuse_lost(self):
        """The defining cost: a write cannot raise the line tag, so the
        writer's own product misses next epoch (per-word tags hit)."""
        tpi, _ = new_tpi_line()
        tpi.begin_epoch(0, True)
        tpi.write(0, 8, NORMAL_SITE, True, False)
        tpi.end_epoch(WKEY)
        tpi.begin_epoch(1, True)
        r = tpi.read(0, 8, TR_SITE, True, False)
        assert r.kind is not MissKind.HIT

    def test_still_coherent_end_to_end(self):
        from repro.common.config import TpiConfig, default_machine
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        machine = default_machine().with_(
            n_procs=4, tpi=TpiConfig(tag_per_word=False))
        run = prepare(build_workload("ocean", size="small"), machine)
        simulate(run, "tpi")  # oracle-checked


def new_tpi_line(**kw):
    ctx = make_ctx(**kw)
    machine = ctx.machine.with_(tpi=TpiConfig(
        timetag_bits=ctx.machine.tpi.timetag_bits,
        reset_policy=ctx.machine.tpi.reset_policy,
        tag_per_word=False))
    ctx.machine = machine
    ctx.network = KruskalSnirNetwork(machine)
    return make_scheme("tpi", ctx), ctx
