"""Micro-tests for the bus-snooping MSI scheme (extension).

The centerpiece is an exhaustive check of the three-state transition
table: every reachable (own state, other-copy state) configuration is
built on a fresh scheme, each processor operation is applied, and the
resulting states and bus actions are compared against a hand-written
next-state function of the canonical MSI machine (SNIPPETS.md §2).
"""

import pytest

from repro.coherence.api import SimContext, make_scheme
from repro.common.config import CacheConfig, MachineConfig
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking
from repro.ir import ProgramBuilder
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout


def make_ctx(n_procs=3, words=256, line_words=4, lines=32):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words))
    b = ProgramBuilder("rig")
    b.array("M", (words,))
    with b.procedure("main"):
        pass
    layout = MemoryLayout(b.build(), n_procs, line_words)
    return SimContext(machine=machine,
                      marking=Marking(tpi={}, sc={}, graph=EpochGraph()),
                      shadow=ShadowMemory(layout.total_words),
                      network=KruskalSnirNetwork(machine), layout=layout)


def new_snoop(**kw):
    ctx = make_ctx(**kw)
    return make_scheme("snoop", ctx), ctx


ADDR = 8  # one shared word; its line stands in for any line


def state_of(scheme, proc, addr=ADDR):
    line_addr = scheme.caches[proc].split(addr)[0]
    loc = scheme.caches[proc].probe(line_addr)
    if loc is None:
        return "I"
    return "M" if scheme.caches[proc].dirty[loc.set_index, loc.way] else "S"


def build_config(scheme, own, other):
    """Drive proc 0 into ``own`` and proc 1 into ``other`` for ADDR's line."""
    if other == "S":
        scheme.read(1, ADDR, 0, True, False)
    elif other == "M":
        scheme.write(1, ADDR, 0, True, False)
    if own == "S":
        scheme.read(0, ADDR, 0, True, False)
    elif own == "M":
        scheme.write(0, ADDR, 0, True, False)
    assert state_of(scheme, 0) == own and state_of(scheme, 1) == other


def msi_next(own, other, op):
    """Hand-written canonical MSI next-state function.

    Returns ``(own', other', bus, cache_to_cache)`` for proc 0 doing
    ``op`` with proc 1 holding ``other``.  ``bus`` is the transaction
    proc 0 puts on the bus (None for silent hits).
    """
    if op == "rd":
        if own != "I":
            return own, other, None, False
        if other == "M":
            return "S", "S", "BusRd", True  # owner flushes and demotes
        return "S", other, "BusRd", False
    if own == "M":
        return "M", other, None, False     # silent write hit
    if own == "S":
        return "M", "I", "BusUpgr", False  # no data moves
    if other == "M":
        return "M", "I", "BusRdX", True    # owner flushes, invalidated
    return "M", "I", "BusRdX", False


# (own, other) configurations reachable under the MSI invariant: an M
# copy is the *only* copy, so (M, S), (M, M), (S, M) cannot be built.
CONFIGS = [("I", "I"), ("I", "S"), ("I", "M"),
           ("S", "I"), ("S", "S"), ("M", "I")]


class TestTransitionTable:
    """Every reachable configuration x every operation vs the model."""

    @pytest.mark.parametrize("own,other", CONFIGS)
    @pytest.mark.parametrize("op", ["rd", "wr"])
    def test_transition_matches_model(self, own, other, op):
        snoop, _ = new_snoop()
        build_config(snoop, own, other)
        c2c_before = snoop.cache_to_cache_transfers
        inval_before = snoop.invalidations_sent

        if op == "rd":
            result = snoop.read(0, ADDR, 0, True, False)
        else:
            result = snoop.write(0, ADDR, 0, True, False)

        exp_own, exp_other, bus, c2c = msi_next(own, other, op)
        assert state_of(snoop, 0) == exp_own
        assert state_of(snoop, 1) == exp_other
        assert (snoop.cache_to_cache_transfers - c2c_before) == int(c2c)
        # Bus side effects: silent hits move no words; every transaction
        # does.  An invalidating transaction reaches each demoted holder.
        if bus is None:
            assert result.total_words == 0
            assert result.kind is MissKind.HIT
        else:
            assert result.total_words > 0
        expected_invals = int(other != "I" and exp_other == "I")
        assert (snoop.invalidations_sent - inval_before) == expected_invals
        snoop.check_invariants()

    def test_m_state_never_coexists(self):
        snoop, _ = new_snoop(n_procs=4)
        for proc in range(4):
            snoop.read(proc, ADDR, 0, True, False)
        snoop.write(2, ADDR, 0, True, False)
        assert state_of(snoop, 2) == "M"
        for proc in (0, 1, 3):
            assert state_of(snoop, proc) == "I"
        snoop.check_invariants()


class TestClassification:
    def test_invalidation_of_used_word_is_true_sharing(self):
        snoop, _ = new_snoop()
        snoop.read(1, ADDR, 0, True, False)       # proc 1 uses word 0
        snoop.write(0, ADDR, 0, True, False)      # same word invalidated
        assert snoop.read(1, ADDR, 0, True, False).kind \
            is MissKind.TRUE_SHARING

    def test_invalidation_of_unused_word_is_false_sharing(self):
        snoop, _ = new_snoop()
        snoop.read(1, ADDR, 0, True, False)       # proc 1 uses word 0
        snoop.write(0, ADDR + 1, 0, True, False)  # different word
        assert snoop.false_invalidations == 1
        assert snoop.read(1, ADDR, 0, True, False).kind \
            is MissKind.FALSE_SHARING

    def test_replacement_and_cold_without_directory_state(self):
        snoop, _ = new_snoop(lines=4, words=4096)
        assert snoop.read(0, 0, 0, True, False).kind is MissKind.COLD
        snoop.read(0, 16, 0, True, False)         # evicts line 0 (4 sets)
        assert snoop.read(0, 0, 0, True, False).kind is MissKind.REPLACEMENT


class TestWriteBack:
    def test_dirty_eviction_writes_line_back_silently(self):
        snoop, _ = new_snoop(lines=4, words=4096)
        snoop.write(0, 0, 0, True, False)         # M in set 0
        r = snoop.read(0, 16, 0, True, False)     # conflicting fill
        assert r.write_words == 1 + snoop.line_words
        # No directory: the eviction sends no hint, so a later write by
        # another processor finds no holders to invalidate.
        before = snoop.invalidations_sent
        snoop.write(1, 0, 0, True, False)
        assert snoop.invalidations_sent == before

    def test_busrd_demotes_owner_and_transfers_cache_to_cache(self):
        snoop, _ = new_snoop()
        snoop.write(1, ADDR, 0, True, False)
        r = snoop.read(0, ADDR, 0, True, False)
        assert snoop.cache_to_cache_transfers == 1
        assert r.coherence_words >= 2 + snoop.line_words
        assert state_of(snoop, 1) == "S"          # demoted, not invalidated
        assert r.version == 1                      # the dirty data arrived


class TestSnoopEndToEnd:
    def test_workload_matches_directory_sharing_misses(self):
        # Broadcast snooping and the full-map directory classify sharing
        # with the same used-word criterion; on a small machine the
        # sharing-miss structure comes out close (snoop has no
        # replacement hints, so only replacement-adjacent counts drift).
        from repro.common.config import default_machine
        from repro.sim import prepare, simulate
        from repro.workloads import build_workload

        machine = default_machine().with_(n_procs=4)
        run = prepare(build_workload("ocean", size="small"), machine)
        sn = simulate(run, "snoop")
        hw = simulate(run, "hw")
        assert sn.kind_count(MissKind.TRUE_SHARING) > 0
        assert sn.kind_count(MissKind.FALSE_SHARING) > 0
        assert sn.extra["cache_to_cache_transfers"] > 0
        # Same total work observed by both protocols.
        assert sn.reads == hw.reads and sn.writes == hw.writes
