"""Tests for the DOALL dependence relation tests."""

from repro.compiler.dependence import Relation, doall_relation
from repro.compiler.ranges import RangeEnv
from repro.ir.expr import Affine, sym


def env(**kv):
    return RangeEnv({k: v for k, v in kv.items()})


class TestDoallRelation:
    def test_identical_subscripts_same_iter_only(self):
        rel = doall_relation((sym("i"),), (sym("i"),), "i", set(), env(i=(0, 7)))
        assert rel is Relation.SAME_ITER_ONLY

    def test_constant_offset_may_conflict(self):
        rel = doall_relation((sym("i"),), (sym("i") - 1,), "i", set(), env(i=(0, 7)))
        assert rel is Relation.MAY_CONFLICT

    def test_constant_subscripts_disjoint(self):
        rel = doall_relation((Affine.of(3),), (Affine.of(5),), "i", set(), env(i=(0, 7)))
        assert rel is Relation.DISJOINT

    def test_same_constant_subscript_conflicts(self):
        rel = doall_relation((Affine.of(3),), (Affine.of(3),), "i", set(), env(i=(0, 7)))
        assert rel is Relation.MAY_CONFLICT

    def test_banerjee_disjoint_ranges(self):
        # write A[i], read A[i+16], i in 0..7: ranges 0..7 vs 16..23.
        rel = doall_relation((sym("i"),), (sym("i") + 16,), "i", set(), env(i=(0, 7)))
        assert rel is Relation.DISJOINT

    def test_gcd_disjoint(self):
        # write A[2i], read A[2i+1]: parity never matches.
        rel = doall_relation((sym("i") * 2,), (sym("i") * 2 + 1,), "i", set(),
                             env(i=(0, 31)))
        assert rel is Relation.DISJOINT

    def test_multidim_one_forcing_dim_wins(self):
        # A[i, j] written, A[i, j2] read with j inner (renamed apart): the
        # first dimension forces same iteration.
        rel = doall_relation((sym("i"), sym("j")), (sym("i"), sym("j")),
                             "i", {"j"}, env(i=(0, 7), j=(0, 7)))
        assert rel is Relation.SAME_ITER_ONLY

    def test_multidim_disjoint_dim_wins(self):
        rel = doall_relation((sym("i"), Affine.of(0)), (sym("i") - 1, Affine.of(9)),
                             "i", set(), env(i=(0, 7)))
        assert rel is Relation.DISJOINT

    def test_inner_index_renamed_apart(self):
        # write A[j] and read A[j] with j an inner serial index: different
        # tasks have independent j instances, so they may conflict.
        rel = doall_relation((sym("j"),), (sym("j"),), "i", {"j"},
                             env(i=(0, 7), j=(0, 7)))
        assert rel is Relation.MAY_CONFLICT

    def test_shared_outer_index_not_renamed(self):
        # A[t] vs A[t] where t is an outer serial loop index shared by all
        # tasks: same element for everyone -> conflict.
        rel = doall_relation((sym("t"),), (sym("t"),), "i", set(), env(i=(0, 7), t=(0, 3)))
        assert rel is Relation.MAY_CONFLICT

    def test_different_coefficients_conflict(self):
        rel = doall_relation((sym("i") * 2,), (sym("i") * 3,), "i", set(),
                             env(i=(0, 31)))
        assert rel is Relation.MAY_CONFLICT

    def test_unbounded_range_conservative(self):
        rel = doall_relation((sym("s"),), (sym("i"),), "i", {"s"},
                             env(i=(0, 7)))  # s unbounded
        assert rel is Relation.MAY_CONFLICT
