"""End-to-end integration: compile -> trace -> simulate all four schemes.

These tests exercise the whole pipeline on small programs and check both
correctness (the schemes' internal coherence oracles stay silent) and the
qualitative relationships the paper reports.
"""

import pytest

from repro.common.config import SchedulePolicy, WriteBufferKind, default_machine
from repro.common.stats import MissKind, TrafficClass
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate, simulate_all


def small_machine(**kw):
    defaults = dict(n_procs=4, epoch_setup_cycles=10, task_dispatch_cycles=2)
    defaults.update(kw)
    return default_machine().with_(**defaults)


def jacobi(n=32, steps=4):
    """Red-black-ish sweep: classic producer/consumer across epochs."""
    b = ProgramBuilder("jacobi", params={"T": steps})
    b.array("A", (n, n))
    b.array("B", (n, n))
    with b.procedure("main"):
        with b.doall("init", 0, n - 1) as i:
            with b.serial("jj", 0, n - 1) as j:
                b.stmt(writes=[b.at("A", i, j)], work=1)
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 1, n - 2) as i:
                with b.serial("j", 1, n - 2) as j:
                    b.stmt(writes=[b.at("B", i, j)],
                           reads=[b.at("A", i - 1, j), b.at("A", i + 1, j),
                                  b.at("A", i, j - 1), b.at("A", i, j + 1)],
                           work=4)
            with b.doall("x", 1, n - 2) as x:
                with b.serial("y", 1, n - 2) as y:
                    b.stmt(writes=[b.at("A", x, y)], reads=[b.at("B", x, y)],
                           work=1)
    return b.build()


def stencil_readmostly(n=32, steps=6):
    """TPI's sweet spot: a large read-only coefficient table reused every
    epoch plus a small field that is rewritten.  The paper's benchmarks are
    dominated by this pattern, which is where TPI tracks the directory."""
    b = ProgramBuilder("readmostly", params={"T": steps})
    b.array("coef", (n, n))   # written once, read every epoch
    b.array("field", (n,))
    b.array("out", (n,))
    with b.procedure("main"):
        with b.doall("ci", 0, n - 1) as i:
            with b.serial("cj", 0, n - 1) as j:
                b.stmt(writes=[b.at("coef", i, j)], work=1)
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 0, n - 1) as i:
                with b.serial("j", 0, n - 1) as j:
                    b.stmt(writes=[b.at("out", i)],
                           reads=[b.at("coef", i, j), b.at("field", i)],
                           work=2)
            with b.doall("x", 0, n - 1) as x:
                b.stmt(writes=[b.at("field", x)], reads=[b.at("out", x)],
                       work=1)
    return b.build()


def false_sharing_kernel(n=64, steps=4):
    """Interleaved writers put adjacent words of one line on different
    processors: the directory scheme ping-pongs lines (false sharing),
    TPI's per-word tags do not."""
    b = ProgramBuilder("falseshare", params={"T": steps})
    b.array("A", (n,))
    b.array("B", (n,))
    with b.procedure("main"):
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 0, n - 1) as i:
                b.stmt(writes=[b.at("A", i)], reads=[b.at("B", i)], work=1)
            with b.doall("j", 0, n - 1) as j:
                b.stmt(writes=[b.at("B", j)], reads=[b.at("A", j)], work=1)
    return b.build()


def reduction(n=64):
    """Critical-section reduction into a single shared word."""
    b = ProgramBuilder("reduction")
    b.array("data", (n,))
    b.array("total", (1,))
    with b.procedure("main"):
        with b.doall("init", 0, n - 1) as i:
            b.stmt(writes=[b.at("data", i)], work=1)
        with b.doall("i", 0, n - 1) as i:
            with b.critical("L"):
                b.stmt(reads=[b.at("total", 0), b.at("data", i)],
                       writes=[b.at("total", 0)], work=2)
        b.stmt(reads=[b.at("total", 0)])
    return b.build()


ALL_SCHEMES = ("base", "sc", "tpi", "hw")


@pytest.fixture(scope="module")
def jacobi_results():
    machine = small_machine()
    run = prepare(jacobi(), machine)
    return simulate_all(run, ALL_SCHEMES)


class TestPipeline:
    def test_all_schemes_complete_without_oracle_violations(self, jacobi_results):
        # The coherence-safety oracle raises inside simulate() on violation.
        assert set(jacobi_results) == set(ALL_SCHEMES)
        for result in jacobi_results.values():
            assert result.exec_cycles > 0
            assert result.epochs > 0

    def test_same_access_counts_across_schemes(self, jacobi_results):
        reads = {r.reads for r in jacobi_results.values()}
        writes = {r.writes for r in jacobi_results.values()}
        assert len(reads) == 1 and len(writes) == 1

    def test_base_is_slowest(self, jacobi_results):
        base = jacobi_results["base"].exec_cycles
        for name in ("sc", "tpi", "hw"):
            # SC can tie BASE on a kernel where every read is marked stale.
            assert jacobi_results[name].exec_cycles <= base
        assert jacobi_results["tpi"].exec_cycles < base
        assert jacobi_results["hw"].exec_cycles < base

    def test_tpi_beats_sc_miss_rate(self, jacobi_results):
        """Timetags recover the intertask locality SC throws away."""
        assert (jacobi_results["tpi"].miss_rate
                < jacobi_results["sc"].miss_rate)

    def test_hw_wins_on_adversarial_producer_consumer(self, jacobi_results):
        """Tight same-processor rewrites are HW's best case: ownership
        tracking hits where the compiler must assume another writer."""
        assert jacobi_results["hw"].miss_rate < jacobi_results["tpi"].miss_rate
        assert jacobi_results["tpi"].miss_rate < 0.6  # intra-task reuse works

    def test_tpi_comparable_to_hw_on_read_mostly(self):
        """The paper's headline: on its (read-reuse dominated) benchmarks,
        TPI performs comparably to a full-map directory."""
        machine = small_machine()
        run = prepare(stencil_readmostly(), machine)
        tpi = simulate(run, "tpi")
        hw = simulate(run, "hw")
        assert tpi.miss_rate <= max(2.0 * hw.miss_rate, 0.03)
        assert tpi.exec_cycles <= 2.0 * hw.exec_cycles

    def test_write_through_vs_write_back_traffic(self, jacobi_results):
        tpi_writes = jacobi_results["tpi"].traffic.get(TrafficClass.WRITE, 0)
        hw_writes = jacobi_results["hw"].traffic.get(TrafficClass.WRITE, 0)
        assert tpi_writes > hw_writes

    def test_hw_has_coherence_traffic_tpi_none(self, jacobi_results):
        assert jacobi_results["hw"].traffic.get(TrafficClass.COHERENCE, 0) > 0
        assert jacobi_results["tpi"].traffic.get(TrafficClass.COHERENCE, 0) == 0

    def test_miss_classification_sums(self, jacobi_results):
        for result in jacobi_results.values():
            assert sum(result.miss_counts.values()) == result.reads


class TestCriticalSections:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_reduction_runs_coherently(self, scheme):
        machine = small_machine()
        result = simulate(reduction(), scheme, machine)
        assert result.extra.get("lock_acquires", 0) == 64

    def test_lock_serialization_costs_time(self):
        machine = small_machine()
        result = simulate(reduction(), "tpi", machine)
        # 64 serialized critical sections must dominate execution time.
        assert result.exec_cycles > 64 * 2


class TestSchedulingAndBuffers:
    def test_interleaved_schedule_runs(self):
        machine = small_machine(schedule=SchedulePolicy.INTERLEAVED)
        result = simulate(jacobi(n=16, steps=2), "tpi", machine)
        assert result.exec_cycles > 0

    def test_coalescing_buffer_reduces_write_traffic(self):
        b = ProgramBuilder("rewrite")
        b.array("acc", (16,))
        b.array("data", (16, 8))
        with b.procedure("main"):
            with b.doall("i", 0, 15) as i:
                with b.serial("j", 0, 7) as j:
                    b.stmt(writes=[b.at("acc", i)], reads=[b.at("data", i, j)],
                           work=1)
        program = b.build()
        fifo = simulate(program, "tpi", small_machine())
        merged = simulate(program, "tpi",
                          small_machine(write_buffer=WriteBufferKind.COALESCING))
        assert (merged.traffic[TrafficClass.WRITE]
                < fifo.traffic[TrafficClass.WRITE] / 4)

    def test_deterministic_simulation(self):
        machine = small_machine()
        a = simulate(jacobi(n=16, steps=2), "hw", machine)
        b = simulate(jacobi(n=16, steps=2), "hw", machine)
        assert a.exec_cycles == b.exec_cycles
        assert a.miss_counts == b.miss_counts
        assert a.traffic == b.traffic


class TestUnnecessaryMisses:
    def test_tpi_conservative_misses_present(self):
        machine = small_machine()
        run = prepare(jacobi(n=24, steps=3), machine)
        tpi = simulate(run, "tpi")
        assert tpi.kind_count(MissKind.CONSERVATIVE) > 0
        assert tpi.kind_count(MissKind.FALSE_SHARING) == 0

    def test_hw_false_sharing_with_interleaved_writers(self):
        """Adjacent words of one line on different processors: the paper's
        false-sharing effect, which TPI's per-word timetags avoid."""
        machine = small_machine(schedule=SchedulePolicy.INTERLEAVED)
        run = prepare(false_sharing_kernel(), machine)
        hw = simulate(run, "hw")
        tpi = simulate(run, "tpi")
        assert hw.kind_count(MissKind.FALSE_SHARING) > 0
        assert hw.kind_count(MissKind.CONSERVATIVE) == 0
        assert tpi.kind_count(MissKind.FALSE_SHARING) == 0

    def test_unnecessary_misses_comparable_shapes(self):
        """Both schemes pay an unnecessary-miss tax on a kernel exhibiting
        both effects: interleaved writers on shared lines (HW false sharing)
        plus a partially-written array whose per-array W register makes TPI
        re-fetch the untouched half (compiler conservatism)."""
        n, steps = 64, 4
        b = ProgramBuilder("unnecessary", params={"T": steps})
        b.array("A", (n,))
        b.array("B", (n,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, n // 2 - 1) as i:
                    b.stmt(writes=[b.at("A", i)], reads=[b.at("B", i)], work=1)
                with b.doall("j", 0, n - 2) as j:
                    b.stmt(writes=[b.at("B", j)], reads=[b.at("A", j + 1)],
                           work=1)
        machine = small_machine(schedule=SchedulePolicy.INTERLEAVED)
        run = prepare(b.build(), machine)
        hw = simulate(run, "hw")
        tpi = simulate(run, "tpi")
        assert hw.kind_count(MissKind.FALSE_SHARING) > 0
        assert tpi.kind_count(MissKind.CONSERVATIVE) > 0
