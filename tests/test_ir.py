"""Unit tests for the IR: builder, program structure, validation."""

import pytest

from repro.common.errors import ValidationError
from repro.ir import Affine, Loop, ProgramBuilder, Sharing, Statement, sym
from repro.ir.program import walk


def small_program():
    b = ProgramBuilder("demo", params={"N": 8})
    b.array("A", (8, 8))
    b.array("x", (8,), private=True)
    with b.procedure("main"):
        with b.doall("i", 0, 7) as i:
            b.stmt(writes=[b.at("A", i, 0)], reads=[b.at("x", i)], work=2)
        with b.serial("j", 0, 7) as j:
            b.stmt(reads=[b.at("A", j, 0)], work=1)
    return b.build()


class TestBuilder:
    def test_builds_valid_program(self):
        p = small_program()
        assert p.entry == "main"
        assert p.arrays["A"].sharing is Sharing.SHARED
        assert p.arrays["x"].sharing is Sharing.PRIVATE
        assert p.n_sites == 3
        body = p.procedures["main"].body
        assert isinstance(body[0], Loop) and body[0].parallel
        assert isinstance(body[1], Loop) and not body[1].parallel

    def test_site_ids_unique_and_dense(self):
        p = small_program()
        sites = [ref.site
                 for node in walk(p.procedures["main"].body)
                 if isinstance(node, Statement)
                 for ref in (*node.reads, *node.writes)]
        assert sorted(sites) == list(range(p.n_sites))

    def test_stmt_outside_procedure_rejected(self):
        b = ProgramBuilder("bad")
        b.array("A", (4,))
        with pytest.raises(ValidationError):
            b.stmt(reads=[b.at("A", 0)])

    def test_duplicate_array_rejected(self):
        b = ProgramBuilder("bad")
        b.array("A", (4,))
        with pytest.raises(ValidationError):
            b.array("A", (4,))

    def test_undeclared_array_rejected(self):
        b = ProgramBuilder("bad")
        with pytest.raises(ValidationError):
            b.at("missing", 0)

    def test_scalar_assign_enters_scope(self):
        b = ProgramBuilder("scal", params={"N": 4})
        b.array("A", (16,))
        with b.procedure("main"):
            off = b.assign("off", b.p("N") * 2)
            with b.doall("i", 0, 3) as i:
                b.stmt(writes=[b.at("A", i + off)])
        p = b.build()
        assert p.n_sites == 1

    def test_critical_section(self):
        b = ProgramBuilder("cs")
        b.array("sum", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                with b.critical("L"):
                    b.stmt(writes=[b.at("sum", 0)], reads=[b.at("sum", 0)])
        p = b.build()
        assert p.n_sites == 2


class TestValidation:
    def test_missing_entry(self):
        b = ProgramBuilder("noentry")
        with b.procedure("other"):
            pass
        with pytest.raises(ValidationError):
            b.build(entry="main")

    def test_nested_doall_rejected(self):
        b = ProgramBuilder("nest")
        b.array("A", (8, 8))
        with pytest.raises(ValidationError):
            with b.procedure("main"):
                with b.doall("i", 0, 7) as i:
                    with b.doall("j", 0, 7) as j:
                        b.stmt(writes=[b.at("A", i, j)])
            b.build()

    def test_doall_through_call_rejected(self):
        b = ProgramBuilder("nestcall")
        b.array("A", (8,))
        with b.procedure("inner"):
            with b.doall("k", 0, 7) as k:
                b.stmt(writes=[b.at("A", k)])
        with b.procedure("main"):
            with b.doall("i", 0, 7):
                b.call("inner")
        with pytest.raises(ValidationError):
            b.build()

    def test_recursion_rejected(self):
        b = ProgramBuilder("rec")
        with b.procedure("main"):
            b.call("main")
        with pytest.raises(ValidationError):
            b.build()

    def test_undefined_callee_rejected(self):
        b = ProgramBuilder("undef")
        with b.procedure("main"):
            b.call("ghost")
        with pytest.raises(ValidationError):
            b.build()

    def test_rank_mismatch_rejected(self):
        b = ProgramBuilder("rank")
        b.array("A", (4, 4))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])
        with pytest.raises(ValidationError):
            b.build()

    def test_unbound_symbol_rejected(self):
        b = ProgramBuilder("unbound")
        b.array("A", (4,))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", sym("q"))])
        with pytest.raises(ValidationError):
            b.build()

    def test_index_shadowing_rejected(self):
        b = ProgramBuilder("shadow", params={"N": 4})
        b.array("A", (4,))
        with pytest.raises(ValidationError):
            with b.procedure("main"):
                with b.serial("N", 0, 3) as n:
                    b.stmt(reads=[b.at("A", n)])
            b.build()

    def test_scalar_use_before_assign_rejected(self):
        b = ProgramBuilder("order")
        b.array("A", (16,))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", sym("off"))])
            b.assign("off", 2)
        with pytest.raises(ValidationError):
            b.build()
