"""Multi-word access units (double precision): layout, trace, coherence."""

import pytest

from repro.common.config import default_machine
from repro.common.stats import MissKind
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate, simulate_all
from repro.trace import EventKind, MemoryLayout, generate_trace

MACHINE = default_machine().with_(n_procs=4)


def double_precision_program(n=16, steps=3):
    b = ProgramBuilder("dp", params={"T": steps})
    b.array("D", (n,), element_words=2)  # double precision
    b.array("S", (n,))  # single precision
    with b.procedure("main"):
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 0, n - 1) as i:
                b.stmt(writes=[b.at("D", i)], reads=[b.at("S", i)], work=2)
            with b.doall("j", 0, n - 1) as j:
                b.stmt(writes=[b.at("S", j)], reads=[b.at("D", j)], work=1)
    return b.build()


class TestLayout:
    def test_element_scaled_addresses(self):
        program = double_precision_program()
        layout = MemoryLayout(program, n_procs=4)
        base = layout.base("D")
        assert layout.addr_of("D", (0,)) == base
        assert layout.addr_of("D", (1,)) == base + 2
        assert layout.addr_of("D", (5,)) == base + 10

    def test_size_words_doubled(self):
        program = double_precision_program(n=16)
        assert program.arrays["D"].size_words == 32
        assert program.arrays["D"].n_elements == 16


class TestTrace:
    def test_two_events_per_access(self):
        program = double_precision_program(n=8, steps=1)
        trace = generate_trace(program, MACHINE)
        writes = [ev for e in trace.epochs for t in e.tasks for ev in t.events
                  if ev.kind is EventKind.WRITE]
        d_base = trace.layout.base("D")
        d_writes = [ev for ev in writes if d_base <= ev.addr < d_base + 16]
        assert len(d_writes) == 16  # 8 elements x 2 words
        # Consecutive word pairs share the site id.
        by_site = {}
        for ev in d_writes:
            by_site.setdefault(ev.site, []).append(ev.addr)
        for addrs in by_site.values():
            addrs.sort()
            assert all(b - a == 1 for a, b in zip(addrs[::2], addrs[1::2]))


class TestCoherence:
    @pytest.mark.parametrize("scheme", ("base", "sc", "tpi", "hw", "update"))
    def test_all_schemes_coherent_with_doubles(self, scheme):
        run = prepare(double_precision_program(), MACHINE)
        result = simulate(run, scheme)
        assert result.exec_cycles > 0

    def test_tpi_both_words_tagged_by_write(self):
        """A double-precision producer-consumer: the consumer (same proc)
        hits on both words of its own elements."""
        program = double_precision_program()
        results = simulate_all(prepare(program, MACHINE))
        tpi = results["tpi"]
        # Self-owned rewrites: misses far below the 100% an untagged
        # second word would cause.
        assert tpi.miss_rate < 0.5

    def test_line_straddling_element(self):
        """Elements that straddle cache lines stay coherent.

        3-word elements on 4-word lines: element k starts at word 3k, so
        most elements span two lines (bases are line-aligned, so 2-word
        elements never would).
        """
        b = ProgramBuilder("straddle", params={"T": 2})
        b.array("D", (8,), element_words=3)
        b.array("S", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("D", i)], reads=[b.at("S", 0)],
                           work=1)
                with b.doall("j", 0, 7) as j:
                    b.stmt(reads=[b.at("D", j)], writes=[b.at("S", j)],
                           work=1)
        program = b.build()
        layout = MemoryLayout(program, 4)
        first = layout.addr_of("D", (1,))
        assert first // 4 != (first + 2) // 4  # genuinely straddles
        run = prepare(program, MACHINE)
        for scheme in ("tpi", "hw", "sc"):
            simulate(run, scheme)  # oracle-checked
