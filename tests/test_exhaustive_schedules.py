"""Exhaustive schedule enumeration — marking soundness beyond one scheduler.

The compiler must be safe for *every* legal assignment of DOALL iterations
to processors, not just the chunk/interleaved policies the generator
offers.  For tiny programs we enumerate ALL task->processor assignments
(P^tasks combinations), rewrite the trace accordingly, and run TPI and SC
with the per-read version oracle active: any assignment under which an
unmarked read can observe stale data fails loudly.

Programs here use only shared arrays, so reassigning a task to another
processor does not change its event addresses.
"""

import copy
import itertools

import pytest

from repro.common.config import CacheConfig, default_machine
from repro.compiler import mark_program
from repro.ir import ProgramBuilder
from repro.sim.engine import Engine
from repro.trace import generate_trace
from repro.trace.events import Task

N_PROCS = 2
MACHINE = default_machine().with_(
    n_procs=N_PROCS, cache=CacheConfig(size_bytes=512, line_words=4),
    epoch_setup_cycles=2, task_dispatch_cycles=1)


def split_tasks_per_iteration(program):
    """Trace with one task per DOALL iteration (so assignments can move
    individual iterations), by generating at a huge processor count and
    then re-basing.  Serial epochs keep their single master task."""
    wide = default_machine().with_(n_procs=64,
                                   cache=MACHINE.cache,
                                   epoch_setup_cycles=2,
                                   task_dispatch_cycles=1)
    trace = generate_trace(program, wide)
    return trace


def iteration_task_slots(trace):
    """(epoch_idx, task_idx) for every parallel-epoch task."""
    slots = []
    for e_idx, epoch in enumerate(trace.epochs):
        if epoch.parallel:
            for t_idx in range(len(epoch.tasks)):
                slots.append((e_idx, t_idx))
    return slots


def reassign(trace, slots, assignment):
    """A deep-copied trace with each slot's task moved to its assigned
    processor (tasks landing on one processor merge, order preserved)."""
    new = copy.deepcopy(trace)
    new.n_procs = N_PROCS
    for (e_idx, t_idx), proc in zip(slots, assignment):
        new.epochs[e_idx].tasks[t_idx].proc = proc
    for epoch in new.epochs:
        merged = {}
        for task in epoch.tasks:
            target = merged.setdefault(task.proc, Task(proc=task.proc))
            target.events.extend(task.events)
            target.extra_work += task.extra_work
        epoch.tasks = [merged[p] for p in sorted(merged)]
    return new


def exhaust(program, max_assignments=700):
    marking = mark_program(program)
    trace = split_tasks_per_iteration(program)
    slots = iteration_task_slots(trace)
    total = N_PROCS ** len(slots)
    assert total <= max_assignments, (
        f"program too large to exhaust: {total} assignments")
    checked = 0
    for assignment in itertools.product(range(N_PROCS), repeat=len(slots)):
        run = reassign(trace, slots, assignment)
        for scheme in ("tpi", "sc"):
            Engine(run, marking, MACHINE, scheme).run()
        checked += 1
    assert checked == total
    return checked


class TestExhaustive:
    def test_producer_consumer(self):
        """Write A in one epoch, read it (reversed) in the next."""
        b = ProgramBuilder("pc")
        b.array("A", (4,))
        b.array("B", (4,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 3) as j:
                b.stmt(reads=[b.at("A", 3 - j)], writes=[b.at("B", j)])
        assert exhaust(b.build()) == 2 ** 8

    def test_same_epoch_neighbour(self):
        """Strict Time-Reads: read a neighbour the same epoch writes."""
        b = ProgramBuilder("neigh")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("w", 0, 3) as w:
                b.stmt(writes=[b.at("A", w)])
            with b.doall("i", 1, 3) as i:
                b.stmt(reads=[b.at("A", i - 1)], writes=[b.at("A", i)])
        assert exhaust(b.build()) == 2 ** 7

    def test_serial_parallel_interleaving(self):
        """Master writes between parallel epochs; loop-carried reuse."""
        b = ProgramBuilder("mix", params={"T": 2})
        b.array("A", (4,))
        b.array("B", (4,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                b.stmt(writes=[b.at("A", 0)])  # master
                with b.doall("i", 0, 2) as i:
                    b.stmt(reads=[b.at("A", 0), b.at("B", i)],
                           writes=[b.at("B", i)])
        assert exhaust(b.build()) == 2 ** 6

    def test_partial_writes_with_reuse(self):
        """Only part of A is rewritten; reads of the rest may keep hitting
        (timestamp window, W-register granularity) under every schedule —
        and must stay safe."""
        b = ProgramBuilder("partial")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("z", 0, 2) as z:
                b.stmt(writes=[b.at("A", z)])
            with b.doall("i", 0, 1) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 2) as j:
                b.stmt(reads=[b.at("A", j)], writes=[b.at("B", j)])
        assert exhaust(b.build()) == 2 ** 8

    def test_sabotaged_marking_caught_under_some_schedule(self):
        """Control experiment: erase the marking and the exhaustive sweep
        must find a schedule that trips the oracle (proving the sweep has
        teeth)."""
        from repro.common.errors import SimulationError
        from repro.compiler.marking import Marking
        from repro.compiler.epochs import EpochGraph

        b = ProgramBuilder("sab")
        b.array("A", (4,))
        b.array("B", (4,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                b.stmt(writes=[b.at("A", i)])
            with b.doall("j", 0, 3) as j:
                b.stmt(reads=[b.at("A", 3 - j)], writes=[b.at("B", j)])
        program = b.build()
        honest = mark_program(program)
        sabotage = Marking(tpi={site: __import__(
            "repro.compiler.marking", fromlist=["RefMark"]).RefMark.READ
            for site in honest.tpi},
            sc={}, graph=EpochGraph())
        trace = split_tasks_per_iteration(program)
        slots = iteration_task_slots(trace)
        tripped = False
        for assignment in itertools.product(range(N_PROCS), repeat=len(slots)):
            run = reassign(trace, slots, assignment)
            try:
                Engine(run, sabotage, MACHINE, "tpi").run()
            except SimulationError:
                tripped = True
                break
        assert tripped, "oracle failed to catch the erased marking"
