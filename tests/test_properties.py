"""End-to-end property tests: marking soundness and hardware safety.

Hypothesis generates random small parallel programs; every scheme's
internal coherence oracle (see ``CoherenceScheme._check_read_version``)
verifies on *every read* that the observed data version is legal under the
memory model.  A marking bug (a read left unmarked that can be stale), a
TPI hardware bug (a Time-Read hitting a stale copy, a reset missing an
aliasing tag), or a directory protocol bug all surface as a
``SimulationError`` here.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import (
    CacheConfig,
    SchedulePolicy,
    TimetagResetPolicy,
    TpiConfig,
    default_machine,
)
from repro.compiler.marking import MarkingOptions
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate
from repro.trace.schedule import MigrationSpec

N_ARR = 12  # elements per shared array


@st.composite
def subscripts(draw, index):
    """A random affine subscript in the DOALL index, clamped in-bounds."""
    kind = draw(st.sampled_from(["ident", "shift", "stride", "const", "rev"]))
    if kind == "ident":
        return index
    if kind == "shift":
        # Non-negative shifts keep subscripts in [0, N_ARR-1] for i <= 5.
        return index + draw(st.integers(0, 2))
    if kind == "stride":
        return index * 2 + draw(st.integers(0, 1))
    if kind == "rev":
        return draw(st.integers(N_ARR - 4, N_ARR - 1)) - index
    return draw(st.integers(0, N_ARR - 1))


@st.composite
def programs(draw):
    """A random program: 2..5 epochs over two shared arrays."""
    b = ProgramBuilder("random", params={})
    b.array("A", (N_ARR,))
    b.array("B", (N_ARR,))
    n_epochs = draw(st.integers(2, 5))
    loop_around = draw(st.booleans())
    site_budget = 0

    def segment(tag):
        nonlocal site_budget
        parallel = draw(st.booleans())
        lo = draw(st.integers(0, 2))
        hi = draw(st.integers(lo, 5))
        ctx = b.doall if parallel else b.serial
        with ctx(f"i{tag}", lo, hi) as i:
            for s in range(draw(st.integers(1, 2))):
                reads = []
                writes = []
                for arr in ("A", "B"):
                    action = draw(st.sampled_from(["read", "write", "skip"]))
                    sub = draw(subscripts(i))
                    # Clamp: subscripts stay in range for i in [0, 5].
                    safe = sub if isinstance(sub, int) else sub
                    if action == "read":
                        reads.append(b.at(arr, _clamped(b, safe)))
                    elif action == "write":
                        writes.append(b.at(arr, _clamped(b, safe)))
                if reads or writes:
                    b.stmt(reads=reads, writes=writes, work=1)
                    site_budget += len(reads) + len(writes)

    def _clamped(b, sub):
        return sub

    with b.procedure("main"):
        if loop_around:
            trips = draw(st.integers(2, 4))
            b.param("T", trips)
            with b.serial("t", 0, b.p("T") - 1):
                for e in range(n_epochs):
                    segment(f"{e}")
        else:
            for e in range(n_epochs):
                segment(f"{e}")
    return b.build()


def _run_all_schemes(program, machine, opts=None, migration=None):
    run = prepare(program, machine, opts=opts, migration=migration)
    for scheme in ("base", "sc", "tpi", "hw", "update"):
        result = simulate(run, scheme)
        assert sum(result.miss_counts.values()) == result.reads
    return run


class TestMarkingSoundness:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs(), st.sampled_from(list(SchedulePolicy)),
           st.integers(2, 4))
    def test_no_scheme_reads_stale_data(self, program, policy, n_procs):
        """The central soundness property: for random programs under any
        scheduling, every read of every scheme observes a legal version."""
        machine = default_machine().with_(
            n_procs=n_procs, schedule=policy,
            cache=CacheConfig(size_bytes=1024, line_words=4),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        _run_all_schemes(program, machine)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs(), st.integers(1, 4))
    def test_tpi_safe_across_timetag_wraparound(self, program, bits):
        """Tiny timetags wrap constantly; the two-phase reset must prevent
        any modular-age aliasing from producing a stale hit."""
        machine = default_machine().with_(
            n_procs=2,
            cache=CacheConfig(size_bytes=1024, line_words=4),
            tpi=TpiConfig(timetag_bits=bits),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        run = prepare(program, machine)
        simulate(run, "tpi")

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_flush_policy_also_safe(self, program):
        machine = default_machine().with_(
            n_procs=2,
            cache=CacheConfig(size_bytes=1024, line_words=4),
            tpi=TpiConfig(timetag_bits=2,
                          reset_policy=TimetagResetPolicy.FLUSH),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        simulate(prepare(program, machine), "tpi")

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs(), st.integers(2, 9))
    def test_safe_under_task_migration(self, program, every):
        """With migration injected, the safe marking mode must still keep
        every read coherent (Section 5 of the paper)."""
        machine = default_machine().with_(
            n_procs=3,
            cache=CacheConfig(size_bytes=1024, line_words=4),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        _run_all_schemes(program, machine,
                         opts=MarkingOptions(assume_no_migration=False),
                         migration=MigrationSpec(every=every))


class TestSchemeAgreement:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_access_counts_identical_across_schemes(self, program):
        machine = default_machine().with_(
            n_procs=2, cache=CacheConfig(size_bytes=1024, line_words=4),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        run = prepare(program, machine)
        results = [simulate(run, s)
                   for s in ("base", "sc", "tpi", "hw", "update")]
        assert len({r.reads for r in results}) == 1
        assert len({r.writes for r in results}) == 1

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(programs())
    def test_directory_invariants_after_random_program(self, program):
        machine = default_machine().with_(
            n_procs=3, cache=CacheConfig(size_bytes=512, line_words=4),
            epoch_setup_cycles=5, task_dispatch_cycles=1)
        run = prepare(program, machine)
        from repro.sim.engine import Engine

        engine = Engine(run.trace, run.marking, machine, "hw")
        engine.run()
        engine.scheme.check_invariants()
