"""Differential parity for gang simulation (the config-axis vectorizer).

A gang shares one columnar trace across many back-end machine variants
(:mod:`repro.sim.gang`); its contract is the same as the fast engine's
(tests/test_engine_parity.py): every per-config result must be
byte-identical — canonical JSON of ``to_dict()`` plus the per-epoch
records — to running that configuration alone, on either engine.

Layers:

* hypothesis-random programs x machines, each fanned into several
  back-end variants, ganged via :func:`run_gang` and compared member by
  member against solo fast and solo reference runs;
* executor-level sweeps: jobs=1 vs jobs=N, cold vs warm cache, and the
  ``engine="gang"`` selection path;
* the cache-shape guarantee: a line-size/timetag sweep stores exactly
  one prepared front end per workload;
* grid-order and ``jobs=None`` regressions for :class:`Sweep.run`.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.coherence.api import dead_config_fields, scheme_registry
from repro.common.config import (WORD_BYTES, CacheConfig, DirectoryConfig,
                                 TardisConfig, TpiConfig, WriteBufferKind,
                                 default_machine)
from repro.runtime import ArtifactCache, Job, Telemetry, effective_jobs
from repro.runtime.cache import KIND_PREPARED, KIND_RESULT
from repro.sim import prepare, simulate
from repro.sim.engine import resolve_engine
from repro.sim.gang import GangMember, distinct_backends, prime_group, run_gang
from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits
from repro.trace.generate import generate_trace
from repro.workloads import build_workload
from tests.strategies import machines, rich_programs

MACHINE = default_machine().with_(n_procs=4, record_epochs=True)

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def snapshot(result) -> str:
    """Canonical JSON of everything a result observably contains."""
    return json.dumps(
        {"result": result.to_dict(),
         "epoch_records": [dataclasses.asdict(r)
                           for r in result.epoch_records]},
        sort_keys=True)


def backend_variants(base):
    """Back-end-only variants of one machine (front end untouched).

    Geometry variants keep the base line count and associativity and
    change only the line width, so they stay valid for the tiny fuzzed
    caches too.
    """
    cache = base.cache

    def lines(words):
        return CacheConfig(size_bytes=cache.n_lines * words * WORD_BYTES,
                           line_words=words,
                           associativity=cache.associativity)

    return [
        base,
        base.with_(cache=lines(8)),
        base.with_(cache=lines(1)),
        base.with_(tpi=TpiConfig(timetag_bits=3)),
        base.with_(base_miss_latency=base.base_miss_latency + 40),
    ]


class TestGangParity:
    """Every gang member == its solo fast run == its solo reference run."""

    @settings(max_examples=10, **SETTINGS)
    @given(program=rich_programs(), machine=machines(),
           scheme=st.sampled_from(["tpi", "hw"]))
    def test_random_programs_and_machines(self, program, machine, scheme):
        variants = backend_variants(machine)
        run = prepare(program, machine)
        members = [GangMember(v, scheme) for v in variants]
        ganged = run_gang(run, members)
        for variant, result in zip(variants, ganged):
            solo_fast = simulate(prepare(program, variant.with_(engine="fast")),
                                 scheme)
            solo_ref = simulate(
                prepare(program, variant.with_(engine="reference")), scheme)
            assert snapshot(result) == snapshot(solo_fast)
            assert snapshot(result) == snapshot(solo_ref)

    @pytest.mark.parametrize("name", ["ocean", "trfd"])
    def test_workload_gang_matches_solo(self, name):
        program = build_workload(name, size="small")
        variants = backend_variants(MACHINE)
        run = prepare(program, MACHINE)
        members = [GangMember(v, s) for v in variants for s in ("tpi", "hw")]
        stats = {}
        ganged = run_gang(run, members, stats=stats)
        if resolve_engine(MACHINE) == "reference":
            # Every member resolves to the reference engine (e.g. the
            # REPRO_ENGINE=reference CI leg): nothing is primed.
            assert stats.get("gang_width", 0) == 0
        else:
            assert stats["gang_width"] == len(distinct_backends(variants))
            assert stats["phases"]["gang"] >= 0.0
        for member, result in zip(members, ganged):
            solo = simulate(prepare(program, member.machine), member.scheme)
            assert snapshot(result) == snapshot(solo)

    def test_priming_is_pure(self):
        """Results are byte-identical with and without prime_group."""
        program = build_workload("ocean", size="small")
        variants = backend_variants(MACHINE)
        unprimed = [snapshot(simulate(prepare(program, v), "tpi"))
                    for v in variants]
        run = prepare(program, MACHINE)
        prime_group(run.trace, variants)
        primed = [snapshot(simulate(run, "tpi", machine=v)) for v in variants]
        assert primed == unprimed


class TestSchemeAxisGang:
    """Tentpole pin: one gang broadcasts the *scheme* axis in lockstep;
    every member stays byte-identical to its solo fast and solo
    reference runs (arc2d exercises the sync-epoch fallback inside a
    ganged member too)."""

    SCHEMES = ("base", "sc", "tpi", "hw", "update", "tardis", "snoop")

    @pytest.mark.parametrize("name", ["ocean", "arc2d"])
    def test_scheme_gang_matches_solo(self, name):
        program = build_workload(name, size="small")
        run = prepare(program, MACHINE)
        members = [GangMember(MACHINE, scheme) for scheme in self.SCHEMES]
        ganged = run_gang(run, members)
        for scheme, result in zip(self.SCHEMES, ganged):
            solo_fast = simulate(
                prepare(program, MACHINE.with_(engine="fast")), scheme)
            solo_ref = simulate(
                prepare(program, MACHINE.with_(engine="reference")), scheme)
            assert snapshot(result) == snapshot(solo_fast)
            assert snapshot(result) == snapshot(solo_ref)

    def test_scheme_sweep_gang_vs_fast(self):
        """`--engine gang` == `--engine fast`, per scheme, whole axis."""
        renders = []
        for engine in ("fast", "gang"):
            sweep = Sweep(build_workload("ocean", size="small"),
                          schemes=self.SCHEMES,
                          base=MACHINE.with_(engine=engine))
            sweep.add_axis("line", axis_cache_lines([1, 4]))
            points = sweep.run()
            renders.append([(p.labels, p.scheme, snapshot(p.result))
                            for p in points])
        assert renders[0] == renders[1]


class TestPrimeFallbacks:
    def test_object_trace_falls_back(self):
        program = build_workload("ocean", size="small")
        trace = generate_trace(program, MACHINE)
        stats = prime_group(trace, backend_variants(MACHINE))
        assert stats["fallback"] == "object-trace"
        assert stats["primed_epochs"] == 0

    def test_gang_of_one_falls_back(self):
        run = prepare(build_workload("ocean", size="small"), MACHINE)
        stats = prime_group(run.trace, [MACHINE])
        assert stats["fallback"] == "gang-of-one"

    def test_identical_configs_dedup_to_one(self):
        # engine is not a back-end field: variants differing only in it
        # collapse to one backend, so priming is skipped.
        pair = [MACHINE.with_(engine="fast"), MACHINE.with_(engine="gang")]
        assert len(distinct_backends(pair)) == 1
        run = prepare(build_workload("ocean", size="small"), MACHINE)
        stats = prime_group(run.trace, distinct_backends(pair))
        assert stats["fallback"] == "gang-of-one"

    def test_primes_columnar_epochs(self):
        run = prepare(build_workload("ocean", size="small"), MACHINE)
        stats = prime_group(run.trace, backend_variants(MACHINE))
        assert stats["fallback"] == ""
        assert stats["primed_epochs"] > 0
        assert stats["geometries"] == 3  # default, 8-word, 1-word lines
        assert stats["width"] == 5


def vary_dead_field(machine, name):
    """Perturb one config field a scheme has declared dead."""
    if name == "tpi":
        return machine.with_(tpi=TpiConfig(timetag_bits=3))
    if name == "write_buffer":
        return machine.with_(write_buffer=WriteBufferKind.COALESCING)
    if name == "directory":
        return machine.with_(directory=DirectoryConfig(
            limitless_pointers=2, overflow_trap_cycles=999))
    if name == "tardis":
        return machine.with_(tardis=TardisConfig(lease=3, timestamp_bits=6))
    raise AssertionError(f"no variant for dead field {name!r}")


class TestSchemeDeadConfig:
    """Every declared scheme-dead field is differentially pinned."""

    CASES = [(scheme, name)
             for scheme, cls in sorted(scheme_registry().items())
             for name in cls.config_dead_fields]

    @pytest.mark.parametrize("scheme,name", CASES)
    def test_dead_field_does_not_change_result(self, scheme, name):
        program = build_workload("ocean", size="small")
        plain = simulate(prepare(program, MACHINE), scheme)
        varied = simulate(prepare(program, vary_dead_field(MACHINE, name)),
                          scheme)
        assert snapshot(plain) == snapshot(varied)

    def test_fingerprints_collapse_on_dead_fields(self):
        program = build_workload("ocean", size="small")
        for scheme, cls in scheme_registry().items():
            base_key = Job(program=program, scheme=scheme,
                           machine=MACHINE).fingerprint()
            for name in cls.config_dead_fields:
                varied = vary_dead_field(MACHINE, name)
                assert Job(program=program, scheme=scheme,
                           machine=varied).fingerprint() == base_key

    def test_live_fields_still_split_fingerprints(self):
        program = build_workload("ocean", size="small")
        varied = vary_dead_field(MACHINE, "tpi")
        assert dead_config_fields("tpi") == ("directory", "tardis")
        assert (Job(program=program, scheme="tpi", machine=MACHINE).fingerprint()
                != Job(program=program, scheme="tpi",
                       machine=varied).fingerprint())


def line_k_sweep(base=MACHINE, schemes=("tpi", "hw"), workload="ocean"):
    sweep = Sweep(build_workload(workload, size="small"),
                  schemes=schemes, base=base)
    sweep.add_axis("line", axis_cache_lines([1, 4]))
    sweep.add_axis("k", axis_timetag_bits([2, 8]))
    return sweep


class TestGangSweeps:
    def test_engine_selection_is_invisible_in_results(self):
        renders = []
        for engine in ("fast", "gang", "reference"):
            points = line_k_sweep(MACHINE.with_(engine=engine)).run()
            renders.append([(p.labels, p.scheme, snapshot(p.result))
                            for p in points])
        assert renders[0] == renders[1] == renders[2]

    def test_dead_config_shares_results_in_sweep(self):
        """The hw column collapses across timetag widths: one simulation
        answers both k cells, telemetry counts the sharing, and the tpi
        column (which reads the timetag config) stays split."""
        telemetry = Telemetry()
        points = line_k_sweep().run(telemetry=telemetry)
        assert telemetry.results_shared == 2  # hw x {4B, 16B}
        by = {(p.labels["line"], p.labels["k"], p.scheme): snapshot(p.result)
              for p in points}
        for line in ("4B", "16B"):
            assert by[(line, "k=2", "hw")] == by[(line, "k=8", "hw")]
        assert by[("4B", "k=2", "tpi")] != by[("4B", "k=8", "tpi")]
        shared = [r for r in telemetry.records if r.source == "shared"]
        assert len(shared) == 2 and all(r.scheme == "hw" for r in shared)

    def test_jobs_1_vs_jobs_n_parity(self):
        serial = line_k_sweep(MACHINE.with_(engine="gang")).run(jobs=1)
        parallel = line_k_sweep(MACHINE.with_(engine="gang")).run(jobs=2)
        assert [snapshot(p.result) for p in serial] == \
               [snapshot(p.result) for p in parallel]

    def test_cold_vs_warm_cache_parity(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = line_k_sweep().run(jobs=2, cache=cache)
        warm_t = Telemetry()
        warm = line_k_sweep().run(jobs=2, cache=cache, telemetry=warm_t)
        assert warm_t.traces_generated == 0
        assert warm_t.result_hits == len(cold)
        assert [snapshot(p.result) for p in cold] == \
               [snapshot(p.result) for p in warm]

    def test_one_prepared_front_end_per_workload(self, tmp_path):
        """A back-end-only sweep stores ONE trace per workload (satellite:
        the fingerprint split keeps line size/timetag out of the prepare
        key)."""
        cache = ArtifactCache(tmp_path)
        for workload in ("ocean", "trfd"):
            telemetry = Telemetry()
            points = line_k_sweep(workload=workload).run(
                cache=cache, telemetry=telemetry)
            assert telemetry.traces_generated == 1
            assert telemetry.traces_shared == len(points) - 1
        stats = cache.stats()
        assert stats.entries[KIND_PREPARED] == 2  # one per workload
        # 8 points/workload but only 6 distinct results: hw never reads
        # the timetag config, so its k=2/k=8 cells share one entry.
        assert stats.entries[KIND_RESULT] == 12


class TestSweepRegressions:
    def test_grid_order_schemes_innermost(self):
        points = line_k_sweep().run()
        expected = [({"line": line, "k": k}, scheme)
                    for line in ("4B", "16B")
                    for k in ("k=2", "k=8")
                    for scheme in ("tpi", "hw")]
        assert [(p.labels, p.scheme) for p in points] == expected

    def test_jobs_none_means_all_cores(self):
        telemetry = Telemetry()
        points = line_k_sweep(schemes=("tpi",)).run(jobs=None,
                                                    telemetry=telemetry)
        assert telemetry.n_workers == effective_jobs(None)
        assert [snapshot(p.result) for p in points] == \
               [snapshot(p.result) for p in line_k_sweep(schemes=("tpi",)).run()]
