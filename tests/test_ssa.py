"""Tests for the GSA-lite scalar analysis."""

from repro.compiler.ranges import RangeEnv
from repro.compiler.ssa import ScalarEnv
from repro.ir.expr import Affine, sym
from repro.ir.program import ScalarAssign


def assign(env, ranges, name, expr):
    env.assign(ScalarAssign(name, Affine.of(expr)), ranges)


class TestStraightLine:
    def test_copy_propagation(self):
        env, ranges = ScalarEnv(), RangeEnv({"N": (8, 8)})
        assign(env, ranges, "a", sym("N") * 2)
        assign(env, ranges, "b", sym("a") + 1)
        resolved = env.resolve(sym("b"))
        assert resolved == sym("N") * 2 + 1
        assert ranges.lookup("b") == (17, 17)

    def test_reassignment_overwrites(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "a", 1)
        assign(env, ranges, "a", 5)
        assert env.resolve(sym("a")).const == 5

    def test_self_reference_with_known_value_stays_exact(self):
        # Straight-line a := a + 1 with a exactly known is just a + 1.
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "a", 3)
        assign(env, ranges, "a", sym("a") + 1)
        assert "a" not in env.weak
        assert env.resolve(sym("a")).const == 4
        assert ranges.lookup("a") == (4, 4)

    def test_self_reference_of_weak_value_stays_weak(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "a", 0)
        env.weaken_loop_body((ScalarAssign("a", sym("a") + 1),),
                             trip_bound=4, ranges=ranges)
        assign(env, ranges, "a", sym("a") + 2)  # a still unknown exactly
        assert "a" in env.weak
        assert ranges.lookup("a") == (2, 5)  # (0..3) + 2

    def test_resolve_leaves_weak_symbolic(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "a", 0)
        env.weaken_loop_body((ScalarAssign("a", sym("a") + 1),),
                             trip_bound=4, ranges=ranges)
        assert env.resolve(sym("a") + 2).symbols == {"a"}


class TestLoopWeakening:
    def test_induction_gets_tight_interval(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "s", 10)
        body = (ScalarAssign("s", sym("s") + 3),)
        env.weaken_loop_body(body, trip_bound=5, ranges=ranges)
        assert "s" in env.weak
        assert ranges.lookup("s") == (10, 10 + 3 * 4)

    def test_negative_increment(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "s", 10)
        body = (ScalarAssign("s", sym("s") - 2),)
        env.weaken_loop_body(body, trip_bound=4, ranges=ranges)
        assert ranges.lookup("s") == (10 - 6, 10)

    def test_non_induction_unbounded(self):
        env, ranges = ScalarEnv(), RangeEnv({"i": (0, 7)})
        assign(env, ranges, "s", 0)
        body = (ScalarAssign("s", sym("s") + sym("i")),)  # non-constant step
        env.weaken_loop_body(body, trip_bound=8, ranges=ranges)
        assert ranges.lookup("s") == (None, None)

    def test_unknown_trip_count_unbounded(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "s", 0)
        body = (ScalarAssign("s", sym("s") + 1),)
        env.weaken_loop_body(body, trip_bound=None, ranges=ranges)
        assert ranges.lookup("s") == (None, None)

    def test_multiple_increments_sum(self):
        env, ranges = ScalarEnv(), RangeEnv({})
        assign(env, ranges, "s", 0)
        body = (ScalarAssign("s", sym("s") + 1), ScalarAssign("s", sym("s") + 2))
        env.weaken_loop_body(body, trip_bound=3, ranges=ranges)
        assert ranges.lookup("s") == (0, 6)


class TestBranchMerge:
    def test_equal_branches_stay_exact(self):
        base, ranges = ScalarEnv(), RangeEnv({})
        t_ranges, e_ranges = ranges.child(), ranges.child()
        t_env, e_env = base.copy(), base.copy()
        t_env.assign(ScalarAssign("x", Affine.of(4)), t_ranges)
        e_env.assign(ScalarAssign("x", Affine.of(4)), e_ranges)
        base.merge_branches(t_env, e_env, t_ranges, e_ranges, ranges)
        assert base.resolve(sym("x")).const == 4
        assert "x" not in base.weak

    def test_diverging_branches_weaken_to_union(self):
        base, ranges = ScalarEnv(), RangeEnv({})
        t_ranges, e_ranges = ranges.child(), ranges.child()
        t_env, e_env = base.copy(), base.copy()
        t_env.assign(ScalarAssign("x", Affine.of(1)), t_ranges)
        e_env.assign(ScalarAssign("x", Affine.of(9)), e_ranges)
        base.merge_branches(t_env, e_env, t_ranges, e_ranges, ranges)
        assert "x" in base.weak
        assert ranges.lookup("x") == (1, 9)

    def test_one_sided_assignment_weakens(self):
        base, ranges = ScalarEnv(), RangeEnv({})
        base.assign(ScalarAssign("x", Affine.of(2)), ranges)
        t_ranges, e_ranges = ranges.child(), ranges.child()
        t_env, e_env = base.copy(), base.copy()
        t_env.assign(ScalarAssign("x", Affine.of(7)), t_ranges)
        base.merge_branches(t_env, e_env, t_ranges, e_ranges, ranges)
        assert "x" in base.weak
        assert ranges.lookup("x") == (2, 7)
