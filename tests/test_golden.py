"""Golden regression pins: exact results for fixed configurations.

The whole stack is deterministic (no randomness, no wall-clock), so these
exact numbers must reproduce bit-for-bit on every platform.  If an
intentional model change shifts them, regenerate with::

    python tests/test_golden.py   # prints the new table to paste in

and record the reason in the commit message — these pins exist to make
*unintentional* behaviour drift loud.
"""

import pytest

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.workloads import build_workload

MACHINE = default_machine().with_(n_procs=4)

# (workload, scheme) -> (exec_cycles, read_misses, total_traffic_words)
GOLDEN = {
    ("ocean", "base"): (83865, 2360, 7876),
    ("ocean", "hw"): (8124, 92, 2331),
    ("ocean", "sc"): (84165, 2360, 8891),
    ("ocean", "tpi"): (14149, 241, 5276),
    ("qcd2", "hw"): (9397, 84, 1627),
    ("qcd2", "tpi"): (18823, 204, 3553),
    ("trfd", "hw"): (10860, 153, 2078),
    ("trfd", "tpi"): (12815, 205, 2626),
}


def _measure(workload, scheme):
    run = prepare(build_workload(workload, size="small"), MACHINE)
    r = simulate(run, scheme)
    return (r.exec_cycles, r.read_misses, r.total_traffic)


@pytest.mark.parametrize("workload,scheme", sorted(GOLDEN))
def test_golden(workload, scheme):
    assert _measure(workload, scheme) == GOLDEN[(workload, scheme)], (
        "deterministic result drifted; if the model change is intentional, "
        "regenerate the pins with `python tests/test_golden.py`")


if __name__ == "__main__":
    print("GOLDEN = {")
    for workload, scheme in sorted(GOLDEN):
        values = _measure(workload, scheme)
        print(f'    ("{workload}", "{scheme}"): {values},')
    print("}")
