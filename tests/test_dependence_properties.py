"""Property tests: the dependence relation vs brute-force enumeration.

For random affine subscript pairs over small index ranges, enumerate every
(iteration, iteration) pair and compare ground truth against
``doall_relation``'s verdict: DISJOINT must mean no conflict exists at all,
and SAME_ITER_ONLY must mean no *cross-iteration* conflict exists.
MAY_CONFLICT is always allowed (the test is conservative by design).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.dependence import Relation, doall_relation
from repro.compiler.ranges import RangeEnv
from repro.ir.expr import Affine, sym

I_RANGE = (0, 5)
J_RANGE = (0, 3)


@st.composite
def affine_subscripts(draw):
    """c_i * i + c_j * j + c, with j an (epoch-private) inner index."""
    return (sym("i") * draw(st.integers(-2, 2))
            + sym("j") * draw(st.integers(-1, 1))
            + draw(st.integers(-3, 8)))


def enumerate_conflicts(w_subs, r_subs):
    """Ground truth: (same-iteration hits, cross-iteration hits)."""
    same = cross = 0
    i_vals = range(I_RANGE[0], I_RANGE[1] + 1)
    j_vals = range(J_RANGE[0], J_RANGE[1] + 1)
    for i1, j1, i2, j2 in itertools.product(i_vals, j_vals, i_vals, j_vals):
        w = tuple(s.evaluate({"i": i1, "j": j1}) for s in w_subs)
        r = tuple(s.evaluate({"i": i2, "j": j2}) for s in r_subs)
        if w == r:
            if i1 == i2:
                same += 1
            else:
                cross += 1
    return same, cross


ENV = RangeEnv({"i": I_RANGE, "j": J_RANGE})


class TestRelationSoundness:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(affine_subscripts(), min_size=1, max_size=2),
           st.lists(affine_subscripts(), min_size=1, max_size=2))
    def test_verdicts_never_unsound(self, w_subs, r_subs):
        dims = min(len(w_subs), len(r_subs))
        w = tuple(w_subs[:dims])
        r = tuple(r_subs[:dims])
        rel = doall_relation(w, r, "i", {"j"}, ENV)
        same, cross = enumerate_conflicts(w, r)
        if rel is Relation.DISJOINT:
            assert same == 0 and cross == 0, (
                f"DISJOINT but conflicts exist: {w} vs {r}")
        elif rel is Relation.SAME_ITER_ONLY:
            assert cross == 0, (
                f"SAME_ITER_ONLY but cross-iteration conflict: {w} vs {r}")
        # MAY_CONFLICT: conservatively fine either way.

    @settings(max_examples=100, deadline=None)
    @given(affine_subscripts())
    def test_identical_subscripts_never_disjoint_with_themselves(self, sub):
        rel = doall_relation((sub,), (sub,), "i", {"j"}, ENV)
        same, cross = enumerate_conflicts((sub,), (sub,))
        assert same > 0  # w(i,j) == r(i,j) trivially
        if rel is Relation.SAME_ITER_ONLY:
            assert cross == 0
        assert rel is not Relation.DISJOINT
