"""Unit and property tests for affine expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ValidationError
from repro.ir.expr import Affine, Cond, sym

SYMS = st.sampled_from(["i", "j", "k", "N"])


@st.composite
def affines(draw):
    const = draw(st.integers(-50, 50))
    n = draw(st.integers(0, 3))
    expr = Affine(const)
    for _ in range(n):
        expr = expr + Affine.var(draw(SYMS), draw(st.integers(-5, 5)))
    return expr


@st.composite
def envs(draw):
    return {s: draw(st.integers(-20, 20)) for s in ["i", "j", "k", "N"]}


class TestAffineBasics:
    def test_constant(self):
        assert Affine.of(5).evaluate({}) == 5
        assert Affine.of(5).is_constant

    def test_var_and_arithmetic(self):
        e = sym("i") * 2 + 3 - sym("j")
        assert e.evaluate({"i": 4, "j": 1}) == 10
        assert e.coeff("i") == 2 and e.coeff("j") == -1 and e.const == 3

    def test_zero_coefficients_vanish(self):
        e = sym("i") - sym("i")
        assert e.is_constant and e.const == 0

    def test_substitute(self):
        e = sym("i") + sym("j") * 2
        out = e.substitute({"i": sym("k") + 1})
        assert out.evaluate({"k": 2, "j": 3}) == 9

    def test_unbound_symbol_raises(self):
        with pytest.raises(ValidationError):
            sym("i").evaluate({})

    def test_multiply_non_constant_rejected(self):
        with pytest.raises(ValidationError):
            sym("i") * sym("j")

    def test_multiply_by_constant_affine_allowed(self):
        assert (sym("i") * Affine.of(3)).coeff("i") == 3

    def test_coerce_rejects_non_ints(self):
        with pytest.raises(ValidationError):
            Affine.of(1.5)
        with pytest.raises(ValidationError):
            Affine.of(True)

    def test_str_roundtrips_sanely(self):
        assert str(Affine.of(0)) == "0"
        assert "i" in str(sym("i"))

    def test_hashable_and_equal(self):
        assert sym("i") + 1 == 1 + sym("i")
        assert hash(sym("i") + 1) == hash(1 + sym("i"))


class TestAffineProperties:
    @given(affines(), affines(), envs())
    def test_addition_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines(), st.integers(-10, 10), envs())
    def test_scaling_homomorphic(self, a, k, env):
        assert (a * k).evaluate(env) == k * a.evaluate(env)

    @given(affines(), envs())
    def test_negation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)

    @given(affines(), affines(), envs())
    def test_substitute_then_evaluate(self, a, b, env):
        sub = a.substitute({"i": b})
        env_i = dict(env)
        env_i["i"] = b.evaluate(env)
        assert sub.evaluate(env) == a.evaluate(env_i)


class TestCond:
    @pytest.mark.parametrize("op,expected", [
        ("<", True), ("<=", True), (">", False), (">=", False),
        ("==", False), ("!=", True),
    ])
    def test_ops(self, op, expected):
        cond = Cond(sym("i"), op, Affine.of(5))
        assert cond.evaluate({"i": 3}) is expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValidationError):
            Cond(sym("i"), "<>", Affine.of(0))

    def test_symbols(self):
        assert Cond(sym("i"), "<", sym("N")).symbols == {"i", "N"}
