"""Tests for per-epoch profiling (MachineConfig.record_epochs)."""

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.workloads import build_workload


def run_with_records(scheme="tpi"):
    machine = default_machine().with_(n_procs=4, record_epochs=True)
    run = prepare(build_workload("ocean", size="small"), machine)
    return simulate(run, scheme), run


class TestEpochRecords:
    def test_disabled_by_default(self):
        machine = default_machine().with_(n_procs=4)
        run = prepare(build_workload("ocean", size="small"), machine)
        assert simulate(run, "tpi").epoch_records == []

    def test_one_record_per_epoch(self):
        result, run = run_with_records()
        assert len(result.epoch_records) == run.trace.n_epochs
        assert [r.index for r in result.epoch_records] == list(
            range(run.trace.n_epochs))

    def test_records_partition_totals(self):
        result, _ = run_with_records()
        assert sum(r.reads for r in result.epoch_records) == result.reads
        assert (sum(r.read_misses for r in result.epoch_records)
                == result.read_misses)
        assert sum(r.cycles for r in result.epoch_records) == result.exec_cycles

    def test_per_epoch_miss_rate(self):
        result, _ = run_with_records()
        for record in result.epoch_records:
            assert 0.0 <= record.miss_rate <= 1.0
            if record.reads == 0:
                assert record.miss_rate == 0.0

    def test_labels_match_phases(self):
        result, _ = run_with_records()
        labels = {r.label for r in result.epoch_records if r.parallel}
        assert "vort" in labels and "leap" in labels
