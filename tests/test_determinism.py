"""Determinism and provenance of simulation artifacts.

A :class:`repro.runtime.Job` fingerprint names a *result*, not a way of
computing it: the engine choice (fast/reference), the worker count, and
how many times the simulation has already run must all be invisible in
the canonical JSON rendering.  These tests pin that contract — it is
what lets the artifact cache share entries between engines.
"""

import json

from repro.common.config import default_machine
from repro.runtime import Job, ParallelExecutor, jobs_for_schemes
from repro.sim import prepare, simulate, simulate_all
from repro.workloads import build_workload


def machine(engine="auto"):
    return default_machine().with_(n_procs=4, engine=engine)


def canonical(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestFingerprints:
    def test_engine_choice_does_not_change_fingerprint(self):
        program = build_workload("ocean", size="small")
        fast = Job(program=program, scheme="tpi", machine=machine("fast"))
        gang = Job(program=program, scheme="tpi", machine=machine("gang"))
        ref = Job(program=program, scheme="tpi", machine=machine("reference"))
        assert fast.fingerprint() == gang.fingerprint() == ref.fingerprint()
        assert (fast.prepare_fingerprint() == gang.prepare_fingerprint()
                == ref.prepare_fingerprint())

    def test_scheme_and_machine_do_change_fingerprint(self):
        program = build_workload("ocean", size="small")
        a = Job(program=program, scheme="tpi", machine=machine())
        b = Job(program=program, scheme="hw", machine=machine())
        c = Job(program=program, scheme="tpi",
                machine=machine().with_(n_procs=8))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


class TestByteIdenticalResults:
    def test_engines_render_identically(self):
        program = build_workload("trfd", size="small")
        renders = set()
        for engine in ("fast", "gang", "reference"):
            run = prepare(program, machine(engine))
            renders.add(canonical(simulate(run, "tpi")))
        assert len(renders) == 1

    def test_repeated_runs_render_identically(self):
        run = prepare(build_workload("ocean", size="small"), machine("fast"))
        first = canonical(simulate(run, "hw"))
        for _ in range(2):
            assert canonical(simulate(run, "hw")) == first

    def test_jobs_1_vs_jobs_n_render_identically(self):
        program = build_workload("ocean", size="small")
        schemes = ("base", "tpi", "hw")
        serial = simulate_all(program, schemes, machine(), jobs=1)
        job_list = jobs_for_schemes(program, schemes, machine())
        parallel = ParallelExecutor(jobs=2).run(job_list)
        for job, result in zip(job_list, parallel):
            assert canonical(result) == canonical(serial[job.scheme])

    def test_provenance_field_not_rendered(self):
        run = prepare(build_workload("ocean", size="small"), machine("fast"))
        result = simulate(run, "base")
        assert result.engine == "fast"
        assert "engine" not in result.to_dict()
