"""Tests for the CLI and the pretty-printer."""

import json

import pytest

from repro.cli import main
from repro.compiler import mark_program
from repro.ir import ProgramBuilder
from repro.ir.pprint import format_program


class TestPrettyPrinter:
    def build(self):
        b = ProgramBuilder("pp", params={"T": 2})
        b.array("A", (8,))
        b.array("t", (4,), private=True)
        refs = {}
        with b.procedure("main"):
            with b.serial("s", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    refs["r"] = b.at("A", i)
                    b.stmt(writes=[b.at("A", i)], reads=[refs["r"]], work=1)
                with b.when(b.v("s"), "==", 0):
                    b.stmt(writes=[b.at("t", 0)])
                with b.critical("L"):
                    b.stmt(reads=[b.at("A", 0)])
        return b.build(), refs

    def test_structure_rendered(self):
        program, _ = self.build()
        text = format_program(program)
        assert "PROGRAM pp" in text
        assert "DOALL i = 0, 7" in text
        assert "DO s = 0, -1 + T" in text
        assert "IF (s == 0) THEN" in text
        assert "CRITICAL (L)" in text
        assert "! private" in text

    def test_marking_annotations(self):
        program, refs = self.build()
        marking = mark_program(program)
        text = format_program(program, marking)
        assert "TIME-READ" in text

    def test_no_annotations_without_marking(self):
        program, _ = self.build()
        assert "TIME-READ" not in format_program(program)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "tpi" in out and "ocean" in out and "fig11_miss_rates" in out

    def test_show(self, capsys):
        assert main(["show", "trfd", "--size", "small"]) == 0
        out = capsys.readouterr().out
        assert "PROGRAM trfd" in out
        assert "TIME-READ" in out

    def test_show_no_marking(self, capsys):
        assert main(["show", "trfd", "--size", "small", "--no-marking"]) == 0
        assert "TIME-READ" not in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "ocean", "--size", "small", "--procs", "4",
                     "--scheme", "tpi", "--scheme", "hw"]) == 0
        out = capsys.readouterr().out
        assert "ocean / tpi" in out and "ocean / hw" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "fig5_storage"]) == 0
        assert "two-phase invalidation" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["show", "linpack"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCliSweep:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "ocean", "--axis", "line=1,4",
                     "--scheme", "tpi", "--size", "small"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert "cycles" in lines[0]
        assert len(lines) == 3  # header + 2 grid cells

    def test_sweep_unknown_axis_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "ocean", "--axis", "voltage=1,2"])

    def test_sweep_wbuf_axis(self, capsys):
        assert main(["sweep", "trfd", "--axis", "wbuf",
                     "--scheme", "tpi", "--size", "small"]) == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "coalescing" in out


class TestCliRuntime:
    def test_simulate_json_and_report(self, capsys, tmp_path):
        json_path = tmp_path / "sim.json"
        report_path = tmp_path / "report.json"
        assert main(["simulate", "ocean", "--size", "small", "--procs", "4",
                     "--scheme", "tpi", "--cache-dir", str(tmp_path / "c"),
                     "--json", str(json_path),
                     "--report", str(report_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert payload["tpi"]["scheme"] == "tpi"
        assert payload["tpi"]["exec_cycles"] > 0
        report = json.loads(report_path.read_text())
        assert report["cache"]["result_misses"] == 1

    def test_sweep_json_matches_table(self, capsys, tmp_path):
        json_path = tmp_path / "sweep.json"
        assert main(["sweep", "ocean", "--axis", "line=1,4",
                     "--scheme", "tpi", "--size", "small", "--no-cache",
                     "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        points = payload["points"]
        assert len(points) == 2
        assert {p["labels"]["line"] for p in points} == {"4B", "16B"}
        assert all(p["result"]["scheme"] == "tpi" for p in points)
        # Line size is back-end-only: both cells ganged over one trace.
        assert payload["traces_generated"] == 1
        assert payload["gang"]["traces_shared"] == 1
        from repro.common.config import default_machine
        from repro.sim.engine import resolve_engine
        if resolve_engine(default_machine()) == "reference":
            assert payload["gang"]["width"] == 0  # nothing primes
        else:
            assert payload["gang"]["width"] == 2

    def test_warm_cache_reports_hits_and_no_traces(self, capsys, tmp_path):
        args = ["sweep", "ocean", "--axis", "line=1,4", "--scheme", "tpi",
                "--size", "small", "--jobs", "2",
                "--cache-dir", str(tmp_path / "c")]
        assert main([*args, "--report", str(tmp_path / "cold.json")]) == 0
        assert main([*args, "--report", str(tmp_path / "warm.json")]) == 0
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert cold["traces_generated"] > 0
        assert warm["traces_generated"] == 0
        assert warm["cache"]["result_hits"] >= 1
        capsys.readouterr()

    def test_serial_and_parallel_cli_output_identical(self, capsys, tmp_path):
        base = ["sweep", "trfd", "--axis", "k=2,8", "--scheme", "tpi",
                "--size", "small", "--no-cache"]
        assert main([*base, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*base, "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_experiment_runtime_flags(self, capsys, tmp_path):
        assert main(["experiment", "fig11_miss_rates", "--size", "small",
                     "--cache-dir", str(tmp_path / "c"),
                     "--report", str(tmp_path / "r.json")]) == 0
        assert "fig11_miss_rates" in capsys.readouterr().out
        assert json.loads((tmp_path / "r.json").read_text())[
            "traces_generated"] > 0

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "c")
        assert main(["simulate", "trfd", "--size", "small", "--procs", "4",
                     "--scheme", "tpi", "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "prepared" in out and "result" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        assert "removed" in capsys.readouterr().out
