"""Tests for the call graph and interprocedural MOD/USE summaries."""

import pytest

from repro.common.errors import CompilationError
from repro.compiler.callgraph import bottom_up_order, call_edges, callers_of
from repro.compiler.interproc import procedure_summaries
from repro.ir import ProgramBuilder


def layered_program():
    b = ProgramBuilder("layered", params={"N": 8})
    b.array("A", (8,))
    b.array("B", (8,))
    b.array("scratch", (8,), private=True)
    with b.procedure("leaf"):
        with b.serial("i", 0, 3) as i:
            b.stmt(writes=[b.at("A", i)], reads=[b.at("B", i)])
    with b.procedure("mid"):
        b.call("leaf")
        b.stmt(writes=[b.at("B", 7)])
        b.stmt(writes=[b.at("scratch", 0)])
    with b.procedure("main"):
        b.call("mid")
        b.call("leaf")
    return b.build()


class TestCallGraph:
    def test_edges(self):
        edges = call_edges(layered_program())
        assert edges["main"] == {"mid", "leaf"}
        assert edges["mid"] == {"leaf"}
        assert edges["leaf"] == set()

    def test_bottom_up_order(self):
        order = bottom_up_order(layered_program())
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_callers(self):
        callers = callers_of(layered_program())
        assert callers["leaf"] == {"mid", "main"}
        assert callers["main"] == set()


class TestSummaries:
    def test_leaf_summary(self):
        summaries = procedure_summaries(layered_program())
        leaf = summaries["leaf"]
        mod = leaf.mod["A"].union_all()
        assert mod.dims[0].lo == 0 and mod.dims[0].hi == 3
        use = leaf.use["B"].union_all()
        assert use.dims[0].hi == 3

    def test_transitive_closure(self):
        summaries = procedure_summaries(layered_program())
        main = summaries["main"]
        assert "A" in main.mod  # through mid -> leaf
        assert "B" in main.mod  # mid's own write
        assert main.mod["B"].overlaps(
            summaries["mid"].mod["B"].union_all())

    def test_private_arrays_excluded(self):
        summaries = procedure_summaries(layered_program())
        assert "scratch" not in summaries["mid"].mod

    def test_summary_merge(self):
        summaries = procedure_summaries(layered_program())
        a = summaries["leaf"]
        before = len(a.mod["A"].sections)
        a.merge(summaries["mid"])
        assert "B" in a.mod
        assert len(a.mod["A"].sections) >= before
