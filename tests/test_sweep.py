"""Tests for the parameter-sweep utility."""

import pytest

from repro.common.config import default_machine
from repro.ir import ProgramBuilder
from repro.sim.sweep import (
    Sweep,
    axis_cache_lines,
    axis_cache_sizes,
    axis_procs,
    axis_timetag_bits,
    axis_write_buffer,
)


def tiny_program():
    b = ProgramBuilder("tiny", params={"T": 2})
    b.array("A", (32,))
    with b.procedure("main"):
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 0, 31) as i:
                b.stmt(writes=[b.at("A", i)], work=1)
            with b.doall("j", 0, 31) as j:
                b.stmt(reads=[b.at("A", j)], work=1)
    return b.build()


BASE = default_machine().with_(n_procs=2, epoch_setup_cycles=5,
                               task_dispatch_cycles=1)


class TestSweep:
    def test_grid_size(self):
        sweep = Sweep(tiny_program(), schemes=("tpi",), base=BASE)
        sweep.add_axis("line", axis_cache_lines([1, 4]))
        sweep.add_axis("k", axis_timetag_bits([2, 8]))
        points = sweep.run()
        assert len(points) == 4
        labels = {(p.labels["line"], p.labels["k"]) for p in points}
        assert labels == {("4B", "k=2"), ("4B", "k=8"),
                          ("16B", "k=2"), ("16B", "k=8")}

    def test_multiple_schemes(self):
        sweep = Sweep(tiny_program(), schemes=("tpi", "hw"), base=BASE)
        sweep.add_axis("p", axis_procs([2, 4]))
        points = sweep.run()
        assert len(points) == 4
        assert {p.scheme for p in points} == {"tpi", "hw"}

    def test_axes_compose_transforms(self):
        sweep = Sweep(tiny_program(), schemes=("tpi",), base=BASE)
        sweep.add_axis("size", axis_cache_sizes([16]))
        sweep.add_axis("line", axis_cache_lines([16]))
        (point,) = sweep.run()
        # Both transforms applied: 16 KB with 64-byte lines.
        assert point.result.exec_cycles > 0

    def test_line_size_monotone_on_dense_kernel(self):
        sweep = Sweep(tiny_program(), schemes=("tpi",), base=BASE)
        sweep.add_axis("line", axis_cache_lines([1, 4, 16]))
        points = sweep.run()
        rates = {p.labels["line"]: p.result.miss_rate for p in points}
        assert rates["4B"] >= rates["16B"] >= rates["64B"]

    def test_write_buffer_axis(self):
        sweep = Sweep(tiny_program(), schemes=("tpi",), base=BASE)
        sweep.add_axis("wb", axis_write_buffer())
        points = sweep.run()
        assert {p.labels["wb"] for p in points} == {"fifo", "coalescing"}

    def test_empty_axis_rejected(self):
        sweep = Sweep(tiny_program(), base=BASE)
        with pytest.raises(ValueError):
            sweep.add_axis("nothing", [])

    def test_no_axes_rejected(self):
        with pytest.raises(ValueError):
            Sweep(tiny_program(), base=BASE).run()
