"""Micro-tests of the full-map MSI directory and LimitLess variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence.api import SimContext, make_scheme
from repro.common.config import CacheConfig, DirectoryConfig, MachineConfig
from repro.common.stats import MissKind
from repro.compiler.epochs import EpochGraph
from repro.compiler.marking import Marking
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork


def make_ctx(n_procs=4, words=512, line_words=4, lines=32, pointers=2):
    machine = MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(size_bytes=lines * line_words * 4,
                          line_words=line_words),
        directory=DirectoryConfig(limitless_pointers=pointers),
    )
    return SimContext(machine=machine,
                      marking=Marking(tpi={}, sc={}, graph=EpochGraph()),
                      shadow=ShadowMemory(words),
                      network=KruskalSnirNetwork(machine))


def new_hw(name="hw", **kw):
    ctx = make_ctx(**kw)
    return make_scheme(name, ctx), ctx


class TestMsiBasics:
    def test_cold_read_then_hit(self):
        hw, _ = new_hw()
        r = hw.read(0, 8, 0, True, False)
        assert r.kind is MissKind.COLD
        assert hw.read(0, 8, 0, True, False).kind is MissKind.HIT
        hw.check_invariants()

    def test_two_readers_share(self):
        hw, _ = new_hw()
        hw.read(0, 8, 0, True, False)
        hw.read(1, 8, 0, True, False)
        entry = hw.directory[2]  # line 8//4
        assert entry.state == "S" and entry.sharers == {0, 1}
        hw.check_invariants()

    def test_write_invalidates_readers(self):
        hw, _ = new_hw()
        hw.read(0, 8, 0, True, False)
        hw.read(1, 8, 0, True, False)
        r = hw.write(1, 8, 0, True, False)
        assert r.coherence_words > 0
        entry = hw.directory[2]
        assert entry.state == "E" and entry.owner == 1
        miss = hw.read(0, 8, 0, True, False)
        assert miss.kind is MissKind.TRUE_SHARING
        hw.check_invariants()

    def test_false_sharing_classification(self):
        """Proc 0 uses word 8 only; proc 1 writes word 9 (same line):
        Tullsen-Eggers calls proc 0's next miss on the line false sharing."""
        hw, _ = new_hw()
        hw.read(0, 8, 0, True, False)
        hw.write(1, 9, 0, True, False)
        miss = hw.read(0, 8, 0, True, False)
        assert miss.kind is MissKind.FALSE_SHARING
        hw.check_invariants()

    def test_dirty_remote_read_four_hop(self):
        hw, _ = new_hw()
        hw.write(0, 8, 0, True, False)  # proc 0 owns dirty
        clean_miss = hw.read(1, 40, 0, True, False)
        dirty_miss = hw.read(1, 8, 0, True, False)
        assert dirty_miss.latency > clean_miss.latency
        assert dirty_miss.coherence_words >= 2
        entry = hw.directory[2]
        assert entry.state == "S" and entry.sharers == {0, 1}
        hw.check_invariants()

    def test_write_hit_in_exclusive_is_silent(self):
        hw, _ = new_hw()
        hw.write(0, 8, 0, True, False)
        r = hw.write(0, 8, 0, True, False)
        assert r.total_words == 0 and r.latency == 1
        hw.check_invariants()

    def test_write_miss_steals_exclusive(self):
        hw, _ = new_hw()
        hw.write(0, 8, 0, True, False)
        r = hw.write(1, 8, 0, True, False)
        assert r.coherence_words >= 2
        entry = hw.directory[2]
        assert entry.owner == 1
        assert hw.read(0, 8, 0, True, False).kind is MissKind.TRUE_SHARING
        hw.check_invariants()

    def test_eviction_updates_directory(self):
        hw, ctx = new_hw(lines=4, words=4096)  # tiny cache: 4 sets
        hw.read(0, 0, 0, True, False)
        # Same set, different line: evicts line 0.
        hw.read(0, 4 * 4, 0, True, False)
        entry = hw.directory[0]
        assert 0 not in entry.sharers
        hw.check_invariants()

    def test_dirty_eviction_writes_back(self):
        hw, _ = new_hw(lines=4, words=4096)
        hw.write(0, 0, 0, True, False)
        r = hw.read(0, 16, 0, True, False)  # conflicting line
        assert r.write_words >= 5  # write-back of the dirty line
        hw.check_invariants()

    def test_private_data_skips_directory(self):
        hw, _ = new_hw()
        hw.write(0, 8, 0, shared=False, in_critical=False)
        assert 2 not in hw.directory
        hw.check_invariants()

    def test_replacement_miss_classified(self):
        hw, _ = new_hw(lines=4, words=4096)
        hw.read(0, 0, 0, True, False)
        hw.read(0, 16, 0, True, False)  # evicts line 0
        r = hw.read(0, 0, 0, True, False)
        assert r.kind is MissKind.REPLACEMENT


class TestLimitLess:
    def test_overflow_traps_beyond_pointers(self):
        ll, ctx = new_hw("limitless", n_procs=4, pointers=2)
        for proc in range(4):
            ll.read(proc, 8, 0, True, False)
        r = ll.write(0, 8, 0, True, False)  # 3 invalidations > 2 pointers
        assert ll.software_traps == 1
        assert r.latency > 1

    def test_no_trap_within_pointers(self):
        ll, _ = new_hw("limitless", n_procs=4, pointers=8)
        for proc in range(3):
            ll.read(proc, 8, 0, True, False)
        ll.write(0, 8, 0, True, False)
        assert ll.software_traps == 0


class TestDirectoryProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),  # proc
                              st.integers(0, 63),  # word addr
                              st.booleans()),  # is_write
                    min_size=1, max_size=120))
    def test_invariants_hold_under_random_streams(self, ops):
        hw, _ = new_hw(n_procs=4, words=64, lines=4)
        for proc, addr, is_write in ops:
            if is_write:
                hw.write(proc, addr, 0, True, False)
            else:
                hw.read(proc, addr, 0, True, False)
        hw.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 63),
                              st.booleans()),
                    min_size=1, max_size=100))
    def test_reads_always_observe_current_version(self, ops):
        """MSI guarantee: every read returns the latest written version.
        The scheme's internal exact-version oracle raises on violation."""
        hw, ctx = new_hw(n_procs=4, words=64, lines=4)
        assert ctx.machine.check_coherence
        for proc, addr, is_write in ops:
            if is_write:
                hw.write(proc, addr, 0, True, False)
            else:
                hw.read(proc, addr, 0, True, False)
