"""Validator edge cases expressed as diagnostics (collect-all mode)."""

import pytest

from repro.common.errors import ValidationError
from repro.ir import Affine, ProgramBuilder, sym
from repro.ir.program import ArrayRef, Procedure, Statement
from repro.ir.validate import program_diagnostics, validate_program


def rules_of(program):
    return [d.rule_id for d in program_diagnostics(program)]


class TestCollectAll:
    def test_valid_program_has_no_diagnostics(self):
        b = ProgramBuilder("ok")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
        assert program_diagnostics(b.build()) == []

    def test_multiple_problems_all_reported(self):
        b = ProgramBuilder("multi")
        b.array("A", (4, 4))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])  # rank mismatch
            b.stmt(reads=[b.at("A", sym("q"), 0)])  # unbound symbol
            b.call("ghost")  # undefined callee
        program = b.build(validate=False)
        rules = rules_of(program)
        assert "VAL005" in rules and "VAL008" in rules and "VAL002" in rules
        assert len(rules) >= 3

    def test_first_diagnostic_is_raised(self):
        b = ProgramBuilder("raise")
        b.array("A", (4, 4))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])
        program = b.build(validate=False)
        first = program_diagnostics(program)[0]
        with pytest.raises(ValidationError) as err:
            validate_program(program)
        assert str(err.value) == first.message


class TestEdgeCases:
    def test_missing_entry(self):
        b = ProgramBuilder("noentry")
        with b.procedure("other"):
            pass
        program = b.build(entry="main", validate=False)
        assert "VAL001" in rules_of(program)

    def test_doall_inside_critical_section(self):
        b = ProgramBuilder("cs_doall")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.critical("L"):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
        program = b.build(validate=False)
        [diag] = [d for d in program_diagnostics(program)
                  if d.rule_id == "VAL010"]
        assert diag.procedure == "main"
        assert "critical" in diag.message

    def test_doall_through_call_inside_critical(self):
        b = ProgramBuilder("cs_call")
        b.array("A", (8,))
        with b.procedure("kernel"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
        with b.procedure("main"):
            with b.critical("L"):
                b.call("kernel")
        program = b.build(validate=False)
        assert "VAL010" in rules_of(program)

    def test_nested_doall_direct_and_through_call(self):
        b = ProgramBuilder("nest")
        b.array("A", (8, 8))
        with b.procedure("kernel"):
            with b.doall("k", 0, 7) as k:
                b.stmt(writes=[b.at("A", k, 0)])
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                with b.doall("j", 0, 7) as j:
                    b.stmt(writes=[b.at("A", i, j)])
                b.call("kernel")
        program = b.build(validate=False)
        assert rules_of(program).count("VAL009") == 2

    def test_shadowed_loop_index(self):
        b = ProgramBuilder("shadow", params={"N": 4})
        b.array("A", (4,))
        with b.procedure("main"):
            with b.serial("N", 0, 3) as n:
                b.stmt(reads=[b.at("A", n)])
            with b.serial("i", 0, 3):
                with b.serial("i", 0, 3) as i:
                    b.stmt(reads=[b.at("A", i)])
        program = b.build(validate=False)
        assert rules_of(program).count("VAL011") == 2

    def test_duplicate_site_ids(self):
        b = ProgramBuilder("dup")
        b.array("A", (4,))
        with b.procedure("main"):
            ref = b.at("A", 0)
            b.stmt(reads=[ref])
            b.stmt(reads=[ref])  # shared ArrayRef: site id reused
        program = b.build(validate=False)
        [diag] = [d for d in program_diagnostics(program)
                  if d.rule_id == "VAL007"]
        assert diag.site == 0
        assert "reused" in diag.message

    def test_site_id_missing(self):
        b = ProgramBuilder("nosite")
        b.array("A", (4,))
        program = b.build(entry="main", validate=False)
        # A hand-made ArrayRef (site -1) bypassing the builder.
        program.procedures["main"] = Procedure("main", (
            Statement(reads=(ArrayRef("A", (Affine.of(0),)),), writes=(),
                      work=1),))
        [diag] = [d for d in program_diagnostics(program)
                  if d.rule_id == "VAL006"]
        assert diag.procedure == "main"
        assert "ProgramBuilder" in diag.message

    def test_undeclared_array(self):
        b = ProgramBuilder("undecl")
        b.array("A", (4,))
        program = b.build(entry="main", validate=False)
        program.procedures["main"] = Procedure("main", (
            Statement(reads=(ArrayRef("ghost", (Affine.of(0),), 0),),
                      writes=(), work=1),))
        [diag] = [d for d in program_diagnostics(program)
                  if d.rule_id == "VAL004"]
        assert diag.site == 0 and "'ghost'" in diag.message

    def test_recursion_reported_with_chain(self):
        b = ProgramBuilder("rec")
        with b.procedure("main"):
            b.call("helper")
        with b.procedure("helper"):
            b.call("main")
        program = b.build(validate=False)
        [diag] = [d for d in program_diagnostics(program)
                  if d.rule_id == "VAL003"]
        assert "main" in diag.message and "helper" in diag.message

    def test_undefined_callee_reported_once_with_caller(self):
        b = ProgramBuilder("undef")
        with b.procedure("main"):
            b.call("ghost")
            b.call("ghost")
        program = b.build(validate=False)
        diags = [d for d in program_diagnostics(program)
                 if d.rule_id == "VAL002"]
        assert len(diags) == 1
        assert "'main'" in diags[0].message

    def test_messages_carry_procedure_and_site(self):
        b = ProgramBuilder("loc")
        b.array("A", (4, 4))
        with b.procedure("kernel"):
            b.stmt(reads=[b.at("A", 1)])
        with b.procedure("main"):
            b.call("kernel")
        program = b.build(validate=False)
        [diag] = program_diagnostics(program)
        assert diag.rule_id == "VAL005"
        assert diag.procedure == "kernel"
        assert diag.site == 0
        assert "'kernel'" in diag.message and "site 0" in diag.message
