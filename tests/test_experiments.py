"""Tests for the experiment harness (structure + fast experiments).

The heavyweight shape assertions live in benchmarks/; here we verify the
harness machinery itself and the cheap analytic experiments.
"""

import pytest

from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.common import Bench, ExperimentResult


class TestHarness:
    def test_registry_covers_design_doc(self):
        expected = {
            "fig5_storage", "fig8_params", "tab_marking", "fig11_miss_rates",
            "fig12_classification", "fig13_traffic", "tab_latency",
            "fig14_exectime", "fig15_timetag", "fig16_linesize",
            "fig17_wbuffer", "fig18_migration", "fig19_consistency",
            "fig20_update", "fig21_cache", "fig22_breakdown",
            "fig23_scaling", "fig23_scaling_x", "fig24_timeline",
            "fig25_taggranularity",
            "cmp_coherence",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99_nothing")

    def test_result_accessors(self):
        result = ExperimentResult("x", "t", headers=["a", "b"],
                                  rows=[["k1", 1], ["k2", 2]])
        assert result.column("b") == [1, 2]
        assert result.cell("k2", "b") == 2
        with pytest.raises(KeyError):
            result.cell("k3", "b")
        rendered = result.render()
        assert "k1" in rendered and "== x" in rendered

    def test_bench_caches_prepared_runs(self):
        bench = Bench(size="small", workloads=["ocean"])
        first = bench.prepared("ocean")
        assert bench.prepared("ocean") is first
        r1 = bench.result("ocean", "tpi")
        assert bench.result("ocean", "tpi") is r1


class TestFastExperiments:
    def test_fig5(self):
        result = run_experiment("fig5_storage")
        assert len(result.rows) == 5  # paper's 3 + limited-pointer + Tardis
        assert result.cell("two-phase invalidation", "memory DRAM (GB)") == 0.0
        # The simulated-scheme rows sit between TPI and full-map.
        full = result.cell("full-map", "memory DRAM (GB)")
        for scheme in ("limited-pointer Dir_10B", "Tardis"):
            assert 0.0 < result.cell(scheme, "memory DRAM (GB)") < full

    def test_fig8(self):
        result = run_experiment("fig8_params")
        assert dict(result.rows)["number of processors"] == "16"

    def test_tab_marking_small(self):
        result = run_experiment("tab_marking", size="small")
        assert len(result.rows) == 6
        for row in result.rows:
            assert 0 < row[2] <= 100.0  # inline fraction sane

    def test_fig11_small_shapes(self):
        result = run_experiment("fig11_miss_rates", size="small")
        for row in result.rows:
            name, base, sc, tpi, hw = row
            assert base >= sc >= tpi >= 0
            assert hw >= 0

    def test_cmp_coherence_small_shapes(self):
        """The 1996-vs-2015 comparison: the scheme-gang results must
        match solo runs, and the note's shape claims must hold."""
        result = run_experiment("cmp_coherence", size="small")
        bench = Bench(size="small")
        for row in result.rows:
            name = row[0]
            # snoop and the directory decide invalidations identically on
            # this fabric: their miss columns coincide.
            assert result.cell(name, "SNOOP miss") == \
                result.cell(name, "HW miss")
            # Tardis lease expiries cost more misses than TPI's marks.
            assert result.cell(name, "TARDIS miss") >= \
                result.cell(name, "TPI miss")
            # Gang results are byte-identical to a solo simulation.
            solo = bench.result(name, "tardis")
            assert result.cell(name, "TARDIS miss") == \
                pytest.approx(100.0 * solo.miss_rate)


class TestBarCharts:
    def test_render_bars(self):
        result = ExperimentResult("x", "t", headers=["name", "v"],
                                  rows=[["a", 10.0], ["bb", 5.0], ["c", 0.0]])
        chart = result.render_bars("v", width=10)
        lines = chart.splitlines()
        assert lines[0] == "== x: v"
        assert lines[1].endswith("10.000") and "##########" in lines[1]
        assert lines[2].count("#") == 5
        assert lines[3].count("#") == 0

    def test_render_bars_skips_float_label_cells(self):
        result = ExperimentResult("x", "t", headers=["name", "mid", "v"],
                                  rows=[["a", 1.5, 4.0]])
        chart = result.render_bars("v")
        assert chart.splitlines()[1].startswith("a |")

    def test_render_bars_rejects_text_column(self):
        result = ExperimentResult("x", "t", headers=["name", "v"],
                                  rows=[["a", "oops"]])
        with pytest.raises(ValueError):
            result.render_bars("v")

    def test_cli_chart_flag(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig5_storage", "--chart",
                     "cache SRAM (MB)"]) == 0
        out = capsys.readouterr().out
        assert "== fig5_storage: cache SRAM (MB)" in out
        assert "#" in out


class TestFig5Plot:
    def test_plot_writes_svg(self, tmp_path):
        from repro.experiments import fig5_storage
        from repro.overhead.storage import CURVE_SCHEMES

        path = fig5_storage.plot(str(tmp_path / "curve.svg"))
        text = open(path).read()
        assert text.startswith("<svg") or "<svg" in text.splitlines()[0] \
            or "<svg" in text  # matplotlib prepends an XML prolog
        for scheme in CURVE_SCHEMES:
            assert scheme in text

    def test_builtin_emitter_is_valid_xml(self, tmp_path):
        import xml.etree.ElementTree as ET

        from repro.experiments.fig5_storage import _svg_chart
        from repro.overhead.storage import figure5_curve

        root = ET.fromstring(_svg_chart(figure5_curve()))
        assert root.tag.endswith("svg")
        tags = {child.tag.split("}")[-1] for child in root.iter()}
        assert "polyline" in tags and "text" in tags

    def test_cli_plot_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        target = tmp_path / "fig5.svg"
        assert main(["experiment", "fig5_storage", "--no-cache",
                     "--plot", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert target.exists()

    def test_cli_plot_rejects_other_experiments(self, capsys):
        from repro.cli import main

        assert main(["experiment", "fig8_params", "--plot", "x.svg"]) == 2
        assert "fig5_storage" in capsys.readouterr().err
