"""Tests for epoch partitioning and the epoch flow graph."""

import pytest

from repro.compiler.epochs import build_epoch_graph, node_contains_doall, proc_contains_doall
from repro.ir import ProgramBuilder


def doall_between_serials():
    b = ProgramBuilder("p", params={"N": 8})
    b.array("A", (8,))
    with b.procedure("main"):
        b.stmt(writes=[b.at("A", 0)])  # serial epoch 0
        with b.doall("i", 0, 7) as i:  # parallel epoch 1
            b.stmt(writes=[b.at("A", i)])
        b.stmt(reads=[b.at("A", 3)])  # serial epoch 2
    return b.build()


class TestPartitioning:
    def test_serial_doall_serial(self):
        g = build_epoch_graph(doall_between_serials())
        kinds = [e.parallel for e in g.epochs]
        assert kinds == [False, True, False]
        assert g.succ[0] == {1}
        assert g.succ[1] == {2}
        assert g.succ[2] == set()
        assert g.entry == 0

    def test_consecutive_serial_nodes_merge(self):
        b = ProgramBuilder("p")
        b.array("A", (4,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            b.assign("s", 2)
            b.stmt(writes=[b.at("A", 1)])
        g = build_epoch_graph(b.build())
        assert len(g.epochs) == 1
        assert len(g.epochs[0].nodes) == 3

    def test_serial_loop_without_doall_stays_in_epoch(self):
        b = ProgramBuilder("p", params={"N": 4})
        b.array("A", (4,))
        with b.procedure("main"):
            with b.serial("i", 0, 3) as i:
                b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 0)])
        g = build_epoch_graph(b.build())
        assert len(g.epochs) == 1 and not g.epochs[0].parallel

    def test_opened_loop_creates_header_and_backedge(self):
        b = ProgramBuilder("p", params={"T": 3})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
        g = build_epoch_graph(b.build())
        # header (empty serial) + doall epoch
        assert len(g.epochs) == 2
        head, doall = g.epochs
        assert not head.parallel and head.nodes == ()
        assert doall.parallel
        assert g.succ[head.id] == {doall.id}
        assert g.succ[doall.id] == {head.id}  # back edge
        # The doall can precede itself via the cycle.
        assert g.reach(doall.id, doall.id)
        assert g.reach(head.id, head.id)

    def test_outer_loop_context_recorded(self):
        b = ProgramBuilder("p", params={"T": 3})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
        g = build_epoch_graph(b.build())
        doall = g.parallel_epochs[0]
        assert [ctx.index for ctx in doall.outer] == ["t"]
        assert doall.ranges.lookup("t") == (0, 2)

    def test_call_with_doall_inlined(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("kernel"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i)])
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])
            b.call("kernel")
            b.call("kernel")
        g = build_epoch_graph(b.build())
        assert len(g.parallel_epochs) == 2  # one per call site
        assert g.reach(g.parallel_epochs[0].id, g.parallel_epochs[1].id)
        assert not g.reach(g.parallel_epochs[1].id, g.parallel_epochs[0].id)

    def test_serial_call_stays_in_epoch(self):
        b = ProgramBuilder("p")
        b.array("A", (8,))
        with b.procedure("helper"):
            b.stmt(writes=[b.at("A", 1)])
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            b.call("helper")
        g = build_epoch_graph(b.build())
        assert len(g.epochs) == 1

    def test_if_with_doall_forks_graph(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.when(b.p("N"), ">", 4):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 2)])
        g = build_epoch_graph(b.build())
        pre, doall, post = g.epochs
        # The else path is empty, so pre connects both into the doall and
        # directly around it.
        assert g.succ[pre.id] == {doall.id, post.id}
        assert g.succ[doall.id] == {post.id}
        assert g.reach(pre.id, post.id)
        assert not g.reach(post.id, doall.id)

    def test_empty_program_gets_one_epoch(self):
        b = ProgramBuilder("p")
        with b.procedure("main"):
            pass
        g = build_epoch_graph(b.build())
        assert len(g.epochs) == 1

    def test_scalar_snapshot_at_epoch_entry(self):
        b = ProgramBuilder("p", params={"N": 8})
        b.array("A", (32,))
        with b.procedure("main"):
            off = b.assign("off", b.p("N") * 2)
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("A", i + off)])
        g = build_epoch_graph(b.build())
        doall = g.parallel_epochs[0]
        # Parameters stay symbolic; the range environment carries the value.
        resolved = doall.scalars.resolve(b.v("off"))
        assert resolved.symbols == {"N"}
        assert doall.ranges.range_of(resolved) == (16, 16)


class TestContainsDoall:
    def test_proc_contains(self):
        b = ProgramBuilder("p")
        b.array("A", (4,))
        with b.procedure("leaf"):
            b.stmt(writes=[b.at("A", 0)])
        with b.procedure("mid"):
            with b.doall("i", 0, 3) as i:
                b.stmt(writes=[b.at("A", i)])
        with b.procedure("main"):
            b.call("leaf")
            b.call("mid")
        p = b.build()
        assert not proc_contains_doall(p, "leaf")
        assert proc_contains_doall(p, "mid")
        assert proc_contains_doall(p, "main")

    def test_node_contains(self):
        b = ProgramBuilder("p", params={"T": 2})
        b.array("A", (4,))
        with b.procedure("main"):
            with b.serial("t", 0, 1):
                with b.doall("i", 0, 3) as i:
                    b.stmt(writes=[b.at("A", i)])
        p = b.build()
        outer = p.procedures["main"].body[0]
        assert node_contains_doall(p, outer)
