"""Unit tests for the staleness oracle and the dynamic sanitizer."""

import pytest

from repro.analysis.lint import diff_marking, lint_program
from repro.analysis.oracle import analyze_staleness, site_table
from repro.analysis.sanitizer import replay_stale_reads, unmarked_stale_sites
from repro.common.config import default_machine
from repro.compiler.marking import (
    InterprocMode,
    Marking,
    MarkingOptions,
    RefMark,
    mark_program,
)
from repro.ir import ProgramBuilder
from repro.trace.generate import generate_trace
from repro.workloads import workload_names


def producer_consumer(n=8):
    """DOALL caches A, the master rewrites it, the DOALL re-reads it."""
    b = ProgramBuilder("prodcons")
    b.array("A", (n,))
    b.array("OUT", (n,))
    with b.procedure("main"):
        with b.doall("i", 0, n - 1, label="warm") as i:
            b.stmt(reads=[b.at("A", i)], writes=[b.at("OUT", i)])
        with b.serial("j", 0, n - 1, label="update") as j:
            b.stmt(writes=[b.at("A", j)])
        with b.doall("k", 0, n - 1, label="reuse") as k:
            b.stmt(reads=[b.at("A", k)], writes=[b.at("OUT", k)])
    return b.build()


def read_sites(program, proc, array):
    """Site ids of the reads of ``array`` in ``proc``, in source order."""
    return sorted(info.site for info in site_table(program).values()
                  if info.procedure == proc and info.is_read
                  and info.text.startswith(array + "["))


def read_site(program, proc, array):
    """The site id of the (sole) read of ``array`` in ``proc``."""
    sites = read_sites(program, proc, array)
    assert len(sites) == 1, sites
    return sites[0]


class TestOracleVerdicts:
    def test_cross_epoch_staleness_is_definite(self):
        program = producer_consumer()
        oracle = analyze_staleness(program)
        reuse = max(s for s, v in oracle.verdicts.items()
                    if v.array == "A" and v.tpi_may)
        verdict = oracle.verdicts[reuse]
        assert verdict.tpi_def and verdict.sc_def
        assert not verdict.strict_may  # writer is in a previous epoch
        assert verdict.where == "reuse"
        assert oracle.fully_enumerated

    def test_first_read_is_fresh(self):
        program = producer_consumer()
        oracle = analyze_staleness(program)
        warm = min(s for s, v in oracle.verdicts.items() if v.array == "A")
        verdict = oracle.verdicts[warm]
        assert not verdict.tpi_may and not verdict.sc_may

    def test_private_arrays_get_no_verdict(self):
        b = ProgramBuilder("priv")
        b.array("P", (8,), private=True)
        with b.procedure("main"):
            with b.doall("i", 0, 7) as i:
                b.stmt(writes=[b.at("P", i)])
                b.stmt(reads=[b.at("P", i)])
        oracle = analyze_staleness(b.build())
        assert oracle.verdicts == {}

    def test_same_epoch_neighbour_conflict_is_strict(self):
        b = ProgramBuilder("stencil")
        b.array("A", (8,))
        b.array("B", (8,))
        with b.procedure("main"):
            with b.doall("w", 0, 7, label="seed") as w:
                b.stmt(writes=[b.at("A", w)])
            with b.doall("i", 0, 6, label="shift") as i:
                b.stmt(reads=[b.at("A", i + 1)], writes=[b.at("A", i)])
        program = b.build()
        oracle = analyze_staleness(program)
        verdict = oracle.verdicts[read_site(program, "main", "A")]
        assert verdict.strict_def and verdict.tpi_def
        # The production pass agrees: the site is a strict Time-Read.
        marking = mark_program(program)
        assert marking.is_strict(
            read_site(program, "main", "A"))

    def test_same_task_rewrite_validates_tpi_and_sc(self):
        b = ProgramBuilder("revalid")
        b.array("A", (8,))
        with b.procedure("main"):
            with b.doall("w", 0, 7, label="seed") as w:
                b.stmt(writes=[b.at("A", w)])
            with b.doall("i", 0, 7, label="own") as i:
                b.stmt(writes=[b.at("A", i)])
                b.stmt(reads=[b.at("A", i)])
        oracle = analyze_staleness(b.build())
        reads = [v for v in oracle.verdicts.values() if v.visits]
        assert reads and all(not v.tpi_may and not v.sc_may for v in reads)

    def test_time_read_validates_later_read_for_tpi_only(self):
        n = 6
        b = ProgramBuilder("trvalid")
        b.array("A", (n, n))
        b.array("OUT", (n, n))
        with b.procedure("main"):
            with b.doall("w", 0, n - 1, label="seed") as w:
                with b.serial("c", 0, n - 1) as c:
                    b.stmt(writes=[b.at("A", w, c)])
            with b.doall("i", 0, n - 1, label="use") as i:
                with b.serial("j", 0, n - 1) as j:
                    b.stmt(reads=[b.at("A", i, j)],
                           writes=[b.at("OUT", i, j)])
                with b.serial("j2", 0, n - 1) as j2:
                    b.stmt(reads=[b.at("A", i, j2)],
                           writes=[b.at("OUT", i, j2)])
        program = b.build()
        oracle = analyze_staleness(program)
        first, second = sorted(s for s, v in oracle.verdicts.items()
                               if v.array == "A")
        assert oracle.verdicts[first].tpi_def
        # The second loop re-reads words the first loop's Time-Reads
        # validated: fresh under TPI, still stale under SC (bypass).
        assert not oracle.verdicts[second].tpi_may
        assert oracle.verdicts[second].sc_def

    def test_critical_read_is_forced_strict(self):
        b = ProgramBuilder("lock")
        b.array("S", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 3, label="acc"):
                with b.critical("L"):
                    b.stmt(reads=[b.at("S", 0)], writes=[b.at("S", 0)])
        program = b.build()
        oracle = analyze_staleness(program)
        verdict = oracle.verdicts[read_site(program, "main", "S")]
        assert verdict.tpi_def and verdict.strict_def and verdict.sc_def

    def test_none_mode_any_write_means_stale(self):
        program = producer_consumer()
        oracle = analyze_staleness(
            program, opts=MarkingOptions(interproc=InterprocMode.NONE))
        # Even the first read is suspect: region analysis has no ordering.
        for verdict in oracle.verdicts.values():
            if verdict.array == "A":
                assert verdict.tpi_def and verdict.strict_def


class TestDiffMarking:
    def test_clean_program_has_no_findings(self):
        program = producer_consumer()
        marking = mark_program(program)
        oracle = analyze_staleness(program)
        assert diff_marking(marking, oracle, "tpi", "inline") == []
        assert diff_marking(marking, oracle, "sc", "inline") == []

    def test_dropped_mark_is_an_error(self):
        program = producer_consumer()
        marking = mark_program(program)
        oracle = analyze_staleness(program)
        stale = [s for s, v in oracle.verdicts.items() if v.tpi_def]
        tpi = dict(marking.tpi)
        tpi[stale[0]] = RefMark.READ
        broken = Marking(tpi=tpi, sc=marking.sc, graph=marking.graph,
                         strict_sites=marking.strict_sites,
                         epoch_writes=marking.epoch_writes,
                         stats=marking.stats)
        diags = diff_marking(broken, oracle, "tpi", "inline")
        assert [d.rule_id for d in diags] == ["TPI001"]
        assert diags[0].site == stale[0]

    def test_spurious_mark_is_a_warning(self):
        program = producer_consumer()
        marking = mark_program(program)
        oracle = analyze_staleness(program)
        fresh = [s for s, v in oracle.verdicts.items()
                 if v.visits and not v.tpi_may]
        tpi = dict(marking.tpi)
        tpi[fresh[0]] = RefMark.TIME_READ
        broken = Marking(tpi=tpi, sc=marking.sc, graph=marking.graph,
                         strict_sites=marking.strict_sites,
                         epoch_writes=marking.epoch_writes,
                         stats=marking.stats)
        diags = diff_marking(broken, oracle, "tpi", "inline")
        assert [d.rule_id for d in diags] == ["TPI002"]

    def test_unknown_scheme_rejected(self):
        program = producer_consumer()
        marking = mark_program(program)
        oracle = analyze_staleness(program)
        with pytest.raises(ValueError, match="unknown scheme"):
            diff_marking(marking, oracle, "hw", "inline")


class TestSanitizer:
    def _trace_and_marking(self):
        program = producer_consumer()
        marking = mark_program(program)
        trace = generate_trace(program, default_machine(), None)
        return program, marking, trace

    def test_clean_marking_has_no_unmarked_violations(self):
        _, marking, trace = self._trace_and_marking()
        for scheme in ("tpi", "sc"):
            findings = replay_stale_reads(trace, marking, scheme)
            assert unmarked_stale_sites(findings) == {}

    def test_stale_reads_are_observed_and_marked(self):
        program, marking, trace = self._trace_and_marking()
        findings = replay_stale_reads(trace, marking, "tpi")
        reuse = read_sites(program, "main", "A")[-1]
        # ``reuse`` reads A after the master rewrote it: some processor must
        # observe staleness, and the marking covers it.
        observed = [f for f in findings if f.site != reuse]
        assert any(f.site == reuse for f in findings)
        assert all(f.marked for f in findings)
        assert observed == []  # no other site reads stale words

    def test_dropped_mark_is_detected_dynamically(self):
        program, marking, trace = self._trace_and_marking()
        reuse = read_sites(program, "main", "A")[-1]
        tpi = dict(marking.tpi)
        tpi[reuse] = RefMark.READ
        broken = Marking(tpi=tpi, sc=marking.sc, graph=marking.graph,
                         strict_sites=marking.strict_sites,
                         epoch_writes=marking.epoch_writes,
                         stats=marking.stats)
        findings = replay_stale_reads(trace, broken, "tpi")
        violations = unmarked_stale_sites(findings)
        assert set(violations) == {reuse}
        assert violations[reuse].marked is False

    def test_unknown_scheme_rejected(self):
        _, marking, trace = self._trace_and_marking()
        with pytest.raises(ValueError, match="tpi/sc/tardis/snoop"):
            replay_stale_reads(trace, marking, "hw")


class TestHardwareSchemeSanitizer:
    """The hardware freshness models: tardis and snoop need no marking."""

    def _trace_and_marking(self):
        program = producer_consumer()
        marking = mark_program(program)
        trace = generate_trace(program, default_machine(), None)
        return program, marking, trace

    def test_tardis_observes_the_same_staleness_tpi_does(self):
        # Under a sound marking, TPI's Time-Reads and Tardis's expired
        # leases terminate exactly the same stale reference sequences —
        # Tardis just covers them in hardware.
        _, marking, trace = self._trace_and_marking()
        tpi = replay_stale_reads(trace, marking, "tpi")
        tardis = replay_stale_reads(trace, marking, "tardis")
        assert tpi and set(tardis) == set(tpi)
        assert all(f.marked for f in tardis)
        assert unmarked_stale_sites(tardis) == {}

    def test_tardis_coverage_survives_a_broken_marking(self):
        # Drop every mark: TPI now has violations, Tardis still covers
        # every stale read — the hardware does not consult the marking.
        program, marking, trace = self._trace_and_marking()
        stripped = Marking(tpi={}, sc={}, graph=marking.graph,
                           epoch_writes=marking.epoch_writes)
        assert unmarked_stale_sites(
            replay_stale_reads(trace, stripped, "tpi")) != {}
        tardis = replay_stale_reads(trace, stripped, "tardis")
        assert tardis and unmarked_stale_sites(tardis) == {}

    def test_snoop_invalidations_leave_no_stale_copies(self):
        # The committing write destroys remote copies, so the stale
        # reference sequence never reaches a read.
        _, marking, trace = self._trace_and_marking()
        assert replay_stale_reads(trace, marking, "snoop") == []

    def test_lint_program_hardware_schemes(self):
        report = lint_program(producer_consumer(), modes=["inline"],
                              schemes=["tardis", "snoop"])
        assert report.exit_code() == 0
        assert report.diagnostics == []
        assert report.meta["stale.tardis"] > 0
        assert report.meta["stale.snoop"] == 0

    @pytest.mark.parametrize("name", workload_names())
    def test_hardware_models_cover_every_workload(self, name):
        from repro.workloads import build_workload

        program = build_workload(name, size="small")
        marking = mark_program(program)
        trace = generate_trace(program, default_machine(), None)
        tardis = replay_stale_reads(trace, marking, "tardis")
        assert all(f.marked for f in tardis)
        assert unmarked_stale_sites(tardis) == {}
        assert replay_stale_reads(trace, marking, "snoop") == []


class TestLintProgram:
    def test_structural_errors_abort_marking_diff(self):
        b = ProgramBuilder("badprog")
        b.array("A", (4, 4))
        with b.procedure("main"):
            b.stmt(reads=[b.at("A", 0)])
        program = b.build(validate=False)
        report = lint_program(program, sanitize=False)
        assert report.has_errors
        assert report.meta.get("aborted") == "structural errors"
        assert all(d.rule_id.startswith("VAL") for d in report.diagnostics)

    def test_clean_program_clean_report(self):
        report = lint_program(producer_consumer(), sanitize=True)
        assert report.exit_code() == 0
        assert report.diagnostics == []
        assert report.meta["modes"] == "inline,summary,none"
        assert report.meta["schemes"] == "tpi,sc"
        assert report.meta["sites"] > 0

    def test_mode_and_scheme_selection(self):
        report = lint_program(producer_consumer(), sanitize=False,
                              modes=["inline"], schemes=["tpi"])
        assert report.meta["modes"] == "inline"
        assert report.meta["schemes"] == "tpi"
        with pytest.raises(ValueError, match="unknown interprocedural mode"):
            lint_program(producer_consumer(), modes=["bogus"])
