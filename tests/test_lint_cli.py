"""`repro lint` CLI behaviour, cache plumbing, and workload acceptance."""

import json

import pytest

from repro.analysis.lint import ALL_MODES, lint_workload
from repro.analysis.mutate import mutation_self_test
from repro.cli import main
from repro.runtime import ArtifactCache
from repro.workloads import build_workload, workload_names

WORKLOADS = workload_names()


class TestExitCodes:
    def test_clean_workload_exits_zero(self, capsys):
        assert main(["lint", "ocean", "--no-cache", "--no-sanitize",
                     "--mode", "inline"]) == 0
        out = capsys.readouterr().out
        assert "lint ocean: 0 error(s)" in out

    def test_unknown_workload_one_line_exit_2(self, capsys):
        assert main(["lint", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown workload 'nosuch'")
        assert len(err.strip().splitlines()) == 1

    def test_unknown_scheme_one_line_exit_2(self, capsys):
        assert main(["lint", "ocean", "--scheme", "hw"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown scheme 'hw'")
        assert len(err.strip().splitlines()) == 1

    def test_unknown_mode_one_line_exit_2(self, capsys):
        assert main(["lint", "ocean", "--mode", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown interprocedural mode")

    def test_strict_turns_warnings_into_failure(self):
        # arc2d carries known TPI002 precision warnings.
        relaxed = main(["lint", "arc2d", "--no-cache", "--no-sanitize"])
        strict = main(["lint", "arc2d", "--no-cache", "--no-sanitize",
                       "--strict"])
        assert relaxed == 0
        assert strict == 1


class TestJsonAndCache:
    def test_json_report_written(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["lint", "ocean", "--no-cache", "--no-sanitize",
                     "--mode", "inline", "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert payload["subject"] == "ocean"
        assert payload["counts"]["error"] == 0
        assert payload["meta"]["modes"] == "inline"

    def test_json_list_for_multiple_workloads(self, tmp_path):
        path = tmp_path / "all.json"
        assert main(["lint", "all", "--no-cache", "--no-sanitize",
                     "--mode", "inline", "--scheme", "tpi",
                     "--json", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert isinstance(payload, list)
        assert [r["subject"] for r in payload] == list(WORKLOADS)

    def test_warm_repeat_hits_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = lint_workload("ocean", modes=["inline"], schemes=["tpi"],
                             sanitize=False, cache=cache)
        assert cold.meta["cache"] == "miss"
        warm = lint_workload("ocean", modes=["inline"], schemes=["tpi"],
                             sanitize=False, cache=cache)
        assert warm.meta["cache"] == "hit"
        assert warm.to_dict()["counts"] == cold.to_dict()["counts"]
        assert cache.stats().entries.get("lint") == 1

    def test_cache_key_depends_on_request(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        lint_workload("ocean", modes=["inline"], schemes=["tpi"],
                      sanitize=False, cache=cache)
        other = lint_workload("ocean", modes=["summary"], schemes=["tpi"],
                              sanitize=False, cache=cache)
        assert other.meta["cache"] == "miss"
        assert cache.stats().entries.get("lint") == 2

    def test_cli_cache_dir_round_trip(self, tmp_path, capsys):
        args = ["lint", "ocean", "--mode", "inline", "--scheme", "tpi",
                "--no-sanitize", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "cache=hit" in capsys.readouterr().out


class TestJsonUsageErrors:
    def test_unwritable_json_one_line_exit_2(self, capsys):
        assert main(["lint", "ocean", "--no-cache", "--no-sanitize",
                     "--mode", "none",
                     "--json", "/nonexistent-dir/report.json"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot write --json output")
        assert len(err.strip().splitlines()) == 1


class TestModelcheckFlag:
    def test_lint_modelcheck_appends_protocol_report(self, tmp_path, capsys,
                                                     monkeypatch):
        import repro.analysis.modelcheck as mc

        # One small config stands in for the default grid; the full grid
        # runs in tests/test_modelcheck.py and the CI modelcheck step.
        monkeypatch.setattr(mc, "DEFAULT_CONFIGS", (
            mc.ModelConfig(n_procs=2, n_lines=1, line_words=1,
                           timetag_bits=2, max_epochs=10),))
        path = tmp_path / "combined.json"
        assert main(["lint", "ocean", "--no-cache", "--no-sanitize",
                     "--mode", "none", "--modelcheck",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "modelcheck tpi-protocol: 0 error(s)" in out
        payload = json.loads(path.read_text())
        assert [p.get("tool", "lint") for p in payload] == \
            ["lint", "modelcheck"]


class TestSelfTestFlag:
    def test_self_test_output(self, capsys):
        assert main(["lint", "trfd", "--no-cache", "--no-sanitize",
                     "--mode", "inline", "--self-test"]) == 0
        out = capsys.readouterr().out
        assert "mutation self-test trfd [inline]:" in out
        assert "MISSED" not in out


class TestWorkloadAcceptance:
    """Issue acceptance: zero lint errors on every seed workload for both
    schemes in every interprocedural mode, and 100% mutation detection."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_zero_errors_all_modes_and_schemes(self, name):
        report = lint_workload(name, size="small", sanitize=True)
        assert report.meta["modes"] == "inline,summary,none"
        assert report.meta["schemes"] == "tpi,sc"
        assert report.errors == [], report.render()

    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("mode", ALL_MODES, ids=lambda m: m.value)
    def test_mutation_detection_is_total(self, name, mode):
        program = build_workload(name, size="small")
        result = mutation_self_test(program, mode=mode)
        assert result.seeded_errors > 0
        assert result.detection_rate == 1.0, result.summary()
        assert result.missed == []
