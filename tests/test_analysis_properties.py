"""Property tests: the marking is sound on random rich programs.

Two independent checks over programs from :mod:`tests.strategies`:

* **dynamic** — simulated execution (one generated trace) never reads a
  dynamically stale word at a site the TPI/SC map left ordinary;
* **static** — the staleness oracle's definite verdicts never disagree
  with the production marking (no lint errors), in any interprocedural
  mode.
"""

from hypothesis import HealthCheck, given, settings

from repro.analysis.lint import diff_marking
from repro.analysis.oracle import analyze_staleness
from repro.analysis.sanitizer import replay_stale_reads, unmarked_stale_sites
from repro.common.config import default_machine
from repro.compiler.marking import InterprocMode, MarkingOptions, mark_program
from repro.trace.generate import generate_trace
from tests.strategies import rich_programs

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


class TestMarkingSoundness:
    @settings(max_examples=30, **SETTINGS)
    @given(rich_programs())
    def test_no_dynamic_stale_read_at_unmarked_site(self, program):
        marking = mark_program(program)
        trace = generate_trace(program, default_machine(), None)
        for scheme in ("tpi", "sc"):
            findings = replay_stale_reads(trace, marking, scheme)
            violations = unmarked_stale_sites(findings)
            assert violations == {}, (scheme, violations)

    @settings(max_examples=20, **SETTINGS)
    @given(rich_programs())
    def test_oracle_never_outflanks_the_marking(self, program):
        for mode in InterprocMode:
            opts = MarkingOptions(interproc=mode)
            marking = mark_program(program, None, opts)
            oracle = analyze_staleness(program, None, opts)
            for scheme in ("tpi", "sc"):
                errors = [d for d in diff_marking(marking, oracle, scheme,
                                                  mode.value)
                          if d.severity.value == "error"]
                assert errors == [], [d.format() for d in errors]
