"""JSON round-trips for experiment results and SimResult snapshots."""

import json

import pytest

from repro.cli import main
from repro.common.config import default_machine
from repro.experiments import run_experiment
from repro.experiments.common import ExperimentResult
from repro.sim import prepare, simulate
from repro.workloads import build_workload


class TestExperimentResultJson:
    def test_round_trip(self, tmp_path):
        result = run_experiment("fig5_storage")
        path = tmp_path / "fig5.json"
        result.save(str(path))
        loaded = ExperimentResult.load(str(path))
        assert loaded.experiment == result.experiment
        assert loaded.headers == result.headers
        assert loaded.rows == result.rows
        assert loaded.notes == result.notes
        assert loaded.render() == result.render()

    def test_simulated_experiment_round_trip(self, tmp_path):
        result = run_experiment("tab_marking", size="small")
        path = tmp_path / "marking.json"
        result.save(str(path))
        loaded = ExperimentResult.load(str(path))
        assert loaded.rows == result.rows


class TestSimResultDict:
    def test_snapshot_is_json_serializable(self):
        machine = default_machine().with_(n_procs=4)
        run = prepare(build_workload("ocean", size="small"), machine)
        result = simulate(run, "tpi")
        snapshot = result.to_dict()
        text = json.dumps(snapshot)  # must not raise
        parsed = json.loads(text)
        assert parsed["scheme"] == "tpi"
        assert parsed["miss_rate"] == pytest.approx(result.miss_rate)
        assert sum(parsed["breakdown"].values()) == (
            result.n_procs * result.exec_cycles)
        assert parsed["miss_counts"].get("cold", 0) >= 0


class TestCliJson:
    def test_experiment_json_flag(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["experiment", "fig5_storage", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["experiment"] == "fig5_storage"
        assert len(data["rows"]) == 5
