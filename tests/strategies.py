"""Shared hypothesis strategies: random parallel programs.

``rich_programs()`` generates programs exercising every IR construct the
validator admits: DOALL and serial epochs, inner serial loops, 1-D and 2-D
arrays, private scratch arrays, scalar assignments (including loop-carried
induction), If branches, critical sections, and calls to helper procedures
(both pure-serial and DOALL-containing).  All subscripts are constructed
in-bounds by design so the trace generator's bounds checks never fire.
"""

from hypothesis import strategies as st

from repro.common.config import (WORD_BYTES, CacheConfig, ConsistencyModel,
                                 SchedulePolicy, TpiConfig, WriteBufferKind,
                                 default_machine)
from repro.ir import ProgramBuilder

N1 = 12  # 1-D array extent
N2 = 6  # 2-D array extent (per dim)
I_HI = 5  # max DOALL/serial index


@st.composite
def _sub1(draw, index):
    """In-bounds subscript for a 1-D array, affine in ``index`` in [0, 5]."""
    kind = draw(st.sampled_from(["ident", "shift", "stride", "const", "rev"]))
    if kind == "ident":
        return index
    if kind == "shift":
        return index + draw(st.integers(0, 2))
    if kind == "stride":
        return index * 2 + draw(st.integers(0, 1))
    if kind == "rev":
        return draw(st.integers(N1 - 4, N1 - 1)) - index
    return draw(st.integers(0, N1 - 1))


@st.composite
def _sub2(draw, index, inner):
    """In-bounds subscript pair for the 2-D array."""
    first = draw(st.sampled_from(["ident", "const"]))
    row = index if first == "ident" else draw(st.integers(0, N2 - 1))
    second = draw(st.sampled_from(["inner", "const", "invert"]))
    if second == "inner" and inner is not None:
        col = inner
    elif second == "invert":
        col = (N2 - 1) - index
    else:
        col = draw(st.integers(0, N2 - 1))
    return row, col


@st.composite
def _statement(draw, b, index, inner, allow_critical):
    """Emit one statement (possibly inside a critical section)."""
    reads, writes = [], []
    for arr in ("A", "B"):
        action = draw(st.sampled_from(["read", "write", "skip", "skip"]))
        if action == "skip":
            continue
        ref = b.at(arr, draw(_sub1(index)))
        (reads if action == "read" else writes).append(ref)
    if draw(st.booleans()):
        row, col = draw(_sub2(index, inner))
        ref = b.at("G", row, col)
        (writes if draw(st.booleans()) else reads).append(ref)
    if draw(st.integers(0, 3)) == 0:
        ref = b.at("scratch", draw(st.integers(0, 3)))
        (writes if draw(st.booleans()) else reads).append(ref)
    if not reads and not writes:
        reads.append(b.at("A", draw(st.integers(0, N1 - 1))))
    work = draw(st.integers(1, 4))
    if allow_critical and draw(st.integers(0, 4)) == 0:
        with b.critical("lk"):
            b.stmt(reads=[b.at("T", 0), *reads], writes=[b.at("T", 0)],
                   work=work)
        for ref in writes:
            b.stmt(writes=[ref], work=1)
    else:
        b.stmt(reads=reads, writes=writes, work=work)


@st.composite
def _segment(draw, b, tag, allow_call):
    """One epoch-ish region: a DOALL or serial loop over statements."""
    parallel = draw(st.booleans())
    lo = draw(st.integers(0, 2))
    hi = draw(st.integers(lo, I_HI))
    ctx = b.doall if parallel else b.serial
    with ctx(f"i{tag}", lo, hi) as i:
        use_inner = draw(st.booleans())
        n_stmts = draw(st.integers(1, 2))
        if use_inner:
            with b.serial(f"j{tag}", 0, N2 - 1) as j:
                for _ in range(n_stmts):
                    draw(_statement(b, i, j, allow_critical=parallel))
        else:
            for _ in range(n_stmts):
                draw(_statement(b, i, None, allow_critical=parallel))
    if allow_call and draw(st.integers(0, 2)) == 0:
        b.call(draw(st.sampled_from(["serial_helper", "parallel_helper"])))


@st.composite
def machines(draw):
    """Random machine configurations for differential engine testing.

    Deliberately includes tiny caches (conflict-heavy), single-word lines,
    two-way associativity (no batch kernel — exercises the fast engine's
    per-event merged path), sequential consistency, coalescing write
    buffers, every schedule policy, and narrow timetags (frequent resets).
    """
    n_lines = draw(st.sampled_from([8, 32, 256]))
    line_words = draw(st.sampled_from([1, 2, 4]))
    assoc = draw(st.sampled_from([1, 1, 1, 2]))  # weight the kernel path
    cache = CacheConfig(size_bytes=n_lines * line_words * WORD_BYTES,
                        line_words=line_words, associativity=assoc)
    return default_machine().with_(
        n_procs=draw(st.sampled_from([2, 3, 4, 8])),
        cache=cache,
        tpi=TpiConfig(timetag_bits=draw(st.sampled_from([2, 8]))),
        write_buffer=draw(st.sampled_from(list(WriteBufferKind))),
        consistency=draw(st.sampled_from(list(ConsistencyModel))),
        schedule=draw(st.sampled_from(list(SchedulePolicy))),
        record_epochs=True,
    )


@st.composite
def rich_programs(draw):
    b = ProgramBuilder("rich", params={})
    b.array("A", (N1,))
    b.array("B", (N1,))
    b.array("G", (N2, N2))
    b.array("T", (1,))
    b.array("scratch", (4,), private=True)

    with b.procedure("serial_helper"):
        off = b.assign("ser_off", draw(st.integers(0, 3)))
        b.stmt(reads=[b.at("A", off)], writes=[b.at("B", off + 1)], work=2)

    with b.procedure("parallel_helper"):
        with b.doall("ph", 0, N1 - 1) as ph:
            b.stmt(reads=[b.at("B", ph)], writes=[b.at("A", ph)], work=1)

    with b.procedure("main"):
        n_segments = draw(st.integers(2, 4))
        if draw(st.booleans()):
            b.param("T_LOOP", draw(st.integers(2, 3)))
            with b.serial("t", 0, b.p("T_LOOP") - 1):
                # An If around a segment (both arms may contain epochs).
                if draw(st.booleans()):
                    with b.when(b.v("t"), "==", 0):
                        draw(_segment(b, "c", allow_call=False))
                for k in range(n_segments):
                    draw(_segment(b, f"{k}", allow_call=True))
        else:
            for k in range(n_segments):
                draw(_segment(b, f"{k}", allow_call=True))
    return b.build()
