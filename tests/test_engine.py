"""Unit tests for the simulation engine itself (clocks, barriers, locks)."""

import pytest

from repro.common.config import default_machine
from repro.common.errors import SimulationError
from repro.ir import ProgramBuilder
from repro.sim import prepare, simulate


def machine(**kw):
    defaults = dict(n_procs=4, epoch_setup_cycles=10, task_dispatch_cycles=2)
    defaults.update(kw)
    return default_machine().with_(**defaults)


class TestTiming:
    def test_work_cycles_accumulate(self):
        b = ProgramBuilder("work")
        b.array("A", (4,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)], work=500)
            b.stmt(writes=[b.at("A", 1)], work=700)
        r = simulate(b.build(), "tpi", machine())
        assert r.exec_cycles >= 1200

    def test_barrier_waits_for_slowest(self):
        """One heavy task dominates the epoch (load imbalance)."""
        b = ProgramBuilder("imbalanced")
        b.array("A", (4,))
        with b.procedure("main"):
            with b.doall("i", 0, 3) as i:
                with b.when(b.v("i"), "==", 0):
                    b.stmt(writes=[b.at("A", 0)], work=10_000)
                b.stmt(reads=[b.at("A", i)], work=1)
        r = simulate(b.build(), "tpi", machine())
        assert r.exec_cycles >= 10_000

    def test_parallelism_speeds_up(self):
        def build():
            b = ProgramBuilder("par")
            b.array("A", (64,))
            with b.procedure("main"):
                with b.doall("i", 0, 63) as i:
                    b.stmt(writes=[b.at("A", i)], work=200)
            return b.build()

        one = simulate(build(), "tpi", machine(n_procs=1))
        eight = simulate(build(), "tpi", machine(n_procs=8))
        assert one.exec_cycles > 4 * eight.exec_cycles

    def test_epoch_setup_charged(self):
        b = ProgramBuilder("setupcost")
        b.array("A", (4,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)], work=1)
        cheap = simulate(b.build(), "tpi", machine(epoch_setup_cycles=1))
        costly = simulate(b.build(), "tpi", machine(epoch_setup_cycles=5000))
        assert costly.exec_cycles - cheap.exec_cycles >= 4000

    def test_reset_stall_charged(self):
        from repro.common.config import TpiConfig

        b = ProgramBuilder("stalls", params={"T": 12})
        b.array("A", (8,))
        with b.procedure("main"):
            with b.serial("t", 0, b.p("T") - 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)], work=1)
        small_tag = simulate(b.build(), "tpi",
                             machine(tpi=TpiConfig(timetag_bits=2,
                                                   reset_stall_cycles=5000)))
        big_tag = simulate(b.build(), "tpi",
                           machine(tpi=TpiConfig(timetag_bits=8,
                                                 reset_stall_cycles=5000)))
        assert small_tag.resets > big_tag.resets
        assert small_tag.exec_cycles > big_tag.exec_cycles


class TestLocks:
    def build_locked(self, n=8):
        b = ProgramBuilder("locked")
        b.array("acc", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, n - 1) as i:
                with b.critical("L"):
                    b.stmt(reads=[b.at("acc", 0)], writes=[b.at("acc", 0)],
                           work=50)
        return b.build()

    def test_critical_sections_serialize(self):
        r = simulate(self.build_locked(), "tpi", machine())
        # 8 critical sections x 50 cycles of work cannot overlap.
        assert r.exec_cycles >= 8 * 50
        assert r.extra["lock_acquires"] == 8

    def test_two_locks_do_not_serialize_each_other(self):
        b = ProgramBuilder("twolocks")
        b.array("a0", (1,))
        b.array("a1", (1,))
        with b.procedure("main"):
            with b.doall("i", 0, 1) as i:
                with b.when(b.v("i"), "==", 0):
                    with b.critical("L0"):
                        b.stmt(writes=[b.at("a0", 0)], work=5000)
                with b.when(b.v("i"), "==", 1):
                    with b.critical("L1"):
                        b.stmt(writes=[b.at("a1", 0)], work=5000)
        r = simulate(b.build(), "tpi", machine(n_procs=2))
        assert r.exec_cycles < 2 * 5000  # ran concurrently

    def test_lock_hand_off_order_deterministic(self):
        a = simulate(self.build_locked(), "hw", machine())
        b = simulate(self.build_locked(), "hw", machine())
        assert a.exec_cycles == b.exec_cycles

    def test_contended_lock_spins_show_as_sync_stall(self):
        contended = simulate(self.build_locked(), "tpi", machine(n_procs=8))
        alone = simulate(self.build_locked(), "tpi", machine(n_procs=1))
        # Spinning processors charge their retry cycles to sync_stall;
        # with one processor the lock is always free on arrival.
        assert contended.breakdown["sync_stall"] > alone.breakdown["sync_stall"]
        assert contended.extra["lock_acquires"] == 8

    def test_free_time_hand_off_serializes_critical_work(self):
        """A released lock's ``free_time`` gates the next acquirer: the
        critical sections' work can never overlap, whatever the spin
        timing, so total time grows linearly with the holder count."""
        few = simulate(self.build_locked(n=4), "tpi", machine(n_procs=4))
        many = simulate(self.build_locked(n=16), "tpi", machine(n_procs=4))
        assert many.exec_cycles - few.exec_cycles >= 12 * 50


class TestLockErrors:
    """Hand-crafted traces for the engine's lock-safety guards (the IR
    builder cannot emit unbalanced critical sections)."""

    def crafted(self, events_by_proc, scheme="hw", n_procs=4):
        from repro.compiler.marking import mark_program
        from repro.sim import make_engine
        from repro.trace.events import (EventKind, MemEvent, Task, Trace,
                                        TraceEpoch)
        from repro.trace.layout import MemoryLayout

        b = ProgramBuilder("crafted")
        b.array("A", (16,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)], work=1)
        program = b.build()
        m = machine(n_procs=n_procs)
        tasks = [
            Task(proc=proc, events=[
                MemEvent(kind=kind, addr=0, site=0, work=1, lock=lock)
                for kind, lock in events])
            for proc, events in events_by_proc.items()]
        trace = Trace("crafted", m.n_procs,
                      epochs=[TraceEpoch(index=0, parallel=True,
                                         tasks=tasks)],
                      layout=MemoryLayout(program, m.n_procs,
                                          m.cache.line_words))
        return make_engine(trace, mark_program(program), m, scheme)

    def test_lock_held_at_barrier_raises(self):
        from repro.trace.events import EventKind

        engine = self.crafted({0: [(EventKind.LOCK, 7)]})
        with pytest.raises(SimulationError, match="locks held"):
            engine.run()

    def test_unlock_without_hold_raises(self):
        from repro.trace.events import EventKind

        engine = self.crafted({0: [(EventKind.UNLOCK, 7)]})
        with pytest.raises(SimulationError, match="does not hold"):
            engine.run()

    def test_unlock_by_non_holder_raises(self):
        from repro.trace.events import EventKind

        engine = self.crafted({0: [(EventKind.LOCK, 7)],
                               1: [(EventKind.UNLOCK, 7)]})
        with pytest.raises(SimulationError, match="does not hold"):
            engine.run()

    def test_spin_counter_deadlock_guard(self, monkeypatch):
        """A waiter that can never acquire trips the million-spin guard
        instead of hanging.  Start the counter near the limit so the test
        does not actually spin a million times."""
        from repro.sim import engine as engine_mod
        from repro.trace.events import EventKind

        real_state = engine_mod._LockState

        def near_limit():
            state = real_state()
            state.spins = 10 ** 6
            return state

        monkeypatch.setattr(engine_mod, "_LockState", near_limit)
        engine = self.crafted({0: [(EventKind.LOCK, 3)],
                               1: [(EventKind.LOCK, 3)]})
        with pytest.raises(SimulationError, match="probable deadlock"):
            engine.run()


class TestNetworkFeedback:
    def test_write_traffic_raises_load_and_miss_latency(self):
        """Writes are non-blocking (weak consistency), so a write-heavy
        program pumps network words without adding stall cycles — the load
        estimate and hence the read miss latency must rise."""
        def build(writes_per_iter, compute):
            b = ProgramBuilder(f"wload{writes_per_iter}", params={"T": 4})
            b.array("A", (64, 8))
            b.array("B", (64,))
            with b.procedure("main"):
                with b.serial("t", 0, b.p("T") - 1):
                    with b.doall("i", 0, 63) as i:
                        # Read the mirror element: the writer is another
                        # processor, so every step misses (after rho has
                        # had an epoch to build up).
                        b.stmt(writes=[b.at("A", i, k)
                                       for k in range(writes_per_iter)],
                               reads=[b.at("B", 63 - i)], work=compute)
                    with b.doall("j", 0, 63) as j:
                        b.stmt(writes=[b.at("B", j)], work=1)
            return b.build()

        quiet = simulate(build(1, 300), "tpi", machine(n_procs=16))
        heavy = simulate(build(8, 1), "tpi", machine(n_procs=16))
        # final_network_load is an EMA dominated by the (identical) last
        # epoch, so the visible gap is modest; the latency effect is the
        # real assertion.
        assert heavy.final_network_load > 1.5 * quiet.final_network_load
        assert heavy.avg_miss_latency > quiet.avg_miss_latency
