"""Differential parity: the fast engine must be bit-identical to the
reference engine.

The fast engine (:mod:`repro.sim.fastengine`) reorders provably-commuting
work — batched cold spans, epoch-merged pre-applies, heap-replayed hot
events — but its contract is that every observable metric matches the
reference engine exactly: not statistically, not approximately, but
byte-for-byte in the canonical JSON rendering, including the per-epoch
records.

Two layers of evidence:

* the full paper grid — every workload crossed with every scheme — at the
  small problem size, and a spot-check of the paper size;
* hypothesis-random programs (calls, Ifs, critical sections, 2-D arrays)
  crossed with random machines (tiny caches, single-word lines, two-way
  associativity, sequential consistency, coalescing buffers, narrow
  timetags) — the space where an unsound commutation argument would
  actually surface.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.sim.jit import numba_available
from repro.workloads import build_workload, workload_names
from tests.strategies import machines, rich_programs

SCHEMES = ("base", "sc", "tpi", "hw", "limitless", "update", "tardis",
           "snoop")

#: The jit tier's parity leg compiles when numba is installed (the CI
#: numba job) and otherwise interprets the identical loop functions —
#: the same (ok, ctx) code path, minus the compiler.
JIT_MODE = "on" if numba_available()[0] is not None else "interp"

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def snapshot(result) -> str:
    """Canonical JSON of everything a result observably contains."""
    return json.dumps(
        {"result": result.to_dict(),
         "epoch_records": [dataclasses.asdict(r)
                           for r in result.epoch_records]},
        sort_keys=True)


def both_engines(program, scheme, machine):
    pair = {}
    for engine in ("reference", "fast"):
        run = prepare(program, machine.with_(engine=engine))
        pair[engine] = simulate(run, scheme)
    return pair


def assert_parity(program, scheme, machine):
    pair = both_engines(program, scheme, machine)
    assert snapshot(pair["fast"]) == snapshot(pair["reference"])
    return pair


def assert_jit_parity(program, scheme, machine):
    """fast+jit must match the reference engine byte-for-byte."""
    ref = simulate(prepare(
        program, machine.with_(engine="reference")), scheme)
    jit = simulate(prepare(
        program, machine.with_(engine="fast", jit=JIT_MODE)), scheme)
    assert snapshot(jit) == snapshot(ref)
    return jit


class TestWorkloadGrid:
    """Every paper workload x every scheme, small size."""

    @pytest.fixture(scope="class")
    def runs(self):
        cache = {}

        def get(name, engine, jit="auto"):
            key = (name, engine, jit)
            if key not in cache:
                machine = default_machine().with_(engine=engine, jit=jit,
                                                  record_epochs=True)
                cache[key] = prepare(
                    build_workload(name, size="small"), machine)
            return cache[key]

        return get

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_small_grid(self, runs, name, scheme):
        fast = simulate(runs(name, "fast"), scheme)
        ref = simulate(runs(name, "reference"), scheme)
        assert snapshot(fast) == snapshot(ref)

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_small_grid_jit(self, runs, name, scheme):
        jit = simulate(runs(name, "fast", JIT_MODE), scheme)
        ref = simulate(runs(name, "reference"), scheme)
        assert snapshot(jit) == snapshot(ref)
        assert jit.jit == ("numba" if JIT_MODE == "on" else "interp")

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_small_grid_gang_jit(self, runs, scheme):
        """The tier rides the gang engine's member FastEngines too."""
        jit = simulate(runs("ocean", "gang", JIT_MODE), scheme)
        ref = simulate(runs("ocean", "reference"), scheme)
        assert snapshot(jit) == snapshot(ref)

    @pytest.mark.parametrize("scheme", ("base", "tpi", "hw"))
    def test_paper_size_spot_check(self, scheme):
        program = build_workload("ocean", size="default")
        assert_parity(program, scheme, default_machine())


class TestEngineProvenance:
    def test_engine_recorded_but_not_rendered(self):
        program = build_workload("ocean", size="small")
        pair = both_engines(program, "tpi", default_machine())
        assert pair["fast"].engine == "fast"
        assert pair["reference"].engine == "reference"
        for result in pair.values():
            assert "engine" not in result.to_dict()
            assert "jit" not in result.to_dict()


class TestRandomPrograms:
    """Hypothesis sweep: random programs x random machines x schemes."""

    @settings(max_examples=25, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_tpi(self, program, machine):
        assert_parity(program, "tpi", machine)

    @settings(max_examples=25, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_hw(self, program, machine):
        assert_parity(program, "hw", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_base_sc(self, program, machine):
        assert_parity(program, "base", machine)
        assert_parity(program, "sc", machine)

    @settings(max_examples=10, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_limitless_update(self, program, machine):
        assert_parity(program, "limitless", machine)
        assert_parity(program, "update", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_tardis(self, program, machine):
        assert_parity(program, "tardis", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_snoop(self, program, machine):
        assert_parity(program, "snoop", machine)


class TestRandomProgramsJit:
    """The jit tier over the same adversarial space.

    Random machines include two-way associativity (no batch kernel —
    the tier must fall back, not diverge), single-word lines, narrow
    timetags, sequential consistency, and coalescing buffers.
    """

    @settings(max_examples=20, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_jit_parity_tpi_hw(self, program, machine):
        assert_jit_parity(program, "tpi", machine)
        assert_jit_parity(program, "hw", machine)

    @settings(max_examples=10, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_jit_parity_base_sc(self, program, machine):
        assert_jit_parity(program, "base", machine)
        assert_jit_parity(program, "sc", machine)

    @settings(max_examples=10, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_jit_parity_tardis_update_snoop(self, program, machine):
        assert_jit_parity(program, "tardis", machine)
        assert_jit_parity(program, "update", machine)
        assert_jit_parity(program, "snoop", machine)
