"""Differential parity: the fast engine must be bit-identical to the
reference engine.

The fast engine (:mod:`repro.sim.fastengine`) reorders provably-commuting
work — batched cold spans, epoch-merged pre-applies, heap-replayed hot
events — but its contract is that every observable metric matches the
reference engine exactly: not statistically, not approximately, but
byte-for-byte in the canonical JSON rendering, including the per-epoch
records.

Two layers of evidence:

* the full paper grid — every workload crossed with every scheme — at the
  small problem size, and a spot-check of the paper size;
* hypothesis-random programs (calls, Ifs, critical sections, 2-D arrays)
  crossed with random machines (tiny caches, single-word lines, two-way
  associativity, sequential consistency, coalescing buffers, narrow
  timetags) — the space where an unsound commutation argument would
  actually surface.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names
from tests.strategies import machines, rich_programs

SCHEMES = ("base", "sc", "tpi", "hw", "limitless", "update", "tardis",
           "snoop")

SETTINGS = dict(deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.data_too_large])


def snapshot(result) -> str:
    """Canonical JSON of everything a result observably contains."""
    return json.dumps(
        {"result": result.to_dict(),
         "epoch_records": [dataclasses.asdict(r)
                           for r in result.epoch_records]},
        sort_keys=True)


def both_engines(program, scheme, machine):
    pair = {}
    for engine in ("reference", "fast"):
        run = prepare(program, machine.with_(engine=engine))
        pair[engine] = simulate(run, scheme)
    return pair


def assert_parity(program, scheme, machine):
    pair = both_engines(program, scheme, machine)
    assert snapshot(pair["fast"]) == snapshot(pair["reference"])
    return pair


class TestWorkloadGrid:
    """Every paper workload x every scheme, small size."""

    @pytest.fixture(scope="class")
    def runs(self):
        cache = {}

        def get(name, engine):
            if (name, engine) not in cache:
                machine = default_machine().with_(engine=engine,
                                                  record_epochs=True)
                cache[name, engine] = prepare(
                    build_workload(name, size="small"), machine)
            return cache[name, engine]

        return get

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_small_grid(self, runs, name, scheme):
        fast = simulate(runs(name, "fast"), scheme)
        ref = simulate(runs(name, "reference"), scheme)
        assert snapshot(fast) == snapshot(ref)

    @pytest.mark.parametrize("scheme", ("base", "tpi", "hw"))
    def test_paper_size_spot_check(self, scheme):
        program = build_workload("ocean", size="default")
        assert_parity(program, scheme, default_machine())


class TestEngineProvenance:
    def test_engine_recorded_but_not_rendered(self):
        program = build_workload("ocean", size="small")
        pair = both_engines(program, "tpi", default_machine())
        assert pair["fast"].engine == "fast"
        assert pair["reference"].engine == "reference"
        for result in pair.values():
            assert "engine" not in result.to_dict()


class TestRandomPrograms:
    """Hypothesis sweep: random programs x random machines x schemes."""

    @settings(max_examples=25, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_tpi(self, program, machine):
        assert_parity(program, "tpi", machine)

    @settings(max_examples=25, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_hw(self, program, machine):
        assert_parity(program, "hw", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_base_sc(self, program, machine):
        assert_parity(program, "base", machine)
        assert_parity(program, "sc", machine)

    @settings(max_examples=10, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_limitless_update(self, program, machine):
        assert_parity(program, "limitless", machine)
        assert_parity(program, "update", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_tardis(self, program, machine):
        assert_parity(program, "tardis", machine)

    @settings(max_examples=15, **SETTINGS)
    @given(program=rich_programs(), machine=machines())
    def test_parity_snoop(self, program, machine):
        assert_parity(program, "snoop", machine)
