"""Direct tests of EpochGraph.distance (the Time-Read window metric)."""

import pytest

from repro.compiler.epochs import build_epoch_graph
from repro.ir import ProgramBuilder


def seq_of_doalls(n, loop_trips=None):
    """n DOALLs in a row, optionally wrapped in a serial loop."""
    b = ProgramBuilder("seq", params={"T": loop_trips or 1})
    b.array("A", (8,))
    with b.procedure("main"):
        def emit():
            for k in range(n):
                with b.doall(f"i{k}", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
        if loop_trips:
            with b.serial("t", 0, b.p("T") - 1):
                emit()
        else:
            emit()
    return build_epoch_graph(b.build())


class TestLinearChains:
    def test_adjacent_distance_one(self):
        g = seq_of_doalls(3)
        a, b_, c = (e.id for e in g.parallel_epochs)
        assert g.distance(a, b_) == 1
        assert g.distance(b_, c) == 1
        assert g.distance(a, c) == 2

    def test_unreachable_is_none(self):
        g = seq_of_doalls(2)
        a, b_ = (e.id for e in g.parallel_epochs)
        assert g.distance(b_, a) is None
        assert g.distance(a, a) is None  # not on a cycle


class TestLoops:
    def test_back_edge_distance_contracts_header(self):
        g = seq_of_doalls(2, loop_trips=3)
        a, b_ = (e.id for e in g.parallel_epochs)
        assert g.distance(a, b_) == 1
        # b -> header (cost 0) -> a (cost 1): the next iteration.
        assert g.distance(b_, a) == 1
        # Self-distance around the loop: two boundary crossings.
        assert g.distance(a, a) == 2
        assert g.distance(b_, b_) == 2

    def test_single_doall_loop_self_distance_one(self):
        g = seq_of_doalls(1, loop_trips=4)
        (a,) = (e.id for e in g.parallel_epochs)
        assert g.distance(a, a) == 1

    def test_branch_skip_gives_min_path(self):
        """With an If around the middle DOALL, the outer epochs are at
        distance 1 via the skip edge even though the through-path is 2."""
        b = ProgramBuilder("skip", params={"GO": 1})
        b.array("A", (8,))
        with b.procedure("main"):
            b.stmt(writes=[b.at("A", 0)])
            with b.when(b.p("GO"), "==", 1):
                with b.doall("i", 0, 7) as i:
                    b.stmt(writes=[b.at("A", i)])
            b.stmt(reads=[b.at("A", 0)])
        g = build_epoch_graph(b.build())
        pre, doall, post = g.epochs
        assert g.distance(pre.id, post.id) == 1
        assert g.distance(pre.id, doall.id) == 1
        assert g.distance(doall.id, post.id) == 1


class TestWindowsFollowDistances:
    def test_far_writer_gives_timestamp_not_strict(self):
        """A reader two epochs after the only writer is a timestamp
        Time-Read (cross-epoch), never strict."""
        from repro.compiler import mark_program, RefMark

        b = ProgramBuilder("far", params={})
        b.array("A", (8,))
        b.array("B", (8,))
        b.array("C", (8,))
        with b.procedure("main"):
            with b.doall("w", 0, 7) as w:
                b.stmt(writes=[b.at("A", w)])
            with b.doall("m", 0, 7) as m:
                b.stmt(writes=[b.at("B", m)])
            with b.doall("r", 0, 7) as r:
                ref = b.at("A", 7 - r)
                b.stmt(reads=[ref], writes=[b.at("C", r)])
        marking = mark_program(b.build())
        assert marking.tpi_mark(ref.site) is RefMark.TIME_READ
        assert not marking.is_strict(ref.site)

    def test_same_epoch_writer_gives_strict(self):
        from repro.compiler import mark_program, RefMark

        b = ProgramBuilder("near", params={})
        b.array("A", (16,))
        with b.procedure("main"):
            with b.doall("i", 1, 7) as i:
                ref = b.at("A", i - 1)
                b.stmt(reads=[ref], writes=[b.at("A", i)])
        marking = mark_program(b.build())
        assert marking.tpi_mark(ref.site) is RefMark.TIME_READ
        assert marking.is_strict(ref.site)
