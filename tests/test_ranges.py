"""Unit + property tests for range analysis and regular sections."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.ranges import (
    RangeEnv,
    interval_add,
    interval_scale,
    interval_union,
    intervals_overlap,
)
from repro.compiler.sections import DimSection, RegularSection, SectionList, section_of, whole_array_section
from repro.ir.expr import Affine, sym
from repro.ir.program import Array, ArrayRef


class TestIntervals:
    def test_add(self):
        assert interval_add((1, 2), (3, 4)) == (4, 6)
        assert interval_add((None, 2), (3, 4)) == (None, 6)

    def test_scale(self):
        assert interval_scale((1, 3), 2) == (2, 6)
        assert interval_scale((1, 3), -1) == (-3, -1)
        assert interval_scale((None, 3), -2) == (-6, None)
        assert interval_scale((None, None), 0) == (0, 0)

    def test_union(self):
        assert interval_union((0, 1), (5, 9)) == (0, 9)
        assert interval_union((None, 1), (0, 2)) == (None, 2)

    def test_overlap(self):
        assert intervals_overlap((0, 5), (5, 9))
        assert not intervals_overlap((0, 4), (5, 9))
        assert intervals_overlap((None, None), (5, 9))


class TestRangeEnv:
    def test_range_of_affine(self):
        env = RangeEnv({"i": (0, 9), "N": (16, 16)})
        assert env.range_of(sym("i") * 2 + sym("N")) == (16, 34)
        assert env.range_of(sym("N") - sym("i")) == (7, 16)

    def test_unknown_symbol_is_unbounded(self):
        env = RangeEnv({})
        assert env.range_of(sym("q")) == (None, None)

    def test_child_chaining(self):
        parent = RangeEnv({"i": (0, 9)})
        child = parent.child(j=(1, 3))
        assert child.lookup("i") == (0, 9)
        assert child.lookup("j") == (1, 3)
        assert parent.lookup("j") == (None, None)

    def test_loop_range_and_trips(self):
        env = RangeEnv({"N": (16, 16)})
        assert env.loop_range(Affine.of(0), sym("N") - 1, 1) == (0, 15)
        assert env.max_trip_count(Affine.of(0), sym("N") - 1, 1) == 16
        assert env.max_trip_count(Affine.of(0), sym("N") - 1, 2) == 8
        assert env.max_trip_count(Affine.of(5), Affine.of(4), 1) == 0

    def test_negative_step(self):
        env = RangeEnv({})
        assert env.loop_range(Affine.of(9), Affine.of(0), -1) == (0, 9)
        assert env.max_trip_count(Affine.of(9), Affine.of(0), -1) == 10


class TestDimSection:
    def test_overlap_basic(self):
        assert DimSection(0, 9).overlaps(DimSection(5, 15))
        assert not DimSection(0, 4).overlaps(DimSection(5, 15))

    def test_overlap_strided(self):
        evens = DimSection(0, 100, 2)
        odds = DimSection(1, 101, 2)
        assert not evens.overlaps(odds)
        assert evens.overlaps(DimSection(0, 100, 2))
        assert evens.overlaps(DimSection(3, 9, 3))  # 6 is shared

    def test_union_compatible_strides(self):
        u = DimSection(0, 8, 2).union(DimSection(10, 20, 2))
        assert (u.lo, u.hi, u.stride) == (0, 20, 2)

    def test_union_incompatible_offsets_densifies(self):
        u = DimSection(0, 8, 2).union(DimSection(1, 9, 2))
        assert u.stride == 1

    def test_contains(self):
        assert DimSection(0, 100).contains(DimSection(5, 50, 3))
        assert not DimSection(0, 10).contains(DimSection(5, 50))
        assert DimSection(0, 100, 2).contains(DimSection(0, 50, 4))
        assert not DimSection(0, 100, 2).contains(DimSection(1, 51, 4))

    @given(st.integers(0, 30), st.integers(0, 30), st.integers(1, 5),
           st.integers(0, 30), st.integers(0, 30), st.integers(1, 5))
    def test_overlap_never_misses_real_intersection(self, lo1, len1, s1, lo2, len2, s2):
        a = DimSection(lo1, lo1 + len1, s1)
        b = DimSection(lo2, lo2 + len2, s2)
        pts_a = set(range(a.lo, a.hi + 1, a.stride))
        pts_b = set(range(b.lo, b.hi + 1, b.stride))
        if pts_a & pts_b:
            assert a.overlaps(b)  # conservative test must say yes

    @given(st.integers(0, 20), st.integers(0, 10), st.integers(1, 4),
           st.integers(0, 20), st.integers(0, 10), st.integers(1, 4))
    def test_union_is_superset(self, lo1, len1, s1, lo2, len2, s2):
        a = DimSection(lo1, lo1 + len1, s1)
        b = DimSection(lo2, lo2 + len2, s2)
        u = a.union(b)
        pts = set(range(u.lo, u.hi + 1, u.stride))
        for d in (a, b):
            assert set(range(d.lo, d.hi + 1, d.stride)) <= pts


class TestRegularSection:
    def test_section_of_clamps_to_extent(self):
        arr = Array("A", (10, 10))
        env = RangeEnv({"i": (0, 9)})
        ref = ArrayRef("A", (sym("i") + 5, Affine.of(3)), 0)
        section = section_of(ref, arr, env)
        assert section.dims[0].lo == 5 and section.dims[0].hi == 9
        assert section.dims[1].lo == 3 and section.dims[1].hi == 3

    def test_section_of_unbounded_covers_dimension(self):
        arr = Array("A", (10,))
        env = RangeEnv({})
        section = section_of(ArrayRef("A", (sym("weird"),), 0), arr, env)
        assert (section.dims[0].lo, section.dims[0].hi) == (0, 9)

    def test_section_stride_from_single_varying_symbol(self):
        arr = Array("A", (100,))
        env = RangeEnv({"i": (0, 9), "N": (4, 4)})
        section = section_of(ArrayRef("A", (sym("i") * 4 + sym("N"),), 0), arr, env)
        assert section.dims[0].stride == 4

    def test_section_coupled_symbols_dense(self):
        arr = Array("A", (100,))
        env = RangeEnv({"i": (0, 4), "j": (0, 4)})
        section = section_of(ArrayRef("A", (sym("i") * 5 + sym("j"),), 0), arr, env)
        assert section.dims[0].stride == 1

    def test_overlap_requires_same_array(self):
        a = RegularSection("A", (DimSection(0, 5),))
        b = RegularSection("B", (DimSection(0, 5),))
        assert not a.overlaps(b)

    def test_whole_array(self):
        s = whole_array_section(Array("A", (4, 8)))
        assert s.dims[0].hi == 3 and s.dims[1].hi == 7


class TestSectionList:
    def test_dedup_contained(self):
        sl = SectionList("A", cap=4)
        sl.add(RegularSection("A", (DimSection(0, 100),)))
        sl.add(RegularSection("A", (DimSection(5, 10),)))
        assert len(sl.sections) == 1

    def test_cap_merges(self):
        sl = SectionList("A", cap=2)
        for lo in (0, 20, 40, 60):
            sl.add(RegularSection("A", (DimSection(lo, lo + 5),)))
        assert len(sl.sections) == 2
        assert sl.overlaps(RegularSection("A", (DimSection(60, 65),)))

    def test_overlap_queries(self):
        sl = SectionList("A")
        sl.add(RegularSection("A", (DimSection(0, 10),)))
        assert sl.overlaps(RegularSection("A", (DimSection(10, 20),)))
        assert not sl.overlaps(RegularSection("A", (DimSection(11, 20),)))

    def test_union_all(self):
        sl = SectionList("A")
        assert sl.union_all() is None
        sl.add(RegularSection("A", (DimSection(0, 5),)))
        sl.add(RegularSection("A", (DimSection(20, 30),)))
        u = sl.union_all()
        assert u.dims[0].lo == 0 and u.dims[0].hi == 30
