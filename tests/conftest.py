"""Suite-wide fixtures.

The CLI enables the on-disk artifact cache by default; redirect it into a
per-session temporary directory so tests never read from (or write into)
the developer's real ``~/.cache/repro`` — a warm personal cache would let
CLI tests pass without exercising the engine at all.
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path_factory, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.getbasetemp() / "repro-cache"))
