"""The public API surface: everything re-exported from ``repro`` works."""

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_star_import_namespace(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - deliberate
        for name in repro.__all__:
            assert name in namespace

    @pytest.mark.parametrize("module", [
        "repro.common", "repro.ir", "repro.compiler", "repro.trace",
        "repro.memsys", "repro.coherence", "repro.sim", "repro.overhead",
        "repro.workloads", "repro.experiments", "repro.cli", "repro.runtime",
    ])
    def test_subpackages_importable(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} needs a module docstring"

    def test_minimal_happy_path(self):
        """The README quickstart, condensed."""
        run = repro.prepare(repro.build_workload("ocean", size="small"),
                            repro.default_machine().with_(n_procs=2))
        results = repro.simulate_all(run, ("tpi", "hw"))
        assert results["tpi"].exec_cycles > 0
        assert "ocean / tpi" in results["tpi"].summary()
