"""Execution time normalized to the full-map directory."""

from conftest import run_once


class TestFig14:
    def test_normalized_execution_time(self, benchmark, bench_size):
        result = run_once(benchmark, "fig14_exectime", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name, base, sc, tpi, hw = row
            assert hw == 1.0
            # The headline: TPI comparable to the directory...
            assert tpi <= 2.5, f"{name}: TPI not comparable to HW"
            # ...while the schemes without runtime state trail far behind.
            assert base >= tpi, f"{name}: BASE cannot beat TPI"
            assert sc >= tpi * 0.9, f"{name}: SC cannot clearly beat TPI"
        # On at least one benchmark TPI essentially matches (or beats) HW.
        assert min(row[3] for row in result.rows) <= 1.3
