"""Shared fixtures for the per-figure benchmark suite.

Each bench regenerates one table/figure of the paper via
``repro.experiments`` and asserts the *shape* claims the paper makes
(who wins, by roughly what factor) — absolute numbers depend on the
simulated substrate and are recorded in EXPERIMENTS.md instead.

``--bench-size=paper`` runs the evaluation-scale workloads (slower);
the default ``small`` keeps the suite quick.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption("--bench-size", action="store", default="small",
                     choices=("small", "paper"),
                     help="workload size preset for the benchmark suite")


@pytest.fixture(scope="session")
def bench_size(request):
    return request.config.getoption("--bench-size")


@pytest.fixture(autouse=True)
def _hermetic_cache_dir(tmp_path_factory, monkeypatch):
    """Keep the runtime artifact cache out of ~/.cache during benchmarks."""
    monkeypatch.setenv("REPRO_CACHE_DIR",
                       str(tmp_path_factory.getbasetemp() / "repro-cache"))


@pytest.fixture
def runtime_cache_dir(tmp_path):
    """A fresh artifact-cache root for runtime benchmarks."""
    return tmp_path / "cache"


def run_once(benchmark, experiment, size):
    """Run an experiment exactly once under pytest-benchmark timing."""
    from repro.experiments import run_experiment

    return benchmark.pedantic(run_experiment, args=(experiment,),
                              kwargs={"size": size},
                              iterations=1, rounds=1)
