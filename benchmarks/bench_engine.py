"""Fast-engine speedup over the paper's Figure-11 grid.

Times the full miss-rate grid — every workload crossed with the four
write-through-era schemes (base, sc, tpi, hw) — under both engines and
reports the wall-clock ratio.  The committed ``BENCH_engine.json`` at the
repo root records this measurement at the paper size (the tentpole claim
is >= 3x there); CI re-runs the small grid with ``--min-speedup 2.0`` as
a regression gate.

``--jit`` adds a third leg: the fast engine with the compiled (numba)
kernel tier (``MachineConfig.jit="on"``).  When numba is not installed
the leg is recorded honestly as unavailable instead of silently timing
the fallback; the CI numba job runs ``--jit --min-jit-speedup 2.0`` to
gate the compiled tier's >= 2x over the uncompiled fast engine.

Standalone::

    python benchmarks/bench_engine.py --size default --rounds 3 \
        --out BENCH_engine.json
    python benchmarks/bench_engine.py --size small --min-speedup 2.0
    python benchmarks/bench_engine.py --size small --jit --min-jit-speedup 2.0

Under pytest the grid runs once as a recorded benchmark with a sanity
assertion only (the hard gate lives in the CI job, where rounds and host
are controlled).
"""

import argparse
import json
import platform
import sys
import time

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.sim.jit import numba_available
from repro.workloads import build_workload, workload_names

SCHEMES = ("base", "sc", "tpi", "hw")
ENGINES = ("reference", "fast")

#: The compiled-tier leg: the fast engine plus ``jit="on"``.  Not in
#: ENGINES because it only runs under ``--jit`` (and needs numba).
JIT_LEG = "fast+jit"


def _legs(jit: bool):
    """(label, machine) pairs to time; jit adds the compiled leg."""
    legs = [(engine, default_machine().with_(engine=engine))
            for engine in ENGINES]
    if jit:
        legs.append((JIT_LEG, default_machine().with_(engine="fast",
                                                      jit="on")))
    return legs


def time_grid(size: str, rounds: int = 3, jit: bool = False) -> dict:
    """Best-of-``rounds`` wall-clock per grid cell, per engine leg."""
    legs = _legs(jit)
    cells = {}
    totals = {label: 0.0 for label, _machine in legs}
    for name in workload_names():
        program = build_workload(name, size=size)
        for label, machine in legs:
            run = prepare(program, machine)
            for scheme in SCHEMES:
                if label == JIT_LEG:
                    simulate(run, scheme)  # compile outside the clock
                best = float("inf")
                for _ in range(rounds):
                    started = time.perf_counter()
                    simulate(run, scheme)
                    best = min(best, time.perf_counter() - started)
                cells[f"{name}/{scheme}/{label}"] = round(best, 4)
                totals[label] += best
    grid = {
        "grid": "fig11",
        "size": size,
        "rounds": rounds,
        "workloads": list(workload_names()),
        "schemes": list(SCHEMES),
        "cells": cells,
        "reference_s": round(totals["reference"], 3),
        "fast_s": round(totals["fast"], 3),
        "speedup": round(totals["reference"] / totals["fast"], 2),
    }
    if jit:
        grid["jit_s"] = round(totals[JIT_LEG], 3)
        grid["jit_speedup"] = round(totals["fast"] / totals[JIT_LEG], 2)
    return grid


def jit_stanza() -> dict:
    """Provenance of the compiled tier on this host (for the report)."""
    module, reason = numba_available()
    if module is None:
        return {"available": False, "reason": reason}
    return {"available": True, "numba": module.__version__}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", nargs="+", default=["default"],
                        choices=("small", "default", "large"),
                        help="workload size preset(s) to measure")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell (best is kept)")
    parser.add_argument("--jit", action="store_true",
                        help="also time the compiled (numba) tier; "
                             "recorded as unavailable when numba is absent")
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any measured grid is slower")
    parser.add_argument("--min-jit-speedup", type=float, default=None,
                        help="with --jit: exit non-zero if the compiled "
                             "tier beats the fast engine by less than this")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grids": {},
    }
    jit_ok = False
    if args.jit:
        report["jit"] = jit_stanza()
        jit_ok = report["jit"]["available"]
        if not jit_ok:
            print(f"jit leg unavailable: {report['jit']['reason']} "
                  f"(recording the two stock engines only)",
                  file=sys.stderr)
    failed = False
    for size in args.size:
        grid = time_grid(size, args.rounds, jit=jit_ok)
        report["grids"][size] = grid
        line = (f"fig11[{size}] reference={grid['reference_s']}s "
                f"fast={grid['fast_s']}s speedup={grid['speedup']}x")
        if jit_ok:
            line += (f" jit={grid['jit_s']}s "
                     f"jit_speedup={grid['jit_speedup']}x")
        print(line)
        if args.min_speedup is not None and grid["speedup"] < args.min_speedup:
            print(f"FAIL: speedup {grid['speedup']}x is below the "
                  f"{args.min_speedup}x floor", file=sys.stderr)
            failed = True
        if args.min_jit_speedup is not None:
            if not jit_ok:
                print("FAIL: --min-jit-speedup requires numba",
                      file=sys.stderr)
                failed = True
            elif grid["jit_speedup"] < args.min_jit_speedup:
                print(f"FAIL: jit speedup {grid['jit_speedup']}x is below "
                      f"the {args.min_jit_speedup}x floor", file=sys.stderr)
                failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestEngineBench:
    def test_fig11_grid_speedup(self, benchmark, bench_size):
        size = "default" if bench_size == "paper" else "small"
        grid = benchmark.pedantic(time_grid, args=(size, 2),
                                  iterations=1, rounds=1)
        # Sanity only: the calibrated >= 2x / >= 3x gates run in the
        # dedicated CI benchmark job and BENCH_engine.json.
        assert grid["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
