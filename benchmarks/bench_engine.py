"""Fast-engine speedup over the paper's Figure-11 grid.

Times the full miss-rate grid — every workload crossed with the four
write-through-era schemes (base, sc, tpi, hw) — under both engines and
reports the wall-clock ratio.  The committed ``BENCH_engine.json`` at the
repo root records this measurement at the paper size (the tentpole claim
is >= 3x there); CI re-runs the small grid with ``--min-speedup 2.0`` as
a regression gate.

Standalone::

    python benchmarks/bench_engine.py --size default --rounds 3 \
        --out BENCH_engine.json
    python benchmarks/bench_engine.py --size small --min-speedup 2.0

Under pytest the grid runs once as a recorded benchmark with a sanity
assertion only (the hard gate lives in the CI job, where rounds and host
are controlled).
"""

import argparse
import json
import platform
import sys
import time

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.workloads import build_workload, workload_names

SCHEMES = ("base", "sc", "tpi", "hw")
ENGINES = ("reference", "fast")


def time_grid(size: str, rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall-clock per grid cell, per engine."""
    cells = {}
    totals = {engine: 0.0 for engine in ENGINES}
    for name in workload_names():
        program = build_workload(name, size=size)
        for engine in ENGINES:
            run = prepare(program, default_machine().with_(engine=engine))
            for scheme in SCHEMES:
                best = float("inf")
                for _ in range(rounds):
                    started = time.perf_counter()
                    simulate(run, scheme)
                    best = min(best, time.perf_counter() - started)
                cells[f"{name}/{scheme}/{engine}"] = round(best, 4)
                totals[engine] += best
    return {
        "grid": "fig11",
        "size": size,
        "rounds": rounds,
        "workloads": list(workload_names()),
        "schemes": list(SCHEMES),
        "cells": cells,
        "reference_s": round(totals["reference"], 3),
        "fast_s": round(totals["fast"], 3),
        "speedup": round(totals["reference"] / totals["fast"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", nargs="+", default=["default"],
                        choices=("small", "default", "large"),
                        help="workload size preset(s) to measure")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell (best is kept)")
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any measured grid is slower")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grids": {},
    }
    failed = False
    for size in args.size:
        grid = time_grid(size, args.rounds)
        report["grids"][size] = grid
        print(f"fig11[{size}] reference={grid['reference_s']}s "
              f"fast={grid['fast_s']}s speedup={grid['speedup']}x")
        if args.min_speedup is not None and grid["speedup"] < args.min_speedup:
            print(f"FAIL: speedup {grid['speedup']}x is below the "
                  f"{args.min_speedup}x floor", file=sys.stderr)
            failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestEngineBench:
    def test_fig11_grid_speedup(self, benchmark, bench_size):
        size = "default" if bench_size == "paper" else "small"
        grid = benchmark.pedantic(time_grid, args=(size, 2),
                                  iterations=1, rounds=1)
        # Sanity only: the calibrated >= 2x / >= 3x gates run in the
        # dedicated CI benchmark job and BENCH_engine.json.
        assert grid["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
