"""Write-buffer-as-cache ablation (the paper's TRFD write-traffic fix)."""

from conftest import run_once


class TestFig17:
    def test_coalescing_write_buffer(self, benchmark, bench_size):
        result = run_once(benchmark, "fig17_wbuffer", bench_size)
        print("\n" + result.render())
        reductions = dict(zip(result.column("workload"),
                              result.column("reduction %")))
        # Coalescing never increases traffic...
        assert all(v >= -0.01 for v in reductions.values())
        # ...and removes a large share of TRFD's redundant writes.
        assert reductions["trfd"] >= 30.0
        assert reductions["trfd"] == max(reductions.values())
