"""Per-epoch timeline figure."""

from conftest import run_once


class TestFig24:
    def test_timeline_shapes(self, benchmark, bench_size):
        result = run_once(benchmark, "fig24_timeline", bench_size)
        print("\n" + result.render())
        assert len(result.rows) >= 5
        # Group sampled epochs by phase label.
        by_label = {}
        for row in result.rows:
            _, label, tpi_miss, tpi_rho, hw_miss, hw_rho, cycles = row
            if label != "serial":
                # "serial" lumps distinct master phases; only named parallel
                # phases are comparable across instances.
                by_label.setdefault(label, []).append(tpi_miss)
            assert tpi_rho >= 0.0 and cycles > 0
        repeated = {label: misses for label, misses in by_label.items()
                    if len(misses) >= 2}
        assert repeated, "need at least one phase sampled twice"
        # Phases reach a steady state: the last two instances of each
        # repeated phase agree closely.  (The *first* instance is not
        # always the worst — e.g. OCEAN's vorticity sweep reads the
        # chunk-aligned init data more cheaply than the steady-state
        # leapfrog output.)
        for label, misses in repeated.items():
            if len(misses) >= 3:
                assert abs(misses[-1] - misses[-2]) <= (
                    0.15 * max(misses[-2], 1.0)), label
        # At least one phase improves substantially as caches warm.
        assert any(misses[-1] <= 0.7 * misses[0] + 1e-9
                   for misses in repeated.values())
        # The load estimate is live (positive somewhere).
        assert max(result.column("TPI rho")) > 0.0
