"""Trace-generation speedup from the columnar/vectorized front end.

Times trace generation for every Figure-11 workload under the
per-iteration interpreter (:func:`repro.trace.generate_trace`) and the
vectorized columnar front end (:func:`repro.trace.generate_columnar`)
and reports the wall-clock ratio.  The committed ``BENCH_frontend.json``
at the repo root records this measurement; CI re-runs the small grid
with ``--min-speedup 2.0`` as a regression gate.

Standalone::

    python benchmarks/bench_frontend.py --size small default --rounds 3 \
        --out BENCH_frontend.json
    python benchmarks/bench_frontend.py --size small --min-speedup 2.0

Under pytest the grid runs once as a recorded benchmark with a sanity
assertion only (the hard gate lives in the CI job, where rounds and host
are controlled).
"""

import argparse
import json
import platform
import sys
import time

from repro.common.config import default_machine
from repro.trace import generate_columnar, generate_trace
from repro.workloads import build_workload, workload_names

FRONTENDS = ("interpreter", "columnar")
_GENERATORS = {"interpreter": generate_trace, "columnar": generate_columnar}


def time_grid(size: str, rounds: int = 3) -> dict:
    """Best-of-``rounds`` trace-generation wall-clock per workload."""
    machine = default_machine()
    cells = {}
    totals = {frontend: 0.0 for frontend in FRONTENDS}
    expanded = {}
    for name in workload_names():
        program = build_workload(name, size=size)
        for frontend in FRONTENDS:
            generate = _GENERATORS[frontend]
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                trace = generate(program, machine)
                best = min(best, time.perf_counter() - started)
            cells[f"{name}/{frontend}"] = round(best, 4)
            totals[frontend] += best
            if frontend == "columnar":
                expanded[name] = (f"{trace.n_expanded_epochs}"
                                  f"/{len(trace.epochs)}")
    return {
        "grid": "fig11",
        "size": size,
        "rounds": rounds,
        "workloads": list(workload_names()),
        "cells": cells,
        "expanded_epochs": expanded,
        "interpreter_s": round(totals["interpreter"], 3),
        "columnar_s": round(totals["columnar"], 3),
        "speedup": round(totals["interpreter"] / totals["columnar"], 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", nargs="+", default=["default"],
                        choices=("small", "default", "large"),
                        help="workload size preset(s) to measure")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per cell (best is kept)")
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any measured grid is slower")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grids": {},
    }
    failed = False
    for size in args.size:
        grid = time_grid(size, args.rounds)
        report["grids"][size] = grid
        print(f"fig11[{size}] interpreter={grid['interpreter_s']}s "
              f"columnar={grid['columnar_s']}s speedup={grid['speedup']}x")
        if args.min_speedup is not None and grid["speedup"] < args.min_speedup:
            print(f"FAIL: speedup {grid['speedup']}x is below the "
                  f"{args.min_speedup}x floor", file=sys.stderr)
            failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestFrontendBench:
    def test_fig11_tracegen_speedup(self, benchmark, bench_size):
        size = "default" if bench_size == "paper" else "small"
        grid = benchmark.pedantic(time_grid, args=(size, 2),
                                  iterations=1, rounds=1)
        # Sanity only: the calibrated >= 2x gate runs in the dedicated CI
        # benchmark job and BENCH_frontend.json.
        assert grid["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
