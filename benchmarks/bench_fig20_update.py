"""Write-update directory extension."""

from conftest import run_once


class TestFig20:
    def test_update_protocol_tradeoff(self, benchmark, bench_size):
        result = run_once(benchmark, "fig20_update", bench_size)
        print("\n" + result.render())
        merged = {}
        for row in result.rows:
            name, hw_miss, upd_miss, hw_wr, upd_wr, updc_wr, merge_pct = row
            # Updates never invalidate: the update protocol's miss rate is
            # never worse than the invalidation directory's.
            assert upd_miss <= hw_miss + 0.01, name
            # ...and it pays for that in write/update traffic.
            assert upd_wr > hw_wr * 0.9, name
            merged[name] = merge_pct
        # The paper's remark: the write-cache technique removes redundant
        # update traffic — most effective on TRFD.
        assert merged["trfd"] == max(merged.values())
        assert merged["trfd"] > 20.0
