"""Timetag-width sensitivity: "a 4-bit or 8-bit timetag is large enough"."""

from conftest import run_once


class TestFig15:
    def test_timetag_sensitivity(self, benchmark, bench_size):
        result = run_once(benchmark, "fig15_timetag", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name = row[0]
            k2, k3, k4, k6, k8 = row[1:6]
            flush4 = row[6]
            resets_k2, resets_k8 = row[7], row[8]
            # Monotone non-increasing in k (more tag bits never hurt)...
            assert k2 >= k3 - 0.01 and k3 >= k4 - 0.01
            assert k4 >= k6 - 0.01 and k6 >= k8 - 0.01
            # ...and saturated by k = 6..8 (the paper's claim for 4..8;
            # our epoch counts per run are modest, so 6 bits always
            # suffice and 8 adds nothing).
            assert abs(k6 - k8) <= 0.02 * max(k8, 1.0)
            # Two-phase resets fire often at k=2, never at k=8 here.
            assert resets_k2 > resets_k8
            # Flush-on-wrap clears everything but fires half as often
            # (period 2^k-1 vs 2^(k-1)), so neither policy dominates on
            # miss rate; they must land close at equal k.  The paper's
            # real argument for two-phase is the incremental (non-bursty)
            # invalidation, which the fixed stall model charges equally.
            assert abs(flush4 - k4) <= 0.15 * max(k4, 1.0), name
