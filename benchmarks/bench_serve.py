"""Serve-layer load benchmark: Zipfian request mix over the fig11 grid.

Drives a real :class:`repro.serve.ServeServer` (socket and all) with a
load generator whose request population is the paper's Figure 11 grid —
every workload simulated under every default scheme — and whose request
*frequencies* follow a Zipf(alpha ~= 1.1) distribution, the shape of
repeated paper-grid traffic: a handful of hot configurations dominate,
a long tail stays cold.  Reported:

* p50/p99 request latency (from the client's wall clock);
* steady-state cache hit rate (requests answered without touching the
  worker pool: cache hits + coalesced waiters), measured after a warmup
  pass has populated the artifact cache.

The committed ``BENCH_serve.json`` at the repo root records the
measurement; CI replays a smaller mix with ``--min-hit-rate 0.9`` as a
regression gate on the read-through/coalescing path.

Standalone::

    python benchmarks/bench_serve.py --requests 400 --out BENCH_serve.json
    python benchmarks/bench_serve.py --requests 200 --min-hit-rate 0.9
"""

import argparse
import asyncio
import json
import platform
import sys
import time
import urllib.request

import numpy as np

WORKLOADS = ("spec77", "ocean", "flo52", "qcd2", "trfd", "arc2d")
SCHEMES = ("base", "sc", "tpi", "hw")
ALPHA = 1.1
PROCS = 4


def request_population():
    """The fig11 grid as distinct /simulate request bodies."""
    return [{"workload": workload, "size": "small", "procs": PROCS,
             "schemes": [scheme]}
            for workload in WORKLOADS for scheme in SCHEMES]


def zipf_mix(population_size: int, requests: int, seed: int) -> np.ndarray:
    """Zipf(ALPHA) ranks over a finite population, hot ranks shuffled in."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, population_size + 1, dtype=float)
    weights = ranks ** -ALPHA
    weights /= weights.sum()
    order = rng.permutation(population_size)  # which config is "rank 1"
    return order[rng.choice(population_size, size=requests, p=weights)]


async def _drive(server, bodies, concurrency: int):
    """Issue the request list against the server; per-request latencies."""
    loop = asyncio.get_running_loop()
    gate = asyncio.Semaphore(concurrency)
    latencies = [0.0] * len(bodies)

    def post(body):
        data = json.dumps(body).encode()
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/simulate", data=data,
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            response.read()

    async def one(index, body):
        async with gate:
            started = time.perf_counter()
            await loop.run_in_executor(None, post, body)
            latencies[index] = time.perf_counter() - started

    await asyncio.gather(*[one(index, body)
                           for index, body in enumerate(bodies)])
    return latencies


def run_load(requests: int, seed: int = 1996, concurrency: int = 8) -> dict:
    """Warm-up pass over the grid, then the Zipfian steady-state mix."""
    from repro.common import percentile
    from repro.runtime import ShardedCache
    from repro.serve import ServeConfig, ServeServer, SimulationService

    import tempfile

    population = request_population()
    mix = zipf_mix(len(population), requests, seed)

    with tempfile.TemporaryDirectory() as cache_dir:
        service = SimulationService(
            cache=ShardedCache(cache_dir, peers=[]),
            config=ServeConfig(jobs=1, dispatchers=2))
        server = ServeServer(service, host="127.0.0.1", port=0)

        async def go():
            await server.start()
            # Warmup: one pass over the whole population fills the cache
            # (this is the cold half a fresh deployment pays exactly once).
            warm_started = time.perf_counter()
            await _drive(server, population, concurrency)
            warmup_s = time.perf_counter() - warm_started
            warm_dispatched = service.dispatched
            baseline = service.telemetry.serve_requests

            # Steady state: the Zipfian mix, measured.
            bodies = [population[rank] for rank in mix]
            latencies = await _drive(server, bodies, concurrency)
            stats = service.stats_payload()
            await server.shutdown()
            measured = stats["requests"]["total"] - baseline
            hot = (stats["requests"]["hits"] + stats["requests"]["coalesced"]
                   - (baseline - warm_dispatched))
            return warmup_s, latencies, stats, measured, hot

        warmup_s, latencies, stats, measured, hot = asyncio.run(go())
        hit_rate = hot / measured if measured else 0.0
        return {
            "grid": "fig11",
            "alpha": ALPHA,
            "population": len(population),
            "requests": requests,
            "concurrency": concurrency,
            "warmup_s": round(warmup_s, 3),
            "steady": {
                "p50_ms": round(1e3 * percentile(latencies, 50), 3),
                "p99_ms": round(1e3 * percentile(latencies, 99), 3),
                "mean_ms": round(1e3 * sum(latencies) / len(latencies), 3),
                "hit_rate": round(hit_rate, 4),
            },
            "server": {
                "dispatched": stats["requests"]["dispatched"],
                "hits": stats["requests"]["hits"],
                "coalesced": stats["requests"]["coalesced"],
                "errors": stats["requests"]["errors"],
            },
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=400,
                        help="steady-state requests after warmup")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="in-flight client requests")
    parser.add_argument("--seed", type=int, default=1996)
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-hit-rate", type=float, default=None,
                        help="exit non-zero if the steady-state hit rate "
                             "is below this floor")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        **run_load(args.requests, seed=args.seed,
                   concurrency=args.concurrency),
    }
    steady = report["steady"]
    print(f"serve[fig11] {report['requests']} requests: "
          f"p50={steady['p50_ms']}ms p99={steady['p99_ms']}ms "
          f"hit-rate={steady['hit_rate']:.1%} "
          f"({report['server']['dispatched']} simulations dispatched)")
    failed = False
    if args.min_hit_rate is not None and steady["hit_rate"] < args.min_hit_rate:
        print(f"FAIL: hit rate {steady['hit_rate']:.1%} is below the "
              f"{args.min_hit_rate:.0%} floor", file=sys.stderr)
        failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestServeBench:
    def test_zipfian_mix_hit_rate(self, benchmark, bench_size):
        requests = 120 if bench_size == "small" else 400
        report = benchmark.pedantic(run_load, args=(requests,),
                                    iterations=1, rounds=1)
        # Sanity only: the calibrated >= 90% gate runs in the dedicated
        # CI serve job and BENCH_serve.json.
        assert report["steady"]["hit_rate"] > 0.5
        assert report["server"]["errors"] == 0


if __name__ == "__main__":
    sys.exit(main())
