"""Cache geometry sweep."""

from conftest import run_once


class TestFig21:
    def test_cache_sweep_shapes(self, benchmark, bench_size):
        result = run_once(benchmark, "fig21_cache", bench_size)
        print("\n" + result.render())
        capacity_cliffs = 0
        for row in result.rows:
            name, scheme, kb16, kb64, kb256, way4 = row
            # Larger caches never hurt.
            assert kb16 >= kb64 - 0.01 >= kb256 - 0.02, (name, scheme)
            # 4-way at 64 KB never hurts vs direct-mapped at 64 KB.
            assert way4 <= kb64 + 0.01, (name, scheme)
            if kb16 > kb256 + 0.5:
                capacity_cliffs += 1
        # The enlarged working sets show real capacity misses somewhere.
        assert capacity_cliffs >= 3
