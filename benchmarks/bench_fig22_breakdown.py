"""Execution-time breakdown figure."""

from conftest import run_once


class TestFig22:
    def test_breakdown_shapes(self, benchmark, bench_size):
        result = run_once(benchmark, "fig22_breakdown", bench_size)
        print("\n" + result.render())
        per = {(row[0], row[1]): row for row in result.rows}
        workloads = sorted({row[0] for row in result.rows})
        for name in workloads:
            for scheme in ("BASE", "SC", "TPI", "HW"):
                row = per[(name, scheme)]
                total = sum(row[2:])
                # The engine accounts every processor-cycle exactly once
                # (write stalls are zero under weak consistency).
                assert 99.0 <= total <= 100.5, (name, scheme, total)
            # Busy fraction ordering: better schemes waste fewer cycles.
            assert per[(name, "BASE")][2] <= per[(name, "TPI")][2] + 1.0
            assert per[(name, "SC")][2] <= per[(name, "TPI")][2] + 1.0
            # Read stalls dominate BASE's time.
            base_row = per[(name, "BASE")]
            assert base_row[3] > base_row[2]  # read_stall > busy
