"""End-to-end smoke for ``repro serve`` — the CI serve job.

Boots the real CLI entrypoint (``python -m repro serve``) as a
subprocess, then checks the two serve guarantees from the outside:

1. **differential** — a ``POST /sweep`` response is byte-identical to
   the warm ``repro sweep --json`` file for the same fingerprints
   (CLI and server share one artifact cache here, as N hosts would
   share a peer tier);
2. **coalescing** — concurrent identical cold requests are collapsed:
   the ``/stats`` coalesced counter rises and the dispatched counter
   shows one simulation per distinct fingerprint.

Finally the server is asked to shut down (SIGTERM) and must exit 0
after draining.  Run locally::

    python benchmarks/serve_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

SWEEP_ARGS = ["sweep", "ocean", "--axis", "line=1,4", "--scheme", "tpi",
              "--size", "small"]
SWEEP_BODY = {"workload": "ocean", "axes": ["line=1,4"], "schemes": ["tpi"],
              "size": "small"}
COLD_BODY = {"workload": "trfd", "axes": ["k=2,3"], "schemes": ["tpi"],
             "size": "small"}
SIM_BODY = {"workload": "ocean", "size": "small", "procs": 4,
            "schemes": ["tpi"]}


def post(port, path, body):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.read()


def get(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as response:
        return response.read()


def wait_ready(port, process, deadline_s=30.0):
    started = time.time()
    while time.time() - started < deadline_s:
        if process.poll() is not None:
            raise SystemExit(f"server exited early with {process.returncode}")
        try:
            if json.loads(get(port, "/healthz"))["status"] == "ok":
                return
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise SystemExit("server never became healthy")


def main() -> int:
    port = int(os.environ.get("SERVE_SMOKE_PORT", "8123"))
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)

        # Warm the shared cache through the CLI path (twice: the second,
        # fully warm run is the deterministic payload the server must hit).
        cli_json = os.path.join(tmp, "sweep.json")
        for _ in range(2):
            subprocess.run([sys.executable, "-m", "repro", *SWEEP_ARGS,
                            "--json", cli_json], env=env, check=True,
                           stdout=subprocess.DEVNULL)
        with open(cli_json, "rb") as handle:
            cli_bytes = handle.read()

        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
             "--port", str(port), "--cache-dir", cache_dir], env=env)
        try:
            wait_ready(port, server)

            # 1. Differential: server bytes == warm CLI --json bytes.
            served = post(port, "/sweep", SWEEP_BODY)
            assert served == cli_bytes, (
                "server /sweep response differs from CLI --json:\n"
                f"cli: {cli_bytes[:200]!r}...\nsrv: {served[:200]!r}...")

            # and a simulate round-trip for good measure
            simulated = json.loads(post(port, "/simulate", SIM_BODY))
            assert "tpi" in simulated, simulated

            # 2. Coalescing: identical *cold* requests collapse to one
            # simulation per distinct fingerprint.
            with ThreadPoolExecutor(max_workers=4) as pool:
                payloads = list(pool.map(
                    lambda _: post(port, "/sweep", COLD_BODY), range(4)))
            assert len(set(payloads)) == 1, "coalesced responses diverged"

            stats = json.loads(get(port, "/stats"))["requests"]
            assert stats["coalesced"] > 0, stats
            # duplicates never dispatched: cold fingerprints cost one
            # simulation each (sweep above was warm, simulate + COLD_BODY
            # are the only cold requests).
            assert stats["dispatched"] <= 2, stats
            assert stats["errors"] == 0, stats
            print("serve smoke OK:", stats)
        finally:
            server.send_signal(signal.SIGTERM)
            code = server.wait(timeout=60)
        assert code == 0, f"server exited {code} after SIGTERM"
        print("graceful shutdown OK (exit 0)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
