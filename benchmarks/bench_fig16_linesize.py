"""Line-size sweep: spatial locality vs false sharing."""

from conftest import run_once


class TestFig16:
    def test_line_size_effects(self, benchmark, bench_size):
        result = run_once(benchmark, "fig16_linesize", bench_size)
        print("\n" + result.render())
        per = {(row[0], row[1]): row for row in result.rows}
        workloads = sorted({row[0] for row in result.rows})
        hw_false_grew = 0
        for name in workloads:
            tpi = per[(name, "TPI")]
            hw = per[(name, "HW")]
            # Single-word lines: no false sharing anywhere, by construction.
            assert hw[6] == 0.0 and tpi[6] == 0.0
            # TPI never false-shares at any line size.
            assert tpi[7] == 0.0
            # Going 1 word -> 4 words buys spatial locality for TPI.
            assert tpi[3] <= tpi[2] + 0.01
            if hw[7] > 0:
                hw_false_grew += 1
        # On several benchmarks the directory's false sharing appears at
        # 64-byte lines (the paper's multi-word-line effect).
        assert hw_false_grew >= 2
