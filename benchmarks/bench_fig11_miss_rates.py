"""Figure 11 — miss rates of BASE/SC/TPI/HW on the six benchmarks."""

from conftest import run_once


class TestFig11:
    def test_miss_rate_ordering(self, benchmark, bench_size):
        result = run_once(benchmark, "fig11_miss_rates", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name, base, sc, tpi, hw = row
            # The paper's consistent ordering on every benchmark.
            assert base >= sc >= tpi, f"{name}: BASE >= SC >= TPI violated"
            assert tpi >= hw * 0.5, f"{name}: TPI implausibly below HW"
            # "Comparable": TPI within a small factor of the directory,
            # not the order-of-magnitude gap of SC/BASE.
            assert tpi <= max(4.0 * hw, 5.0), f"{name}: TPI not comparable to HW"
            assert base >= 2.0 * tpi, f"{name}: caching should crush BASE"
