"""Runtime-engine benchmarks: serial vs parallel vs warm-cache sweeps.

Times one 2-axis sweep (line size x timetag width, two schemes) three
ways — ``jobs=1`` cold, ``jobs=N`` cold, and ``jobs=N`` against a warm
artifact cache — so the executor's scaling and the cache's payoff are
tracked in the bench trajectory alongside the paper figures.  Relative
speed of the parallel run depends on the host's core count, so only the
cache's *work elimination* (zero trace generations when warm) is asserted,
not wall-clock ratios.
"""

import os

from repro.common.config import default_machine
from repro.runtime import ArtifactCache, Telemetry
from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits
from repro.workloads import build_workload

N_JOBS = min(4, os.cpu_count() or 1)
BASE = default_machine().with_(n_procs=8)


def _sweep(size):
    sweep = Sweep(build_workload("ocean", size=size), schemes=("tpi", "hw"),
                  base=BASE)
    sweep.add_axis("line", axis_cache_lines([1, 4]))
    sweep.add_axis("k", axis_timetag_bits([2, 8]))
    return sweep


def _size(bench_size):
    return "small" if bench_size == "small" else "default"


class TestRuntimeBench:
    def test_sweep_serial_cold(self, benchmark, bench_size):
        size = _size(bench_size)
        points = benchmark.pedantic(lambda: _sweep(size).run(jobs=1),
                                    iterations=1, rounds=3)
        assert len(points) == 8

    def test_sweep_parallel_cold(self, benchmark, bench_size):
        size = _size(bench_size)
        points = benchmark.pedantic(lambda: _sweep(size).run(jobs=N_JOBS),
                                    iterations=1, rounds=3)
        assert len(points) == 8

    def test_sweep_parallel_warm_cache(self, benchmark, bench_size,
                                       runtime_cache_dir):
        size = _size(bench_size)
        cache = ArtifactCache(runtime_cache_dir)
        _sweep(size).run(jobs=N_JOBS, cache=cache)  # prime

        def warm():
            telemetry = Telemetry()
            points = _sweep(size).run(jobs=N_JOBS, cache=cache,
                                      telemetry=telemetry)
            return points, telemetry

        (points, telemetry) = benchmark.pedantic(warm, iterations=1, rounds=3)
        assert len(points) == 8
        # The whole point of the cache: a warm run re-runs no front end.
        assert telemetry.traces_generated == 0
        assert telemetry.result_hits == 8
