"""Consistency-model ablation (footnote 11 of the paper)."""

from conftest import run_once


class TestFig19:
    def test_sequential_consistency_costs(self, benchmark, bench_size):
        result = run_once(benchmark, "fig19_consistency", bench_size)
        print("\n" + result.render())
        tpi_worst = hw_worst = 0.0
        for row in result.rows:
            name, sc, tpi, hw = row
            # Nothing gets faster under a stronger model.
            assert sc >= 0.99 and tpi >= 0.99 and hw >= 0.99, name
            tpi_worst = max(tpi_worst, tpi)
            hw_worst = max(hw_worst, hw)
        # The paper's footnote: write-through schemes are hit much harder
        # by sequential consistency than the write-back directory.
        assert tpi_worst > 1.5 * hw_worst
        # On a majority of benchmarks TPI's slowdown exceeds HW's.
        wins = sum(1 for row in result.rows if row[2] > row[3])
        assert wins >= len(result.rows) // 2 + 1
