"""The average-miss-latency table (TPI vs HW, 16 B vs 64 B lines)."""

from conftest import run_once


class TestTabLatency:
    def test_latency_shapes(self, benchmark, bench_size):
        result = run_once(benchmark, "tab_latency", bench_size)
        print("\n" + result.render())
        tpi16 = result.column("TPI 16B")
        tpi64 = result.column("TPI 64B")
        hw16 = result.column("HW 16B")
        hw64 = result.column("HW 64B")
        names = result.column("workload")

        # (a) TPI's latency is near-constant across workloads (its misses
        # are plain memory fetches) — paper: 136.0..136.2.
        assert max(tpi16) - min(tpi16) <= 0.1 * min(tpi16)
        # ...and in the right ballpark of the paper's 136 cycles.
        assert all(115 <= v <= 165 for v in tpi16)

        # (b) HW never beats TPI on miss latency, and directory
        # transactions visibly elevate HW's latency on several benchmarks
        # (the paper sees the elevation on QCD2/TRFD; our synthetic
        # kernels concentrate directory contention on FLO52/OCEAN instead
        # — the mechanism, not the per-benchmark ranking, is the claim;
        # see EXPERIMENTS.md).
        gaps = {name: hw - tpi
                for name, hw, tpi in zip(names, hw16, tpi16)}
        assert all(gap >= -1.0 for gap in gaps.values())
        assert sum(1 for gap in gaps.values() if gap > 2.0) >= 3
        assert gaps["qcd2"] >= 0 and gaps["trfd"] >= 0

        # (c) 64-byte lines cost a multiple of the 16-byte latency.
        for t16, t64 in zip(tpi16, tpi64):
            assert 1.5 * t16 <= t64 <= 4.0 * t16
        for h16, h64 in zip(hw16, hw64):
            assert h64 > h16
