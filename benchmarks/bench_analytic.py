"""Benches for the analytic artifacts: Figure 5 (storage) and Figure 8
(default parameters)."""

from conftest import run_once


class TestFig5Storage:
    def test_fig5(self, benchmark):
        result = run_once(benchmark, "fig5_storage", "paper")
        print("\n" + result.render())
        sram = dict(zip(result.column("scheme"),
                        result.column("cache SRAM (MB)")))
        dram = dict(zip(result.column("scheme"),
                        result.column("memory DRAM (GB)")))
        # Paper totals: directory 4 MB SRAM, TPI 64 MB SRAM, full-map
        # ~64.5 GB DRAM, TPI no DRAM at all.
        assert sram["full-map"] == 4.0
        assert sram["two-phase invalidation"] == 64.0
        assert 60.0 <= dram["full-map"] <= 70.0
        assert dram["two-phase invalidation"] == 0.0
        assert dram["LimitLess DIR_10"] < dram["full-map"] / 20


class TestFig8Params:
    def test_fig8(self, benchmark):
        result = run_once(benchmark, "fig8_params", "paper")
        print("\n" + result.render())
        params = dict(result.rows)
        assert params["number of processors"] == "16"
        assert params["cache size"] == "64 KB, direct-mapped"
        assert params["line size"] == "4 32-bit word"
        assert params["cache line base miss latency"] == "100 CPU cycles"
        assert params["timetag size"] == "8-bits"
        assert params["two-phase reset"] == "128 cycles"
