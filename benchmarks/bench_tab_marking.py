"""Compiler marking statistics: the value of interprocedural analysis."""

from conftest import run_once


class TestTabMarking:
    def test_analysis_precision_ordering(self, benchmark, bench_size):
        result = run_once(benchmark, "tab_marking", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name, sites, inline, summary, none, dyn_tr, tr_hit = row
            assert sites > 0
            # Precision ordering: the full analysis marks no more sites
            # than the summary mode, which marks no more than the
            # region-based (procedure-boundary-kill) mode.
            assert inline <= summary + 1e-9, name
            assert summary <= none + 1e-9, name
            assert 0 < dyn_tr <= 100.0, name
            # The timetag hardware recovers locality on every benchmark:
            # a healthy share of Time-Reads hit in the cache.
            assert tr_hit > 20.0, name
        assert any(row[2] < row[4] for row in result.rows), \
            "interprocedural analysis should pay off on some benchmark"
        assert all(row[2] > 0 for row in result.rows)
