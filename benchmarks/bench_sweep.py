"""Gang-simulation speedup on a config-axis sweep (fig15 + fig16 shape).

Times a timetag-width x line-size grid — the back-end-only sweep the
paper's Figures 15 and 16 run — two ways:

* **per-cell**: every grid cell prepares its own front end and simulates
  solo on the fast engine (the pre-gang behavior, where the machine
  fingerprint included back-end fields and no trace was shared);
* **ganged**: one :class:`Sweep.run(jobs=1)` per workload, where the
  fingerprint split puts every cell on one shared columnar trace and the
  executor gang-primes the per-geometry analyses once.

A second grid does the same along the **scheme axis**: all seven
coherence schemes over one workload, per-scheme solo (each scheme
builds, prepares, and simulates on its own, exactly what seven
``repro sweep --scheme X`` invocations cost) versus one
:func:`repro.sim.gang.run_gang` pass over a single prepared trace.

The committed ``BENCH_sweep.json`` at the repo root records both
measurements; CI re-runs the small grids with ``--min-speedup 2.0``
(config axis) and ``--min-scheme-speedup 1.5`` (scheme axis) as
regression gates.

Standalone::

    python benchmarks/bench_sweep.py --size small --rounds 3 \
        --out BENCH_sweep.json
    python benchmarks/bench_sweep.py --size small --min-speedup 2.0 \
        --min-scheme-speedup 1.5

Under pytest each grid runs once as a recorded benchmark with a sanity
assertion only (the hard gates live in the CI job, where rounds and host
are controlled).
"""

import argparse
import json
import platform
import sys
import time

from repro.common.config import default_machine
from repro.sim import prepare, simulate
from repro.sim.gang import GangMember, run_gang
from repro.sim.sweep import Sweep, axis_cache_lines, axis_timetag_bits
from repro.workloads import build_workload

WORKLOADS = ("ocean", "trfd")
SCHEMES = ("tpi", "hw")
TIMETAG_BITS = (2, 3, 4, 6, 8)  # fig15's axis
LINE_WORDS = (1, 2, 4, 8)       # fig16's axis (4B..32B lines)

#: The scheme-axis gang broadcasts every coherence scheme over one trace.
GANG_WORKLOADS = ("ocean", "flo52", "qcd2")
GANG_SCHEMES = ("tpi", "hw", "sc", "base", "update", "tardis", "snoop")


def _sweep(program):
    sweep = Sweep(program, schemes=SCHEMES, base=default_machine())
    sweep.add_axis("k", axis_timetag_bits(TIMETAG_BITS))
    sweep.add_axis("line", axis_cache_lines(LINE_WORDS))
    return sweep


def _cell_machines():
    base = default_machine()
    return [axis[1]((k_axis[1](base)))
            for k_axis in axis_timetag_bits(TIMETAG_BITS)
            for axis in axis_cache_lines(LINE_WORDS)]


def time_grid(size: str, rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall-clock for the whole grid, per strategy."""
    totals = {"per_cell": float("inf"), "ganged": float("inf")}
    per_workload = {}
    for name in WORKLOADS:
        program = build_workload(name, size=size)
        machines = _cell_machines()
        best_cell = float("inf")
        best_gang = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            for machine in machines:
                run = prepare(program, machine)
                for scheme in SCHEMES:
                    simulate(run, scheme)
            best_cell = min(best_cell, time.perf_counter() - started)

            started = time.perf_counter()
            _sweep(program).run(jobs=1)
            best_gang = min(best_gang, time.perf_counter() - started)
        per_workload[name] = {"per_cell_s": round(best_cell, 4),
                              "ganged_s": round(best_gang, 4),
                              "speedup": round(best_cell / best_gang, 2)}
    total_cell = sum(w["per_cell_s"] for w in per_workload.values())
    total_gang = sum(w["ganged_s"] for w in per_workload.values())
    return {
        "grid": "fig15+fig16",
        "size": size,
        "rounds": rounds,
        "workloads": list(WORKLOADS),
        "schemes": list(SCHEMES),
        "timetag_bits": list(TIMETAG_BITS),
        "line_words": list(LINE_WORDS),
        "cells_per_workload": len(TIMETAG_BITS) * len(LINE_WORDS) * len(SCHEMES),
        "per_workload": per_workload,
        "per_cell_s": round(total_cell, 3),
        "ganged_s": round(total_gang, 3),
        "speedup": round(total_cell / total_gang, 2),
    }


def time_scheme_gang(size: str, rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall-clock for the scheme axis, per strategy.

    The solo side is deliberately end-to-end per scheme — build, prepare,
    simulate — because that is what running the schemes one at a time
    actually costs: the front-end passes are scheme-independent, which is
    precisely the redundancy the gang removes.
    """
    per_workload = {}
    for name in GANG_WORKLOADS:
        best_solo = float("inf")
        best_gang = float("inf")
        for _ in range(rounds):
            started = time.perf_counter()
            for scheme in GANG_SCHEMES:
                run = prepare(build_workload(name, size=size),
                              default_machine())
                simulate(run, scheme)
            best_solo = min(best_solo, time.perf_counter() - started)

            started = time.perf_counter()
            prep = prepare(build_workload(name, size=size), default_machine())
            run_gang(prep, [GangMember(machine=default_machine(), scheme=s)
                            for s in GANG_SCHEMES])
            best_gang = min(best_gang, time.perf_counter() - started)
        per_workload[name] = {"solo_s": round(best_solo, 4),
                              "ganged_s": round(best_gang, 4),
                              "speedup": round(best_solo / best_gang, 2)}
    total_solo = sum(w["solo_s"] for w in per_workload.values())
    total_gang = sum(w["ganged_s"] for w in per_workload.values())
    return {
        "grid": "scheme-gang",
        "size": size,
        "rounds": rounds,
        "workloads": list(GANG_WORKLOADS),
        "schemes": list(GANG_SCHEMES),
        "per_workload": per_workload,
        "solo_s": round(total_solo, 3),
        "ganged_s": round(total_gang, 3),
        "speedup": round(total_solo / total_gang, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", nargs="+", default=["small"],
                        choices=("small", "default", "large"),
                        help="workload size preset(s) to measure")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per grid (best is kept)")
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if any measured grid is slower")
    parser.add_argument("--min-scheme-speedup", type=float, default=None,
                        help="exit non-zero if a scheme-gang grid is slower")
    parser.add_argument("--grid", nargs="+", default=["config", "scheme"],
                        choices=("config", "scheme"),
                        help="which axes to measure")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grids": {},
        "scheme_grids": {},
    }
    failed = False
    for size in args.size:
        if "config" in args.grid:
            grid = time_grid(size, args.rounds)
            report["grids"][size] = grid
            print(f"sweep[{size}] per-cell={grid['per_cell_s']}s "
                  f"ganged={grid['ganged_s']}s speedup={grid['speedup']}x")
            if args.min_speedup is not None and \
                    grid["speedup"] < args.min_speedup:
                print(f"FAIL: speedup {grid['speedup']}x is below the "
                      f"{args.min_speedup}x floor", file=sys.stderr)
                failed = True
        if "scheme" in args.grid:
            grid = time_scheme_gang(size, args.rounds)
            report["scheme_grids"][size] = grid
            print(f"scheme-gang[{size}] solo={grid['solo_s']}s "
                  f"ganged={grid['ganged_s']}s speedup={grid['speedup']}x")
            if args.min_scheme_speedup is not None and \
                    grid["speedup"] < args.min_scheme_speedup:
                print(f"FAIL: scheme-gang speedup {grid['speedup']}x is "
                      f"below the {args.min_scheme_speedup}x floor",
                      file=sys.stderr)
                failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestSweepBench:
    def test_gang_grid_speedup(self, benchmark, bench_size):
        size = "default" if bench_size == "paper" else "small"
        grid = benchmark.pedantic(time_grid, args=(size, 2),
                                  iterations=1, rounds=1)
        # Sanity only: the calibrated >= 2x gate runs in the dedicated CI
        # benchmark job and BENCH_sweep.json.
        assert grid["speedup"] > 1.0

    def test_scheme_gang_speedup(self, benchmark, bench_size):
        size = "default" if bench_size == "paper" else "small"
        grid = benchmark.pedantic(time_scheme_gang, args=(size, 2),
                                  iterations=1, rounds=1)
        # Sanity only: the calibrated >= 1.5x gate runs in the dedicated
        # CI benchmark job and BENCH_sweep.json.
        assert grid["speedup"] > 1.0


if __name__ == "__main__":
    sys.exit(main())
