"""Tag granularity ablation."""

from conftest import run_once


class TestFig25:
    def test_per_word_tags_earn_their_storage(self, benchmark, bench_size):
        result = run_once(benchmark, "fig25_taggranularity", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name, w_miss, l_miss, ratio, w_cyc, l_cyc, slow = row
            # The cheap layout never wins on misses or time...
            assert l_miss >= w_miss - 0.01, name
            assert slow >= 0.99, name
        # ...and loses clearly somewhere (the reuse it forfeits is real).
        assert any(row[3] >= 1.5 for row in result.rows)
        assert any(row[6] >= 1.1 for row in result.rows)
