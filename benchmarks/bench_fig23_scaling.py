"""Processor-count scaling curves (common BASE-at-P=1 baseline)."""

from conftest import run_once


class TestFig23:
    def test_scaling_shapes(self, benchmark, bench_size):
        result = run_once(benchmark, "fig23_scaling", bench_size)
        print("\n" + result.render())
        per = {(row[0], row[1]): row for row in result.rows}
        workloads = sorted({row[0] for row in result.rows})
        for name in workloads:
            base = per[(name, "BASE")]
            tpi = per[(name, "TPI")]
            hw = per[(name, "HW")]
            assert base[2] == 1.0  # the common baseline itself
            # The caching schemes dominate BASE at every processor count.
            for col in range(2, 6):
                assert tpi[col] >= base[col] * 0.95, (name, col)
                assert hw[col] >= base[col] * 0.95, (name, col)
            # Caching and parallelism compose for TPI: P=16 beats P=1.
            assert tpi[4] > tpi[2]
        # Parallel speedup is real somewhere: >= 6x over the shipped machine.
        assert any(per[(name, "TPI")][4] >= 6.0 for name in workloads)
