"""Network traffic breakdown — write-through vs write-back vs coherence."""

from conftest import run_once


class TestFig13:
    def test_traffic_classes(self, benchmark, bench_size):
        result = run_once(benchmark, "fig13_traffic", bench_size)
        print("\n" + result.render())
        per = {(row[0], row[1]): row for row in result.rows}
        workloads = sorted({row[0] for row in result.rows})
        write_ratio = {}
        for name in workloads:
            tpi = per[(name, "TPI")]
            hw = per[(name, "HW")]
            # Write-through produces write traffic; write-back (almost)
            # none at these working-set sizes.
            assert tpi[3] > hw[3], f"{name}: TPI write traffic must exceed HW"
            # Coherence traffic exists only for the directory.
            assert tpi[4] == 0 and per[(name, "SC")][4] == 0
            assert hw[4] > 0
            write_ratio[name] = tpi[3] / max(tpi[2], 1e-9)
        # TRFD: among the most write-dominated TPI traffic mixes (its
        # distinguishing *redundancy* is asserted by bench_fig17).
        top_two = sorted(write_ratio.values(), reverse=True)[:2]
        assert write_ratio["trfd"] in top_two
