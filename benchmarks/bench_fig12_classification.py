"""Miss decomposition — unnecessary misses: compiler conservatism (TPI)
vs false sharing (HW)."""

from conftest import run_once


class TestFig12:
    def test_unnecessary_miss_sources(self, benchmark, bench_size):
        result = run_once(benchmark, "fig12_classification", bench_size)
        print("\n" + result.render())
        per = {(row[0], row[1]): row for row in result.rows}
        workloads = {row[0] for row in result.rows}
        total_tpi = total_hw = 0.0
        for name in workloads:
            tpi = per[(name, "TPI")]
            hw = per[(name, "HW")]
            # Kind exclusivity: each scheme has exactly one unnecessary kind.
            assert tpi[6] == "conservative"
            assert hw[6] == "false sharing"
            # Capacity-like misses agree (same cache geometry + stream).
            assert abs(tpi[2] - hw[2]) <= max(tpi[2], hw[2]) * 0.5 + 5.0
            total_tpi += tpi[5]
            total_hw += hw[5]
        # The paper's claim: comparable magnitudes overall (same order).
        assert total_tpi > 0 and total_hw > 0
        assert total_tpi <= 20 * total_hw and total_hw <= 20 * total_tpi
