"""Section-5 task migration: safe marking + locality cost."""

from conftest import run_once


class TestFig18:
    def test_migration_costs(self, benchmark, bench_size):
        result = run_once(benchmark, "fig18_migration", bench_size)
        print("\n" + result.render())
        for row in result.rows:
            name, _plain, _mig, tpi_slow, hw_slow, extra_sites = row
            # Correctness is enforced inside the simulation (oracle);
            # here: migration never speeds things up...
            assert tpi_slow >= 0.99 and hw_slow >= 0.99, name
            # ...and costs TPI at least as much as the directory (the
            # compiler loses the same-processor guarantee).
            assert tpi_slow >= hw_slow - 0.05, name
            assert extra_sites >= 0
        # The safe marking really does add Time-Read sites somewhere.
        assert any(row[5] > 0 for row in result.rows)
