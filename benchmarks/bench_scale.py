"""Processor-axis scaling benchmark: 1024-16384 simulated processors.

Three measurements, all recorded in the committed ``BENCH_scale.json``:

* **scale points** — wall-clock and peak allocation for the extended
  fig23 scaling study (``fig23_scaling_x``: one small workload, fast
  engine, P = 1 .. 16384).  Per-proc state is sparse, so the wide points
  must cost roughly what the saturation point costs — P=16384 is the
  smoke that the processor axis really is O(busy procs);
* **sparse vs dense** — the same prepared run simulated with the lazy
  per-proc containers (default) and with ``REPRO_DENSE_STATE=1``
  (eager materialization of every cache/buffer/lease row).  CI gates
  the speedup at >= 5x at P=4096; the measured figure is ~80x;
* **storage curve** — the fig5-style analytic curve: coherence-state
  bits per memory line vs P for full-map, limited-pointer, LimitLESS,
  TPI, and Tardis (:func:`repro.overhead.figure5_curve`).

A parity leg re-checks byte-identical results between the reference and
fast engines at the processor counts the reference engine can reach
quickly (64 and 256).

Standalone::

    python benchmarks/bench_scale.py --rounds 3 --out BENCH_scale.json
    python benchmarks/bench_scale.py --min-speedup 5.0   # the CI gate

Under pytest the measurements run once with sanity assertions only (the
calibrated gate lives in the CI benchmark job).
"""

import argparse
import json
import os
import platform
import resource
import sys
import time
import tracemalloc

from repro.common.config import default_machine
from repro.experiments.fig23_scaling import (EXTENDED_PROCS,
                                             EXTENDED_WORKLOAD, run_extended)
from repro.overhead import figure5_curve
from repro.sim import prepare, simulate
from repro.workloads import build_workload

SCHEMES = ("tpi", "hw")
DENSE_PROCS = 4096
PARITY_PROCS = (64, 256)
CURVE_PROCS = (64, 256, 1024, 4096, 16384)


def _peak_rss_mb() -> float:
    """High-water resident set of this process, in MB (Linux: KB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def time_scale_points(size: str, rounds: int = 3) -> dict:
    """The extended fig23 study, with per-P wall-clock and peak alloc."""
    machine = default_machine().with_(engine="fast")
    program = build_workload(EXTENDED_WORKLOAD, size=size)
    points = {}
    for n_procs in EXTENDED_PROCS:
        best = float("inf")
        peak_mb = 0.0
        for _ in range(rounds):
            tracemalloc.start()
            started = time.perf_counter()
            run = prepare(program, machine.with_(n_procs=n_procs))
            for scheme in SCHEMES:
                simulate(run, scheme)
            best = min(best, time.perf_counter() - started)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            peak_mb = max(peak_mb, peak / (1 << 20))
        points[str(n_procs)] = {"wall_s": round(best, 4),
                                "peak_alloc_mb": round(peak_mb, 2)}
    table = run_extended(size=size)
    return {
        "workload": EXTENDED_WORKLOAD,
        "size": size,
        "schemes": list(SCHEMES),
        "points": points,
        "speedup_table": {"headers": table.headers,
                          "rows": [[row[0], row[1],
                                    *(round(v, 3) for v in row[2:])]
                                   for row in table.rows]},
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def time_sparse_vs_dense(size: str, rounds: int = 3,
                         n_procs: int = DENSE_PROCS) -> dict:
    """Same prepared run, lazy vs ``REPRO_DENSE_STATE=1`` backend state."""
    program = build_workload(EXTENDED_WORKLOAD, size=size)
    run = prepare(program,
                  default_machine().with_(n_procs=n_procs, engine="fast"))
    timings = {}
    for mode, env in (("sparse", ""), ("dense", "1")):
        old = os.environ.get("REPRO_DENSE_STATE")
        os.environ["REPRO_DENSE_STATE"] = env
        try:
            best = float("inf")
            for _ in range(rounds):
                started = time.perf_counter()
                for scheme in SCHEMES:
                    simulate(run, scheme)
                best = min(best, time.perf_counter() - started)
        finally:
            if old is None:
                os.environ.pop("REPRO_DENSE_STATE", None)
            else:
                os.environ["REPRO_DENSE_STATE"] = old
        timings[mode] = best
    return {
        "workload": EXTENDED_WORKLOAD,
        "size": size,
        "n_procs": n_procs,
        "schemes": list(SCHEMES),
        "sparse_s": round(timings["sparse"], 4),
        "dense_s": round(timings["dense"], 4),
        "speedup": round(timings["dense"] / timings["sparse"], 2),
    }


def check_parity(size: str) -> dict:
    """Reference vs fast snapshots at the counts the reference can reach."""
    import dataclasses

    program = build_workload(EXTENDED_WORKLOAD, size=size)

    def snap(result):
        return json.dumps(
            {"result": result.to_dict(),
             "epoch_records": [dataclasses.asdict(r)
                               for r in result.epoch_records]},
            sort_keys=True)

    checked = {}
    for n_procs in PARITY_PROCS:
        machine = default_machine().with_(n_procs=n_procs,
                                          record_epochs=True)
        for scheme in SCHEMES:
            snaps = {}
            for engine in ("reference", "fast"):
                run = prepare(program, machine.with_(engine=engine))
                snaps[engine] = snap(simulate(run, scheme))
            checked[f"P{n_procs}/{scheme}"] = \
                snaps["fast"] == snaps["reference"]
    return checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", default="small",
                        choices=("small", "default", "large"),
                        help="workload size preset to measure")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per point (best is kept)")
    parser.add_argument("--out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero if sparse state beats dense "
                             "state by less than this at P=4096")
    args = parser.parse_args(argv)

    report = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": time_scale_points(args.size, args.rounds),
        "sparse_vs_dense": time_sparse_vs_dense(args.size, args.rounds),
        "parity": check_parity(args.size),
        "storage_curve": {
            "y_axis": "coherence-state bits per memory line "
                      "(cache SRAM amortized)",
            "points": figure5_curve(procs=CURVE_PROCS),
        },
    }
    scale = report["scale"]
    widest = scale["points"][str(EXTENDED_PROCS[-1])]
    print(f"scale[{args.size}] P={EXTENDED_PROCS[-1]}: "
          f"{widest['wall_s']}s, peak {widest['peak_alloc_mb']} MB "
          f"(rss {scale['peak_rss_mb']} MB)")
    dense = report["sparse_vs_dense"]
    print(f"sparse-vs-dense[P={dense['n_procs']}] "
          f"sparse={dense['sparse_s']}s dense={dense['dense_s']}s "
          f"speedup={dense['speedup']}x")
    failed = False
    if not all(report["parity"].values()):
        bad = [key for key, ok in report["parity"].items() if not ok]
        print(f"FAIL: engine parity broken at {bad}", file=sys.stderr)
        failed = True
    if args.min_speedup is not None and \
            dense["speedup"] < args.min_speedup:
        print(f"FAIL: sparse-state speedup {dense['speedup']}x is below "
              f"the {args.min_speedup}x floor", file=sys.stderr)
        failed = True
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if failed else 0


class TestScaleBench:
    def test_wide_machine_points(self, benchmark, bench_size):
        size = "small"  # the processor axis, not the data axis
        scale = benchmark.pedantic(time_scale_points, args=(size, 1),
                                   iterations=1, rounds=1)
        widest = scale["points"][str(EXTENDED_PROCS[-1])]
        saturated = scale["points"]["256"]
        # A 16384-proc point must cost the same order as the saturation
        # point, not 64x more (sanity; the wall-clock budget is in CI).
        assert widest["wall_s"] < 20 * max(saturated["wall_s"], 0.01)

    def test_sparse_state_speedup(self, benchmark, bench_size):
        dense = benchmark.pedantic(time_sparse_vs_dense, args=("small", 1),
                                   iterations=1, rounds=1)
        # Sanity only: the calibrated >= 5x gate runs in the dedicated CI
        # benchmark job and BENCH_scale.json.
        assert dense["speedup"] > 1.0

    def test_parity_at_reachable_counts(self):
        assert all(check_parity("small").values())


if __name__ == "__main__":
    sys.exit(main())
