"""Legacy setup shim: the sandbox has no `wheel` package, so editable
installs must go through `setup.py develop` instead of PEP 517."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Choi & Yew (ISCA 1996): Two-Phase Invalidation "
        "hardware-supported compiler-directed cache coherence"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
