# Convenience targets; everything is plain pytest underneath.

PYTHON ?= python

.PHONY: install test bench bench-paper bench-serve paper props lint \
	modelcheck serve clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --bench-size=paper -q

paper:
	$(PYTHON) examples/reproduce_paper.py | tee paper_results.txt

# Simulation-as-a-service (docs/SERVE.md): HTTP server on :8089 with the
# sharded artifact cache; stop with Ctrl-C (drains in-flight requests).
serve:
	$(PYTHON) -m repro serve --host 127.0.0.1 --port 8089

bench-serve:
	$(PYTHON) benchmarks/bench_serve.py --requests 400 \
		--min-hit-rate 0.9 --out BENCH_serve.json

props:
	$(PYTHON) -m pytest tests/test_properties.py tests/test_properties_rich.py -q

# Static checks: the coherence lint always runs; ruff/mypy run when
# installed (pip install -e .[lint]) and are skipped otherwise.
lint:
	$(PYTHON) -m repro lint all --size small --self-test
	$(PYTHON) -m repro lint all --scheme tardis --scheme snoop --size small
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src/repro \
		&& $(PYTHON) -m ruff check --select B,SIM src/repro/analysis \
		|| echo "ruff not installed; skipping (pip install -e .[lint])"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping (pip install -e .[lint])"

# Bounded-exhaustive verification of the TPI and Tardis protocol rules
# (the exact functions the simulator executes); see docs/ANALYSIS.md.
# The self-tests seed known protocol bugs and require 100%
# counterexample detection.
modelcheck:
	$(PYTHON) -m repro modelcheck --self-test --strict
	$(PYTHON) -m repro modelcheck --scheme tardis --self-test --strict

clean:
	rm -rf .pytest_cache .hypothesis build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
