# Convenience targets; everything is plain pytest underneath.

PYTHON ?= python

.PHONY: install test bench bench-paper paper props lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-paper:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only --bench-size=paper -q

paper:
	$(PYTHON) examples/reproduce_paper.py | tee paper_results.txt

props:
	$(PYTHON) -m pytest tests/test_properties.py tests/test_properties_rich.py -q

# Static checks: the coherence lint always runs; ruff/mypy run when
# installed (pip install -e .[lint]) and are skipped otherwise.
lint:
	$(PYTHON) -m repro lint all --size small --self-test
	@$(PYTHON) -c "import ruff" 2>/dev/null \
		&& $(PYTHON) -m ruff check src/repro \
		|| echo "ruff not installed; skipping (pip install -e .[lint])"
	@$(PYTHON) -c "import mypy" 2>/dev/null \
		&& $(PYTHON) -m mypy \
		|| echo "mypy not installed; skipping (pip install -e .[lint])"

clean:
	rm -rf .pytest_cache .hypothesis build src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
