"""Lazy per-processor state for processor-axis scaling.

At ``n_procs`` in the thousands, almost all processors of a small
workload receive no work: materializing caches, write buffers, touch
bitmaps, or timestamp arrays for every processor makes scheme
construction and per-epoch bookkeeping O(n_procs) (or worse, O(n_procs x
total_words)) regardless of how many processors actually execute events.
The containers here allocate per-processor state on first touch and let
hot loops iterate *materialized* processors only; a processor that never
touched its state is observationally identical to one holding a freshly
constructed (empty) instance, so results stay byte-identical to the
eager layout (docs/PERF.md, "Processor axis").

``REPRO_DENSE_STATE=1`` force-materializes everything at construction —
the pre-sparse behavior — which `benchmarks/bench_scale.py` uses as the
dense baseline for its speedup gate.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Callable, Dict, Iterator, List, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def dense_state() -> bool:
    """True when the dense (eager, pre-sparse) state layout is forced."""
    return os.environ.get("REPRO_DENSE_STATE", "") not in ("", "0")


class LazyList:
    """Fixed-length sequence whose items are created on first access.

    ``factory(proc)`` builds the item for one processor.  Indexing is the
    only materializing operation; :meth:`materialized` iterates the
    already-built (proc, item) pairs in processor order, which is what
    epoch-boundary loops (drains, resets, invariant checks) walk instead
    of ``range(n_procs)``.
    """

    __slots__ = ("_n", "_factory", "_items")

    def __init__(self, n: int, factory: Callable[[int], T]):
        self._n = n
        self._factory = factory
        self._items: Dict[int, T] = {}
        if dense_state():
            for proc in range(n):
                self._items[proc] = factory(proc)

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, proc: int) -> T:
        item = self._items.get(proc)
        if item is None:
            if not 0 <= proc < self._n:
                raise IndexError(proc)
            item = self._items[proc] = self._factory(proc)
        return item

    def __iter__(self) -> Iterator[T]:
        """Iterate all items, materializing everything (cold paths only)."""
        return (self[proc] for proc in range(self._n))

    def materialized(self) -> List[Tuple[int, T]]:
        return sorted(self._items.items())

    def materialized_items(self) -> List[T]:
        return [item for _proc, item in sorted(self._items.items())]


class UniformStalls(Mapping):
    """A ``{proc: cycles}`` mapping with one value for every processor.

    TPI's two-phase reset stalls *all* processors identically; returning
    this instead of a dict keeps ``begin_epoch`` O(1) while staying
    ``==`` to the dict the eager code built (the engines only call
    ``.get(proc, 0)``).
    """

    __slots__ = ("_n", "_value")

    def __init__(self, n_procs: int, value: int):
        self._n = n_procs
        self._value = value

    def __getitem__(self, proc: int) -> int:
        if not 0 <= proc < self._n:
            raise KeyError(proc)
        return self._value

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    def __len__(self) -> int:
        return self._n


class PerProcWords(Mapping):
    """Barrier-drain result: materialized entries, zero elsewhere.

    ``end_epoch`` must answer ``[proc]`` for any valid processor (a
    never-written processor drains zero words), but the engines iterate
    ``.items()`` and skip zeros — so iteration covers only processors
    that actually hold a write buffer, keeping the barrier O(active).
    """

    __slots__ = ("_n", "_entries")

    def __init__(self, n_procs: int, entries: Dict[int, int]):
        self._n = n_procs
        self._entries = entries

    def __getitem__(self, proc: int) -> int:
        if not 0 <= proc < self._n:
            raise KeyError(proc)
        return self._entries.get(proc, 0)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)


class TouchBitmap:
    """Per-(processor, word) touch bits with lazily materialized rows.

    Replaces the dense ``(n_procs, total_words)`` bool array — which is
    O(n_procs^2) once private arrays give ``total_words`` an n_procs
    factor — while serving the same scalar and fancy-indexed gets/sets
    the schemes and batch kernels issue.
    """

    __slots__ = ("n_procs", "total_words", "_rows")

    def __init__(self, n_procs: int, total_words: int):
        self.n_procs = n_procs
        self.total_words = total_words
        self._rows: Dict[int, np.ndarray] = {}
        if dense_state():
            for proc in range(n_procs):
                self._row(proc)

    def _row(self, proc: int) -> np.ndarray:
        row = self._rows.get(proc)
        if row is None:
            row = self._rows[proc] = np.zeros(self.total_words, dtype=bool)
        return row

    def __getitem__(self, key):
        proc, addr = key
        procs = np.asarray(proc)
        if procs.ndim == 0:
            row = self._rows.get(int(procs))
            if row is None:
                addrs = np.asarray(addr)
                return (np.zeros(addrs.shape, dtype=bool) if addrs.ndim
                        else False)
            return row[addr]
        addrs = np.asarray(addr)
        out = np.zeros(procs.shape, dtype=bool)
        for p in np.unique(procs):
            row = self._rows.get(int(p))
            if row is not None:
                mask = procs == p
                out[mask] = row[addrs[mask]]
        return out

    def __setitem__(self, key, value) -> None:
        proc, addr = key
        procs = np.asarray(proc)
        if procs.ndim == 0:
            self._row(int(procs))[addr] = value
            return
        addrs = np.asarray(addr)
        values = np.asarray(value)
        for p in np.unique(procs):
            mask = procs == p
            self._row(int(p))[addrs[mask]] = (values[mask] if values.ndim
                                              else value)


class SparseValues:
    """Per-processor scalars stored as deviations from a shared default.

    Tardis joins every processor's ``pts`` at each barrier, making the
    common case "all processors share one value" — which :meth:`fill`
    restores in O(1) instead of rebuilding an O(n_procs) list.
    """

    __slots__ = ("_n", "_default", "_entries")

    def __init__(self, n_procs: int, default: int = 0):
        self._n = n_procs
        self._default = default
        self._entries: Dict[int, int] = {}

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, proc: int) -> int:
        return self._entries.get(proc, self._default)

    def __setitem__(self, proc: int, value: int) -> None:
        if value == self._default:
            self._entries.pop(proc, None)
        else:
            self._entries[proc] = value

    def fill(self, value: int) -> None:
        """Set every processor to ``value`` (the barrier join)."""
        self._default = value
        self._entries.clear()

    def distinct(self) -> List[int]:
        """The distinct values currently present (order unspecified)."""
        values = set(self._entries.values())
        if len(self._entries) < self._n:
            values.add(self._default)
        return list(values)

    def __iter__(self) -> Iterator[int]:
        return (self[proc] for proc in range(self._n))
