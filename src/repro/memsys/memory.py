"""Shadow main memory: word versions for correctness and classification.

The simulator does not track data values; it tracks, per word, a
monotonically increasing *version*, the last writer, and the version as of
the last barrier (epoch start).  This is enough to

* verify coherence safety (a read must never observe a version older than
  the one globally visible at the reader's last synchronization point);
* classify unnecessary misses (a Time-Read miss whose cached version still
  equals the memory version was compiler conservatism, not true sharing).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import SimulationError


class ShadowMemory:
    def __init__(self, total_words: int):
        if total_words <= 0:
            raise SimulationError("shadow memory needs a positive size")
        self.total_words = total_words
        self.version = np.zeros(total_words, dtype=np.int64)
        self.last_writer = np.full(total_words, -1, dtype=np.int32)
        self.epoch_version = np.zeros(total_words, dtype=np.int64)

    def write(self, addr: int, proc: int) -> int:
        """Perform a write; returns the new version of the word."""
        self.version[addr] += 1
        self.last_writer[addr] = proc
        return int(self.version[addr])

    def read_version(self, addr: int) -> int:
        return int(self.version[addr])

    def barrier(self) -> None:
        """All writes so far become globally visible (epoch boundary)."""
        np.copyto(self.epoch_version, self.version)

    def visible_floor(self, addr: int) -> int:
        """Minimum version a coherent read may legally return."""
        return int(self.epoch_version[addr])
