"""Shadow main memory: word versions for correctness and classification.

The simulator does not track data values; it tracks, per word, a
monotonically increasing *version*, the last writer, and the version as of
the last barrier (epoch start).  This is enough to

* verify coherence safety (a read must never observe a version older than
  the one globally visible at the reader's last synchronization point);
* classify unnecessary misses (a Time-Read miss whose cached version still
  equals the memory version was compiler conservatism, not true sharing).

The address space is O(n_procs) once private arrays get per-processor
copies, so the epoch barrier tracks the addresses written since the last
barrier and republishes only those instead of copying the whole version
array — a simulation that touches a bounded working set pays per-epoch
cost proportional to its writes, not to ``total_words``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.common.errors import SimulationError


class ShadowMemory:
    def __init__(self, total_words: int):
        if total_words <= 0:
            raise SimulationError("shadow memory needs a positive size")
        self.total_words = total_words
        self.version = np.zeros(total_words, dtype=np.int64)
        self.epoch_version = np.zeros(total_words, dtype=np.int64)
        # Last writer, stored as proc+1 so the backing array can stay
        # all-zeros (calloc pages, never committed for untouched spans).
        self._writer_p1 = np.zeros(total_words, dtype=np.int32)
        self._dirty_addrs: List[int] = []
        self._dirty_arrays: List[np.ndarray] = []

    @property
    def last_writer(self) -> np.ndarray:
        """Per-word last writer (-1 = never written); materialized copy
        for diagnostics and tests — not a hot-path accessor."""
        return self._writer_p1.astype(np.int32) - 1

    def write(self, addr: int, proc: int) -> int:
        """Perform a write; returns the new version of the word."""
        self.version[addr] += 1
        self._writer_p1[addr] = proc + 1
        self._dirty_addrs.append(addr)
        return int(self.version[addr])

    def write_many(self, addrs: np.ndarray, procs) -> None:
        """Vectorized write bump (batch kernels); ``addrs`` may repeat."""
        np.add.at(self.version, addrs, 1)
        self._writer_p1[addrs] = np.asarray(procs) + 1
        if len(addrs):
            self._dirty_arrays.append(np.asarray(addrs))

    def read_version(self, addr: int) -> int:
        return int(self.version[addr])

    def barrier(self) -> None:
        """All writes so far become globally visible (epoch boundary).

        Only the words written since the previous barrier can differ from
        their published versions, so republishing exactly those is
        equivalent to the full-array copy; the dense copy is kept for
        epochs whose write set rivals the address space.
        """
        n_dirty = len(self._dirty_addrs) + sum(a.size
                                               for a in self._dirty_arrays)
        if n_dirty * 4 >= self.total_words:
            np.copyto(self.epoch_version, self.version)
        elif n_dirty:
            parts = list(self._dirty_arrays)
            if self._dirty_addrs:
                parts.append(np.asarray(self._dirty_addrs, dtype=np.int64))
            dirty = parts[0] if len(parts) == 1 else np.concatenate(parts)
            self.epoch_version[dirty] = self.version[dirty]
        self._dirty_addrs.clear()
        self._dirty_arrays.clear()

    def visible_floor(self, addr: int) -> int:
        """Minimum version a coherent read may legally return."""
        return int(self.epoch_version[addr])
