"""A set-associative cache with per-word coherence state.

The paper's TPI hardware extends every cache *word* with a k-bit timetag and
a valid bit; hardware directory schemes need per-line state plus per-word
used-bits (for the Tullsen-Eggers false-sharing classification).  This one
cache structure carries all of it; each coherence scheme uses the fields it
needs and ignores the rest.

State is held in numpy arrays indexed ``[set, way]`` (line granularity) or
``[set, way, word]`` (word granularity), which keeps the per-event Python
work small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.common.config import CacheConfig


@dataclass(frozen=True)
class CacheWay:
    """Location of a line inside the cache (set index + way index)."""

    set_index: int
    way: int


class Cache:
    """Per-processor cache; addresses are word addresses.

    Line bookkeeping:

    * ``tags[s, w]`` — line address stored, or -1;
    * ``dirty[s, w]`` — write-back dirty bit (HW scheme);
    * ``inval_reason[s, w]`` — 0 none, 1 true-sharing, 2 false-sharing:
      why the line's last copy was invalidated (classification state);

    Word bookkeeping:

    * ``word_valid[s, w, i]`` — per-word valid bit (TPI/SC);
    * ``timetag[s, w, i]`` — per-word timetag (TPI);
    * ``version[s, w, i]`` — shadow: the global memory version this cached
      word corresponds to (simulator-only, used for correctness checks and
      unnecessary-miss classification);
    * ``used[s, w, i]`` — referenced by this processor since the line was
      filled (Tullsen-Eggers).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.line_words = config.line_words
        self.n_sets = config.n_sets
        self.assoc = config.associativity
        shape_line = (self.n_sets, self.assoc)
        shape_word = (self.n_sets, self.assoc, self.line_words)
        self.tags = np.full(shape_line, -1, dtype=np.int64)
        self.dirty = np.zeros(shape_line, dtype=bool)
        self.inval_reason = np.zeros(shape_line, dtype=np.int8)
        self.lru = np.zeros(shape_line, dtype=np.int64)
        self.word_valid = np.zeros(shape_word, dtype=bool)
        self.timetag = np.zeros(shape_word, dtype=np.int64)
        self.version = np.zeros(shape_word, dtype=np.int64)
        self.used = np.zeros(shape_word, dtype=bool)
        self._tick = 0

    # ------------------------------------------------------------ geometry

    def split(self, addr: int) -> Tuple[int, int, int]:
        """(line address, set index, word offset) of a word address."""
        line = addr // self.line_words
        return line, line % self.n_sets, addr % self.line_words

    def line_base(self, line_addr: int) -> int:
        return line_addr * self.line_words

    # -------------------------------------------------------------- lookup

    def probe(self, line_addr: int) -> Optional[CacheWay]:
        """Locate a line; None on miss.  Does not touch LRU state."""
        set_index = line_addr % self.n_sets
        ways = self.tags[set_index]
        for way in range(self.assoc):
            if ways[way] == line_addr:
                return CacheWay(set_index, way)
        return None

    def touch(self, loc: CacheWay) -> None:
        """Record a use for LRU replacement."""
        self._tick += 1
        self.lru[loc.set_index, loc.way] = self._tick

    # ---------------------------------------------------------- fill/evict

    def victim(self, line_addr: int) -> CacheWay:
        """Pick the way a new line will occupy (invalid first, then LRU)."""
        set_index = line_addr % self.n_sets
        for way in range(self.assoc):
            if self.tags[set_index, way] == -1:
                return CacheWay(set_index, way)
        way = int(np.argmin(self.lru[set_index]))
        return CacheWay(set_index, way)

    def evict(self, loc: CacheWay) -> Tuple[int, bool]:
        """Remove the line at ``loc``; returns (line address, was dirty)."""
        s, w = loc.set_index, loc.way
        line_addr = int(self.tags[s, w])
        was_dirty = bool(self.dirty[s, w])
        self.tags[s, w] = -1
        self.dirty[s, w] = False
        self.inval_reason[s, w] = 0
        self.word_valid[s, w, :] = False
        self.used[s, w, :] = False
        return line_addr, was_dirty

    def install(self, line_addr: int) -> Tuple[CacheWay, Optional[int], bool]:
        """Install a line, evicting if needed.

        Returns ``(location, evicted line address or None, evicted dirty)``.
        All word-valid bits are set (a fill brings the whole line); timetags,
        versions and used bits are the caller's responsibility.  Installing
        an already-resident line refreshes it in place (never duplicates).
        """
        loc = self.probe(line_addr) or self.victim(line_addr)
        evicted: Optional[int] = None
        evicted_dirty = False
        if self.tags[loc.set_index, loc.way] != -1:
            evicted, evicted_dirty = self.evict(loc)
            if evicted == line_addr:
                evicted = None  # in-place refresh, nothing actually left
        s, w = loc.set_index, loc.way
        self.tags[s, w] = line_addr
        self.dirty[s, w] = False
        self.inval_reason[s, w] = 0
        self.word_valid[s, w, :] = True
        self.used[s, w, :] = False
        self.touch(loc)
        return loc, evicted, evicted_dirty

    # --------------------------------------------------------- invalidation

    def invalidate_line(self, loc: CacheWay, reason: int = 0) -> None:
        """Coherence invalidation (keeps the classification reason)."""
        s, w = loc.set_index, loc.way
        self.tags[s, w] = -1
        self.dirty[s, w] = False
        self.word_valid[s, w, :] = False
        self.used[s, w, :] = False
        self.inval_reason[s, w] = reason

    def two_phase_reset(self, phase_lo: int, phase_hi: int,
                        modulus: int) -> int:
        """Invalidate every word whose k-bit timetag lies in
        [phase_lo, phase_hi] (values mod ``modulus``).

        Returns the number of words invalidated.  This is the paper's
        two-phase hardware reset: fired when the epoch counter crosses into
        the phase whose timetag values are about to be recycled.  It bounds
        every surviving word's true age below 2^k, which is what makes the
        hardware's modular age comparisons exact.

        Which tags the sweep selects is the shared pure rule
        :func:`repro.coherence.tpi_rules.reset_selects` (imported lazily:
        the coherence package imports this module at init time).
        """
        from repro.coherence.tpi_rules import reset_selects

        sets, ways = np.nonzero(self.tags != -1)
        if sets.size == 0:
            return 0
        if sets.size * 2 >= self.tags.size:
            # Dense cache: full-array ops beat gather/scatter indexing.
            mask = (self.word_valid
                    & reset_selects(self.timetag, phase_lo, phase_hi, modulus)
                    & (self.tags != -1)[:, :, None])
            count = int(mask.sum())
            self.word_valid[mask] = False
            return count
        # Sparse cache (the common case for the paper's working sets):
        # restrict the modular comparison to the occupied lines.
        valid = self.word_valid[sets, ways]
        mask = valid & reset_selects(self.timetag[sets, ways],
                                     phase_lo, phase_hi, modulus)
        count = int(mask.sum())
        if count:
            rows, cols = np.nonzero(mask)
            self.word_valid[sets[rows], ways[rows], cols] = False
        return count

    def flush_all_words(self) -> int:
        """Invalidate every word (the naive wrap-around strategy)."""
        mask = self.word_valid & (self.tags != -1)[:, :, None]
        count = int(mask.sum())
        self.word_valid[:, :, :] = False
        return count

    # ------------------------------------------------------------ counters

    @property
    def occupancy(self) -> int:
        return int((self.tags != -1).sum())
