"""Memory-system substrate: caches, write buffers, network, shadow memory."""

from repro.memsys.cache import Cache, CacheWay
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.memsys.wbuffer import CoalescingWriteBuffer, FifoWriteBuffer, make_write_buffer

__all__ = [
    "Cache",
    "CacheWay",
    "CoalescingWriteBuffer",
    "FifoWriteBuffer",
    "KruskalSnirNetwork",
    "ShadowMemory",
    "make_write_buffer",
]
