"""Write buffers for the write-through schemes.

The paper assumes an infinite write buffer (weak consistency: writes never
stall the processor) and observes that an *ordinary* buffer hides latency
but cannot remove redundant write traffic, while a buffer *organized as a
cache* (DEC Alpha 21164 style [15, 9]) merges repeated writes to the same
word between synchronization points — the fix it proposes for TRFD's write
traffic.  Both organizations are implemented; buffers drain at epoch
boundaries and at lock releases (weak consistency's sync points).
"""

from __future__ import annotations

from typing import Set

from repro.common.config import WriteBufferKind
from repro.common.errors import ConfigError

#: Network words per buffered write reaching memory (address + data).
WRITE_MESSAGE_WORDS = 2


class FifoWriteBuffer:
    """Ordinary infinite FIFO: every write eventually reaches memory."""

    kind = WriteBufferKind.FIFO

    def __init__(self) -> None:
        self.pending = 0
        self.total_writes = 0

    def note_write(self, addr: int) -> int:
        """Record a write; returns network words injected *now*."""
        self.pending += 1
        self.total_writes += 1
        return WRITE_MESSAGE_WORDS

    def drain(self) -> int:
        """Synchronization point; returns network words injected at drain."""
        self.pending = 0
        return 0  # FIFO traffic was already counted at note_write time


class CoalescingWriteBuffer:
    """Write buffer organized as a cache: merges writes to the same word.

    Between two synchronization points, N writes to one word cost one
    memory update.  Traffic is injected at drain time (the merged set).
    """

    kind = WriteBufferKind.COALESCING

    def __init__(self) -> None:
        self.pending: Set[int] = set()
        self.total_writes = 0
        self.merged_writes = 0

    def note_write(self, addr: int) -> int:
        self.total_writes += 1
        if addr in self.pending:
            self.merged_writes += 1
        else:
            self.pending.add(addr)
        return 0

    def drain(self) -> int:
        words = len(self.pending) * WRITE_MESSAGE_WORDS
        self.pending.clear()
        return words


def wbuffer_extras(wbuffers) -> dict:
    """The shared `SimResult.extra` counters of a per-processor buffer bank."""
    out = {"buffered_writes": sum(wb.total_writes for wb in wbuffers)}
    merged = sum(getattr(wb, "merged_writes", 0) for wb in wbuffers)
    if merged:
        out["merged_writes"] = merged
    return out


def make_write_buffer(kind: WriteBufferKind):
    if kind is WriteBufferKind.FIFO:
        return FifoWriteBuffer()
    if kind is WriteBufferKind.COALESCING:
        return CoalescingWriteBuffer()
    raise ConfigError(f"unknown write buffer kind {kind}")  # pragma: no cover
