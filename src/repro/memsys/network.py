"""Kruskal-Snir analytic delay model for indirect multistage networks [24].

The paper simulates network delays with this model rather than a flit-level
simulator; we do the same.  For a buffered multistage network of k-by-k
switches under offered load ``rho`` (words per link per cycle), the expected
queueing delay per stage is

    q(rho) = rho * (1 - 1/k) / (2 * (1 - rho))

switch cycles on top of the unit switch traversal.  A miss crosses the
network twice (request out, reply back) and streams the line through the
memory port at ``word_transfer_cycles`` per word, each word also subject to
the load factor.  The offered load is measured by the simulator per epoch
(words injected / processor-cycles available) and smoothed; the feedback
loop (more traffic -> higher rho -> longer misses -> more cycles) converges
because rho is clamped below ``max_load``.
"""

from __future__ import annotations

from repro.common.config import MachineConfig, NetworkConfig


class KruskalSnirNetwork:
    """Latency oracle shared by all coherence schemes in one simulation."""

    def __init__(self, machine: MachineConfig):
        self.config: NetworkConfig = machine.network
        self.n_procs = machine.n_procs
        self.base_miss_latency = machine.base_miss_latency
        self.stages = self.config.stages(machine.n_procs)
        self.rho = 0.0

    # ------------------------------------------------------------- feedback

    def observe_epoch(self, words_injected: int, proc_cycles: int,
                      smoothing: float) -> None:
        """Update the load estimate from one epoch's traffic."""
        if proc_cycles <= 0:
            return
        measured = words_injected / (self.n_procs * proc_cycles)
        measured = min(measured, self.config.max_load)
        self.rho = (1.0 - smoothing) * self.rho + smoothing * measured

    # -------------------------------------------------------------- delays

    def stage_queueing(self, rho: float = None) -> float:
        rho = self.rho if rho is None else rho
        rho = min(max(rho, 0.0), self.config.max_load)
        k = self.config.switch_degree
        return rho * (1.0 - 1.0 / k) / (2.0 * (1.0 - rho))

    def traversal(self) -> float:
        """One-way unloaded header latency through the network."""
        return self.stages * self.config.switch_cycle

    def load_factor(self) -> float:
        """Multiplier on per-word streaming time under the current load."""
        return 1.0 + self.stage_queueing()

    def miss_latency(self, line_words: int) -> int:
        """Round-trip latency of a cache-line miss under the current load."""
        queueing = 2 * self.stages * self.config.switch_cycle * self.stage_queueing()
        transfer = line_words * self.config.word_transfer_cycles * self.load_factor()
        return int(round(self.base_miss_latency + transfer + queueing))

    def word_latency(self) -> int:
        """Round-trip latency of a single-word remote access."""
        return self.miss_latency(1)

    def control_latency(self) -> int:
        """Round trip of a control-only message (lock, upgrade grant)."""
        rt = 2 * self.stages * self.config.switch_cycle * (1.0 + self.stage_queueing())
        return int(round(rt)) + 1
