"""The simulation service: request -> jobs -> (cache | coalesce | pool).

:class:`SimulationService` is the transport-independent core of
``repro serve``.  Each request names a simulation (``simulate``) or a
grid (``sweep``) in the same vocabulary as the CLI; the service expands
it into :class:`~repro.runtime.jobs.Job` objects and answers through a
three-level dedup funnel:

1. **read-through cache** — if every job fingerprint is already in the
   artifact cache (local shard or a peer tier of a
   :class:`~repro.runtime.shardcache.ShardedCache`), the response is
   assembled without touching the worker pool at all;
2. **in-flight coalescing** — cold requests are keyed by a request
   fingerprint (hash of their job fingerprints); concurrent identical
   requests await one shared future, so a stampede of N costs one
   simulation and N-1 microsecond waits;
3. **dead-field pruning** — :meth:`Job.fingerprint` already collapses
   configs a scheme provably ignores, so equivalent cells inside one
   request share a single simulation in the executor.

Cold requests dispatch onto a bounded thread pool, each running a
:class:`~repro.runtime.executor.ParallelExecutor` configured with the
service's worker count, per-job timeout, and crash retry; the executor's
process fan-out and gang priming apply unchanged.  Responses are the
byte-exact CLI ``--json`` payloads (:mod:`repro.serve.payloads`).

Every request is recorded in a bounded job registry (``GET /jobs/<id>``)
and in the service :class:`~repro.runtime.telemetry.Telemetry`
(hit/miss/coalesced counters, p50/p99 latency) surfaced on ``/stats``
and in ``RunReport``.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.coherence import SCHEME_NAMES
from repro.common.config import default_machine
from repro.common.errors import ReproError
from repro.runtime import (
    ArtifactCache,
    Job,
    ParallelExecutor,
    Telemetry,
    expand_sweep,
    jobs_for_schemes,
)
from repro.runtime.cache import KIND_RESULT
from repro.serve.payloads import json_bytes, simulate_payload, sweep_payload
from repro.sim.engine import ENGINE_NAMES
from repro.sim.sweep import SweepPoint, sweep_from_specs
from repro.workloads import build_workload, workload_names

JOB_REGISTRY_CAP = 512
"""Finished request records kept for ``GET /jobs/<id>``."""


class ServeError(ReproError):
    """A request-level failure carrying an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class ServeConfig:
    """Tunables for one service instance."""

    jobs: int = 1
    """Worker processes per dispatched request (ParallelExecutor jobs)."""
    dispatchers: int = 2
    """Concurrent cold dispatches (thread-pool width); further cold
    requests queue behind these without blocking cached traffic."""
    timeout: Optional[float] = None
    """Per-job wall-clock bound inside the executor."""
    retries: int = 1
    """Automatic in-process retries after a worker crash."""


@dataclass
class RequestRecord:
    """One request's lifecycle, addressable via ``GET /jobs/<id>``."""

    id: str
    kind: str
    status: str = "pending"  # pending | running | done | error
    source: str = ""         # hit | coalesced | computed | error
    detach: bool = False
    wall_s: float = 0.0
    error: str = ""
    payload: Optional[bytes] = None

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {"job": self.id, "kind": self.kind,
                               "status": self.status, "detach": self.detach,
                               "source": self.source,
                               "wall_s": round(self.wall_s, 6)}
        if self.error:
            out["error"] = self.error
        if include_result and self.status == "done" and self.payload:
            out["result"] = json.loads(self.payload.decode())
        return out


@dataclass
class _Parsed:
    """A validated request: its jobs plus the payload builder inputs."""

    kind: str
    jobs: List[Job]
    schemes: Tuple[str, ...]


class SimulationService:
    """Transport-independent request handling (see module docstring)."""

    def __init__(self, cache: Optional[ArtifactCache] = None,
                 config: Optional[ServeConfig] = None,
                 telemetry: Optional[Telemetry] = None):
        self.cache = cache
        self.config = config or ServeConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.started_at = time.time()
        self.dispatched = 0
        """Requests that actually ran simulations (the coalescing
        assertion in CI: duplicates never increment this)."""
        self.requests_by_kind: Dict[str, int] = {"simulate": 0, "sweep": 0}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._records: "OrderedDict[str, RequestRecord]" = OrderedDict()
        self._detached: set = set()
        self._ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, self.config.dispatchers),
            thread_name_prefix="repro-serve")

    # -------------------------------------------------------------- parsing

    def _parse_common(self, body: Dict[str, Any], default_schemes,
                      default_size: str) -> Tuple[Any, List[str], str, str]:
        if not isinstance(body, dict):
            raise ServeError(400, "request body must be a JSON object")
        workload = body.get("workload")
        known = workload_names()
        if workload not in known:
            raise ServeError(400, f"unknown workload {workload!r}; choose "
                                  f"from {' '.join(known)}")
        size = body.get("size", default_size)
        schemes = list(body.get("schemes") or default_schemes)
        for scheme in schemes:
            if scheme not in SCHEME_NAMES:
                raise ServeError(400, f"unknown scheme {scheme!r}; choose "
                                      f"from {' '.join(SCHEME_NAMES)}")
        engine = body.get("engine")
        if engine is not None and engine not in ENGINE_NAMES:
            raise ServeError(400, f"unknown engine {engine!r}; choose from "
                                  f"{', '.join(ENGINE_NAMES)}")
        jit = body.get("jit")
        if jit is not None:
            # Accept JSON booleans (the common case) or an explicit mode
            # string; anything else is a client error, same as a bad
            # engine name or an over-cap procs count.
            if jit is True:
                jit = "on"
            elif jit is False:
                jit = "off"
            if jit not in ("on", "off", "interp"):
                raise ServeError(400, f"invalid jit flag {jit!r}; use true, "
                                      f"false, or one of on, off, interp")
        try:
            program = build_workload(workload, size=size)
        except (ReproError, ValueError, KeyError) as exc:
            raise ServeError(400, str(exc)) from None
        return program, schemes, engine, jit

    def parse_simulate(self, body: Dict[str, Any]) -> _Parsed:
        program, schemes, engine, jit = self._parse_common(
            body, ("base", "sc", "tpi", "hw"), "default")
        procs = body.get("procs", 16)
        if not isinstance(procs, int) or procs < 1:
            raise ServeError(400, f"procs must be a positive integer, "
                                  f"got {procs!r}")
        try:
            machine = default_machine().with_(n_procs=procs)
        except ReproError as exc:
            # n_procs above the REPRO_MAX_PROCS cap is a client error, not
            # a server fault: surface the one-line ConfigError as a 400.
            raise ServeError(400, str(exc)) from None
        if engine:
            machine = machine.with_(engine=engine)
        if jit:
            machine = machine.with_(jit=jit)
        jobs = jobs_for_schemes(program, schemes, machine)
        return _Parsed(kind="simulate", jobs=jobs, schemes=tuple(schemes))

    def parse_sweep(self, body: Dict[str, Any]) -> _Parsed:
        program, schemes, engine, jit = self._parse_common(
            body, ("tpi", "hw"), "small")
        axes = body.get("axes")
        if not axes or not isinstance(axes, list):
            raise ServeError(400, "sweep needs a non-empty 'axes' list, "
                                  "e.g. [\"line=1,4\", \"k=2,8\"]")
        base = default_machine()
        if engine:
            base = base.with_(engine=engine)
        if jit:
            base = base.with_(jit=jit)
        try:
            sweep = sweep_from_specs(program, [str(a) for a in axes],
                                     schemes=schemes, base=base)
        except ValueError as exc:
            raise ServeError(400, str(exc)) from None
        jobs = expand_sweep(sweep)
        return _Parsed(kind="sweep", jobs=jobs, schemes=tuple(schemes))

    # ------------------------------------------------------------- answering

    @staticmethod
    def request_fingerprint(parsed: _Parsed) -> str:
        """The coalescing key: request kind + its job fingerprints.

        Job fingerprints already mix in the cache salt and prune
        scheme-dead config fields, so equivalent requests — including
        ones that only differ in fields their schemes ignore — coalesce.
        """
        text = "|".join([parsed.kind,
                         *[job.fingerprint() for job in parsed.jobs]])
        return hashlib.sha256(text.encode()).hexdigest()

    def _build_payload(self, parsed: _Parsed, results: List[Any],
                       telemetry: Optional[Telemetry]) -> bytes:
        if parsed.kind == "simulate":
            mapping = {job.scheme: result
                       for job, result in zip(parsed.jobs, results)}
            ordered = {scheme: mapping[scheme] for scheme in parsed.schemes}
            return json_bytes(simulate_payload(ordered, telemetry))
        points = [SweepPoint(labels=job.tag, scheme=job.scheme, result=result)
                  for job, result in zip(parsed.jobs, results)]
        return json_bytes(sweep_payload(points, telemetry))

    def _try_cache(self, parsed: _Parsed) -> Optional[List[Any]]:
        """All-results cache probe; ``None`` when any job misses."""
        if self.cache is None:
            return None
        results: List[Any] = []
        for job in parsed.jobs:
            hit = self.cache.load(KIND_RESULT, job.fingerprint())
            if hit is None:
                return None
            results.append(hit)
        return results

    def _run_cold(self, parsed: _Parsed) -> bytes:
        """Blocking path (runs on the dispatch thread pool)."""
        telemetry = Telemetry()
        executor = ParallelExecutor(jobs=self.config.jobs, cache=self.cache,
                                    telemetry=telemetry,
                                    timeout=self.config.timeout,
                                    retries=self.config.retries)
        results = executor.run(parsed.jobs)
        return self._build_payload(parsed, results, telemetry)

    async def answer(self, kind: str, body: Dict[str, Any],
                     record: Optional[RequestRecord] = None) -> bytes:
        """Resolve one request to its JSON payload bytes."""
        started = time.perf_counter()
        parse = self.parse_simulate if kind == "simulate" else self.parse_sweep
        try:
            parsed = parse(body)
            if record is not None:
                record.status = "running"
            payload, source = await self._resolve(parsed)
        except BaseException as exc:
            self.telemetry.note_request(time.perf_counter() - started,
                                        "error")
            if record is not None:
                record.status = "error"
                record.source = "error"
                record.error = str(exc)
                record.wall_s = time.perf_counter() - started
            raise
        wall = time.perf_counter() - started
        self.requests_by_kind[kind] = self.requests_by_kind.get(kind, 0) + 1
        self.telemetry.note_request(wall, source)
        if record is not None:
            record.status = "done"
            record.source = source
            record.wall_s = wall
            record.payload = payload
        return payload

    async def _resolve(self, parsed: _Parsed) -> Tuple[bytes, str]:
        warm = self._try_cache(parsed)
        if warm is not None:
            # Fresh telemetry: a fully warm answer has no phase timings
            # and zero gang counters, exactly like a warm CLI run — the
            # payload stays byte-identical and deterministic.
            return self._build_payload(parsed, warm, Telemetry()), "hit"
        key = self.request_fingerprint(parsed)
        existing = self._inflight.get(key)
        if existing is not None:
            return await existing, "coalesced"
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.dispatched += 1
        try:
            payload = await loop.run_in_executor(self._pool, self._run_cold,
                                                 parsed)
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                future.exception()  # consumed here if nobody coalesced
            raise
        else:
            if not future.cancelled():
                future.set_result(payload)
            return payload, "computed"
        finally:
            self._inflight.pop(key, None)

    # --------------------------------------------------------- job registry

    def new_record(self, kind: str, detach: bool = False) -> RequestRecord:
        record = RequestRecord(id=f"j{next(self._ids):06d}", kind=kind,
                               detach=detach)
        self._records[record.id] = record
        while len(self._records) > JOB_REGISTRY_CAP:
            self._records.popitem(last=False)
        return record

    def get_record(self, job_id: str) -> RequestRecord:
        record = self._records.get(job_id)
        if record is None:
            raise ServeError(404, f"unknown job {job_id!r}")
        return record

    def submit_detached(self, kind: str, body: Dict[str, Any]) -> RequestRecord:
        """Schedule a request in the background; poll ``/jobs/<id>``."""
        record = self.new_record(kind, detach=True)

        async def runner() -> None:
            try:
                await self.answer(kind, body, record)
            except Exception:
                pass  # outcome is recorded on the RequestRecord

        task = asyncio.get_running_loop().create_task(runner())
        self._detached.add(task)
        task.add_done_callback(self._detached.discard)
        return record

    # ----------------------------------------------------------- lifecycle

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for in-flight and detached work; True when fully drained."""
        pending = [future for future in self._inflight.values()
                   if not future.done()]
        pending.extend(task for task in self._detached if not task.done())
        if not pending:
            return True
        done, not_done = await asyncio.wait(pending, timeout=timeout)
        for future in done:
            if not future.cancelled():
                future.exception()  # drained errors are already recorded
        return not not_done

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    # --------------------------------------------------------------- stats

    def stats_payload(self) -> Dict[str, Any]:
        t = self.telemetry
        cache_info: Any = None
        if self.cache is not None:
            describe = getattr(self.cache, "describe", None)
            cache_info = describe() if describe else {"root": str(self.cache.root)}
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": {
                "total": t.serve_requests,
                **self.requests_by_kind,
                "hits": t.serve_hits,
                "coalesced": t.serve_coalesced,
                "dispatched": self.dispatched,
                "errors": t.serve_errors,
                "inflight": len(self._inflight),
                "hit_rate": round(t.serve_hit_rate, 4),
            },
            "latency": {
                "p50_ms": t.serve_section()["p50_ms"],
                "p99_ms": t.serve_section()["p99_ms"],
                "samples": len(t.serve_latency_s),
            },
            "executor": {"jobs": self.config.jobs,
                         "dispatchers": self.config.dispatchers,
                         "timeout_s": self.config.timeout,
                         "retries": self.config.retries},
            "cache": cache_info,
        }
