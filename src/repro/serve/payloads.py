"""The JSON payloads shared by the CLI ``--json`` flags and the server.

One builder per request kind, used verbatim by ``repro simulate --json``,
``repro sweep --json``, and the ``POST /simulate`` / ``POST /sweep``
routes — this sharing is what makes the server's differential guarantee
(``tests/test_serve.py``) hold: for the same job fingerprints a server
response is byte-identical to the CLI file, because both are the same
dict rendered through :func:`repro.runtime.write_json`.
"""

from __future__ import annotations

import io
from typing import Any, Dict, List, Optional

from repro.runtime.telemetry import Telemetry, write_json


def json_bytes(payload: Any) -> bytes:
    """Render a payload exactly as ``write_json`` writes it to a file."""
    buffer = io.StringIO()
    write_json(payload, buffer)
    return buffer.getvalue().encode()


def phases_dict(telemetry: Optional[Telemetry]) -> Dict[str, float]:
    return {phase: round(seconds, 6)
            for phase, seconds in sorted((telemetry.phase_s if telemetry
                                          else {}).items())}


def simulate_payload(results: Dict[str, Any],
                     telemetry: Optional[Telemetry] = None) -> Dict[str, Any]:
    """``repro simulate --json`` shape: per-scheme results (+ phases).

    The ``phases`` key appears only when phase timings were recorded —
    a fully warm run (every result a cache hit) has none, which keeps
    warm payloads deterministic.
    """
    payload: Dict[str, Any] = {scheme: result.to_dict()
                               for scheme, result in results.items()}
    if telemetry is not None and telemetry.phase_s:
        payload["phases"] = phases_dict(telemetry)
    return payload


def sweep_payload(points: List[Any],
                  telemetry: Optional[Telemetry] = None) -> Dict[str, Any]:
    """``repro sweep --json`` shape: grid points + run counters."""
    t = telemetry if telemetry is not None else Telemetry()
    return {
        "points": [{"labels": point.labels, "scheme": point.scheme,
                    "result": point.result.to_dict()}
                   for point in points],
        "traces_generated": t.traces_generated,
        "gang": {"traces_shared": t.traces_shared,
                 "results_shared": t.results_shared,
                 "width": t.gang_width},
        "phases": phases_dict(t),
    }
