"""Simulation-as-a-service: the long-lived HTTP front end.

``repro serve`` turns the one-shot runtime into a service: an asyncio
HTTP/JSON server whose responses are byte-identical to the CLI
``--json`` files, answered through a three-level dedup funnel (artifact
cache read-through, in-flight request coalescing by fingerprint,
scheme-dead config pruning) before anything reaches the worker pool.
See ``docs/SERVE.md`` for the API and the ops runbook.

    from repro.serve import ServeConfig, ServeServer, SimulationService

    service = SimulationService(cache=ShardedCache(), config=ServeConfig())
    server = ServeServer(service, host="127.0.0.1", port=8089)
"""

from repro.serve.payloads import json_bytes, simulate_payload, sweep_payload
from repro.serve.server import ServeServer, run_server
from repro.serve.service import (
    RequestRecord,
    ServeConfig,
    ServeError,
    SimulationService,
)

__all__ = [
    "RequestRecord",
    "ServeConfig",
    "ServeError",
    "ServeServer",
    "SimulationService",
    "json_bytes",
    "run_server",
    "simulate_payload",
    "sweep_payload",
]
