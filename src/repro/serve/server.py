"""Minimal asyncio HTTP/1.1 front end for the simulation service.

Pure stdlib (``asyncio`` streams; no framework): requests are parsed by
hand, one connection per request (``Connection: close``), bodies are
JSON.  Routes:

=======  =========================  ===========================================
Method   Path                       Purpose
=======  =========================  ===========================================
POST     ``/simulate``              run schemes on a workload (CLI payload)
POST     ``/sweep``                 run a grid study (CLI payload)
GET      ``/jobs/<id>``             status/result of a recorded request
GET      ``/healthz``               liveness probe
GET      ``/stats``                 service counters, latency percentiles
GET      ``/artifact/<kind>/<key>`` raw cached pickle (the peer tier of
                                    :class:`~repro.runtime.shardcache.ShardedCache`
                                    reads this route)
=======  =========================  ===========================================

``POST`` bodies accept ``{"detach": true}`` to get a ``202`` with a job
id immediately and poll ``GET /jobs/<id>``; synchronous responses carry
their job id in the ``X-Repro-Job`` header instead, keeping the body
byte-identical to the CLI ``--json`` file for the same fingerprints.

Shutdown is graceful: the listener closes first, then in-flight and
detached requests drain (bounded by ``drain_timeout``), then the
dispatch pool stops.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import ReproError
from repro.runtime.cache import _KINDS
from repro.serve.payloads import json_bytes
from repro.serve.service import ServeError, SimulationService

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}
_KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")
_MAX_BODY = 1 << 20  # 1 MiB of JSON is far beyond any legal request


class ServeServer:
    """Owns the listening socket and routes connections to the service."""

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 8089,
                 drain_timeout: float = 30.0):
        self.service = service
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind and listen; raises ``OSError`` when the address is bad."""
        self._server = await asyncio.start_server(self._handle, self.host,
                                                  self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_stopped(self) -> None:
        await self._stopping.wait()
        await self.shutdown()

    def request_stop(self) -> None:
        self._stopping.set()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight work, stop the dispatch pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.drain(timeout=self.drain_timeout)
        self.service.close()

    # ----------------------------------------------------------- connection

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"),
                                              timeout=30.0)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError):
                return
            method, path, headers = self._parse_head(head)
            length = int(headers.get("content-length", "0") or "0")
            if length < 0 or length > _MAX_BODY:
                await self._respond(writer, 400,
                                    {"error": "unreasonable content-length"})
                return
            body = await reader.readexactly(length) if length else b""
            status, payload, extra = await self._route(method, path, body)
            await self._respond(writer, status, payload, extra)
        except ConnectionError:
            pass
        except Exception as exc:  # last-resort 500, connection still closes
            try:
                await self._respond(writer, 500, {"error": str(exc)})
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 2:
            raise ServeError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        path = target.partition("?")[0]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Any,
                       extra: Optional[Dict[str, str]] = None) -> None:
        if isinstance(payload, bytes):
            body = payload
            content_type = (extra or {}).pop("content-type",
                                             "application/json")
        else:
            body = json_bytes(payload)
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        headers = [f"HTTP/1.1 {status} {reason}",
                   f"Content-Type: {content_type}",
                   f"Content-Length: {len(body)}",
                   "Connection: close"]
        for name, value in (extra or {}).items():
            headers.append(f"{name}: {value}")
        writer.write("\r\n".join(headers).encode("latin-1") + b"\r\n\r\n"
                     + body)
        await writer.drain()

    # -------------------------------------------------------------- routing

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Any, Dict[str, str]]:
        try:
            if path == "/healthz" and method == "GET":
                return 200, {"status": "ok",
                             "uptime_s": round(time.time()
                                               - self.service.started_at, 3)}, {}
            if path == "/stats" and method == "GET":
                return 200, self.service.stats_payload(), {}
            if path in ("/simulate", "/sweep"):
                if method != "POST":
                    return 405, {"error": f"{path} requires POST"}, {}
                return await self._route_request(path.lstrip("/"), body)
            if path.startswith("/jobs/") and method == "GET":
                record = self.service.get_record(path[len("/jobs/"):])
                return 200, record.to_dict(), {}
            if path.startswith("/artifact/") and method == "GET":
                return self._route_artifact(path)
            return 404, {"error": f"no route for {method} {path}"}, {}
        except ServeError as exc:
            self.service.telemetry.serve_errors += 1
            return exc.status, {"error": str(exc)}, {}
        except ReproError as exc:
            self.service.telemetry.serve_errors += 1
            return 400, {"error": str(exc)}, {}

    async def _route_request(self, kind: str,
                             body: bytes) -> Tuple[int, Any, Dict[str, str]]:
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(400, f"invalid JSON body: {exc}") from None
        if not isinstance(request, dict):
            raise ServeError(400, "request body must be a JSON object")
        if request.pop("detach", False):
            record = self.service.submit_detached(kind, request)
            return 202, record.to_dict(include_result=False), {}
        record = self.service.new_record(kind)
        payload = await self.service.answer(kind, request, record)
        return 200, payload, {"X-Repro-Job": record.id}

    def _route_artifact(self, path: str) -> Tuple[int, Any, Dict[str, str]]:
        cache = self.service.cache
        if cache is None:
            raise ServeError(404, "no cache configured")
        parts = path.split("/")  # ['', 'artifact', kind, key]
        if len(parts) != 4:
            raise ServeError(404, "artifact path is /artifact/<kind>/<key>")
        _, _, kind, key = parts
        if kind not in _KINDS or not _KEY_RE.match(key):
            raise ServeError(404, f"no artifact {kind}/{key}")
        try:
            payload = cache._path(kind, key).read_bytes()
        except OSError:
            raise ServeError(404, f"no artifact {kind}/{key}") from None
        return 200, payload, {"content-type": "application/octet-stream"}


async def run_server(service: SimulationService, host: str, port: int,
                     ready: Optional[asyncio.Event] = None,
                     drain_timeout: float = 30.0) -> ServeServer:
    """Start a server, optionally signal ``ready``, and block until it is
    asked to stop (signal handlers or :meth:`ServeServer.request_stop`)."""
    server = ServeServer(service, host=host, port=port,
                         drain_timeout=drain_timeout)
    await server.start()
    if ready is not None:
        ready.set()
    await server.serve_until_stopped()
    return server
