"""TRFD — two-electron integral transformation (Perfect Club).

The original: a quantum-chemistry kernel dominated by the transformation
``X := C^T * V * C`` over triangular pair indices ``ij = i*(i+1)/2 + j``.
Polaris parallelizes the pair loops into DOALLs; each task *accumulates*
into its output elements across the contraction index, producing many
repeated writes to the same words — the redundant write traffic the paper
singles TRFD out for (and which a coalescing write buffer removes).

Modeled here:

* accumulation chains per output element (three writes per element per
  contraction step) inside ``half_transform``;
* a genuine triangular pair walk in ``pair_reduce`` driven by the induction
  scalar ``ij0 := ij0 + r + 1`` — not affine in the loop index, so the
  compiler's GSA-lite analysis must widen it and mark the reads
  conservatively, exactly the imprecision real TRFD induces;
* serial transform-setup epochs (master rewrites a C row each pass) feeding
  parallel epochs: the serial-write -> parallel-read Time-Read pattern.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(n: int = 16, m: int = 6, passes: int = 2) -> Program:
    """Build the TRFD-like kernel.

    ``n`` basis functions give ``n*(n+1)/2`` pair indices; ``m`` is the
    contraction length (accumulation chain per output element); ``passes``
    repeats the two half-transformations.
    """
    nij = n * (n + 1) // 2
    b = ProgramBuilder("trfd", params={"PASSES": passes})
    b.array("V", (nij, m))
    b.array("C", (n, m))
    b.array("X", (nij, m))
    b.array("XRS", (nij,))
    b.array("tmp", (m,), private=True)

    with b.procedure("half_transform"):
        with b.doall("ij", 0, nij - 1, label="trf1") as ij:
            with b.serial("k", 0, m - 1) as k:
                b.stmt(reads=[b.at("V", ij, k), b.at("C", 0, k)],
                       writes=[b.at("tmp", k)], work=2)
                b.stmt(reads=[b.at("tmp", k), b.at("X", ij, k)],
                       writes=[b.at("X", ij, k)], work=2)
                b.stmt(reads=[b.at("tmp", k), b.at("X", ij, k)],
                       writes=[b.at("X", ij, k)], work=2)

    with b.procedure("pair_reduce"):
        # Triangular walk: row r owns pairs [ij0, ij0 + r]; ij0 advances by
        # r+1 each outer iteration (induction scalar, range-widened by the
        # compiler -> conservative whole-array sections).
        ij0 = b.assign("ij0", 0)
        with b.serial("r", 0, n - 1) as r:
            with b.doall("j", 0, r, label="trf2") as j:
                b.stmt(reads=[b.at("X", ij0 + j, 0), b.at("X", ij0 + j, 1)],
                       writes=[b.at("XRS", ij0 + j)], work=3)
            b.assign("ij0", ij0 + r + 1)

    with b.procedure("normalize"):
        # Normalize the reduced pair vector against its first element
        # (parallel, broadcast-reading one hot word).
        with b.doall("nz", 0, nij - 1, label="normalize") as nz:
            b.stmt(writes=[b.at("XRS", nz)],
                   reads=[b.at("XRS", nz), b.at("XRS", 0)], work=2)

    with b.procedure("main"):
        with b.serial("it", 0, b.p("PASSES") - 1):
            # Serial setup epoch: the master rescales the first C row.
            with b.serial("k0", 0, m - 1) as k0:
                b.stmt(reads=[b.at("C", 0, k0)], writes=[b.at("C", 0, k0)],
                       work=1)
            b.call("half_transform")
            b.call("pair_reduce")
            b.call("normalize")

    return b.build()


SMALL = dict(n=8, m=4, passes=2)
LARGE = dict(n=32, m=8, passes=3)
