"""FLO52 — transonic flow past an airfoil, multigrid Euler solver
(Perfect Club).

The original runs Runge-Kutta smoothing sweeps on a sequence of grids
(multigrid W-cycles), transferring residuals down (restriction) and
corrections up (prolongation).

Modeled here: three grid levels sharing one flat array per quantity with
power-of-two strides.  Each cycle runs smoothing DOALLs at every level
(stride-2^l accesses — strided regular sections and per-level sharing
patterns), a strided restriction (fine reads -> coarse writes) and
prolongation (coarse reads -> fine writes).  The metric terms are
read-only after setup.  Level changes shift which processors touch which
elements, creating cross-epoch true sharing with *varying reuse distance* —
the pattern that separates timestamp Time-Reads from strict ones.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(n: int = 64, cycles: int = 2, levels: int = 3) -> Program:
    if n % (1 << (levels - 1)):
        raise ValueError("n must be divisible by 2^(levels-1)")
    b = ProgramBuilder("flo52", params={"CYC": cycles})
    b.array("W", (n,))  # solution
    b.array("R", (n,))  # residual
    b.array("METRIC", (n,))  # read-only after setup
    b.array("DT", (1,))  # global time step (serial reduction)

    with b.procedure("setup"):
        with b.doall("i", 0, n - 1, label="setup") as i:
            b.stmt(writes=[b.at("W", i)], work=1)
            b.stmt(writes=[b.at("METRIC", i)], work=2)
        b.stmt(writes=[b.at("DT", 0)], work=1)

    with b.procedure("timestep"):
        # Serial CFL reduction on the master: sample the fine grid and
        # publish the new global time step (read by every smoothing task).
        with b.serial("cfl", 0, n - 1, step=max(1, n // 16)) as cfl:
            b.stmt(writes=[b.at("DT", 0)],
                   reads=[b.at("DT", 0), b.at("W", cfl)], work=2)

    for level in range(levels):
        stride = 1 << level
        count = n // stride

        with b.procedure(f"smooth_l{level}"):
            with b.doall(f"s{level}", 1, count - 2,
                         label=f"smooth{level}") as s:
                b.stmt(writes=[b.at("R", s * stride)],
                       reads=[b.at("W", s * stride - stride),
                              b.at("W", s * stride + stride),
                              b.at("METRIC", s * stride),
                              b.at("DT", 0)],
                       work=5)
                b.stmt(writes=[b.at("W", s * stride)],
                       reads=[b.at("R", s * stride)], work=2)

        with b.procedure(f"bc_l{level}"):
            # Far-field boundary fix-up at this level (master-only).
            b.stmt(writes=[b.at("W", 0)], reads=[b.at("W", stride)], work=2)
            b.stmt(writes=[b.at("W", n - stride)],
                   reads=[b.at("W", n - 2 * stride)], work=2)

    for level in range(levels - 1):
        stride = 1 << level
        coarse = stride * 2
        count = n // coarse

        with b.procedure(f"restrict_l{level}"):
            with b.doall(f"r{level}", 1, count - 2,
                         label=f"restrict{level}") as r:
                b.stmt(writes=[b.at("R", r * coarse)],
                       reads=[b.at("R", r * coarse - stride),
                              b.at("R", r * coarse + stride)],
                       work=3)

        with b.procedure(f"prolong_l{level}"):
            with b.doall(f"p{level}", 1, count - 2,
                         label=f"prolong{level}") as p:
                b.stmt(writes=[b.at("W", p * coarse - stride)],
                       reads=[b.at("W", p * coarse),
                              b.at("W", p * coarse - coarse)],
                       work=3)

    with b.procedure("main"):
        b.call("setup")
        with b.serial("c", 0, b.p("CYC") - 1):
            b.call("timestep")
            # Down-leg of the W-cycle...
            for level in range(levels - 1):
                b.call(f"smooth_l{level}")
                b.call(f"bc_l{level}")
                b.call(f"restrict_l{level}")
            b.call(f"smooth_l{levels - 1}")
            # ...and back up.
            for level in reversed(range(levels - 1)):
                b.call(f"prolong_l{level}")
                b.call(f"smooth_l{level}")

    return b.build()


SMALL = dict(n=32, cycles=1, levels=3)
LARGE = dict(n=512, cycles=4, levels=4)
