"""OCEAN — 2-D ocean basin circulation (Perfect Club).

The original solves the dynamical equations of a rectangular ocean basin:
leapfrog time-stepping over several 2-D fields with neighbour-difference
operators, periodic boundary fix-ups, and read-only forcing/metric tables.

Modeled here, per timestep:

* a DOALL row sweep computing vorticity from two velocity fields at the
  previous time level (neighbour reads: true sharing at chunk boundaries);
* a DOALL leapfrog update rotating three time levels (self-owned rewrites:
  the producer-consumer pattern where TPI's W registers preserve the
  writer's own copies);
* a *serial* boundary fix-up epoch touching the basin edges (master-writes
  -> parallel-reads Time-Read pattern);
* a red-black *stream-function relaxation* whose parity branch gives
  data-dependent control flow inside tasks;
* a wind-forcing table refreshed by the master every other step (an If
  with epochs inside, exercising the EFG's fork/join paths);
* read-only Coriolis/metric tables reused every epoch (loop-invariant data
  that must keep hitting under TPI).
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(n: int = 24, steps: int = 4) -> Program:
    b = ProgramBuilder("ocean", params={"T": steps})
    b.array("UA", (n, n))  # velocity, previous level
    b.array("UB", (n, n))  # velocity, current level
    b.array("VORT", (n, n))
    b.array("PSI", (n, n))  # stream function
    b.array("WIND", (n,))  # forcing, refreshed by the master
    b.array("CORIOLIS", (n, n))  # read-only after init
    b.array("row_tmp", (n,), private=True)

    with b.procedure("init"):
        with b.doall("i", 0, n - 1, label="init") as i:
            with b.serial("j", 0, n - 1) as j:
                b.stmt(writes=[b.at("UA", i, j)], work=1)
                b.stmt(writes=[b.at("UB", i, j)], work=1)
                b.stmt(writes=[b.at("PSI", i, j)], work=1)
                b.stmt(writes=[b.at("CORIOLIS", i, j)], work=2)
            b.stmt(writes=[b.at("WIND", i)], work=1)

    with b.procedure("vorticity"):
        with b.doall("i", 1, n - 2, label="vort") as i:
            with b.serial("j", 1, n - 2) as j:
                b.stmt(writes=[b.at("VORT", i, j)],
                       reads=[b.at("UB", i - 1, j), b.at("UB", i + 1, j),
                              b.at("UB", i, j - 1), b.at("UB", i, j + 1),
                              b.at("CORIOLIS", i, j)],
                       work=6)

    with b.procedure("leapfrog"):
        with b.doall("i", 1, n - 2, label="leap") as i:
            with b.serial("j", 1, n - 2) as j:
                b.stmt(writes=[b.at("row_tmp", j)],
                       reads=[b.at("UA", i, j), b.at("VORT", i, j)],
                       work=3)
                b.stmt(writes=[b.at("UA", i, j)], reads=[b.at("UB", i, j)],
                       work=1)
                b.stmt(writes=[b.at("UB", i, j)], reads=[b.at("row_tmp", j)],
                       work=1)

    with b.procedure("relax_psi"):
        # One red-black relaxation sweep of the stream function; the
        # parity branch selects which neighbours feed the update.
        with b.doall("i", 1, n - 2, label="relax") as i:
            with b.serial("j", 1, n - 2) as j:
                with b.when(b.v("j"), "<", n // 2):
                    b.stmt(writes=[b.at("PSI", i, j)],
                           reads=[b.at("PSI", i - 1, j), b.at("PSI", i + 1, j),
                                  b.at("VORT", i, j)],
                           work=4)
                b.stmt(writes=[b.at("PSI", i, j)],
                       reads=[b.at("PSI", i, j), b.at("WIND", i)], work=2)

    with b.procedure("boundary"):
        # Serial fix-up on the master: periodic edges.
        with b.serial("j", 0, n - 1) as j:
            b.stmt(writes=[b.at("UB", 0, j)], reads=[b.at("UB", n - 2, j)],
                   work=1)
            b.stmt(writes=[b.at("UB", n - 1, j)], reads=[b.at("UB", 1, j)],
                   work=1)

    with b.procedure("main"):
        b.call("init")
        with b.serial("t", 0, b.p("T") - 1):
            b.call("vorticity")
            b.call("relax_psi")
            b.call("leapfrog")
            b.call("boundary")
            with b.when(b.v("t"), "<", max(1, steps // 2)):
                # Early steps: the master refreshes the wind forcing.
                with b.serial("w", 0, n - 1) as w:
                    b.stmt(writes=[b.at("WIND", w)],
                           reads=[b.at("WIND", w)], work=1)

    return b.build()


SMALL = dict(n=12, steps=2)
LARGE = dict(n=64, steps=6)
