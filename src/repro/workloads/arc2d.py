"""ARC2D-style implicit CFD kernel (ADI scheme).

The paper evaluates six Perfect Club programs but the recovered text names
only five (SPEC77, OCEAN, FLO52, QCD2, TRFD); an ARC2D-style alternating
direction implicit (ADI) solver stands in for the sixth — ARC2D is the
canonical Polaris/Perfect Club CFD code, and its access pattern stresses a
distinct axis: *direction-alternating* sweeps.

Per step:

* an x-sweep DOALL over rows: unit-stride accesses with per-row tridiagonal
  forward/backward substitution (serial inner loops, good spatial
  locality);
* a y-sweep DOALL over columns: column-major access through a row-major
  array, so consecutive tasks write *adjacent words of the same cache
  line* — the classic false-sharing generator for line-grained directories
  that TPI's per-word timetags sidestep;
* a fourth-difference *artificial dissipation* phase with a wide row
  stencil (reads at distance 2 — sections spanning several cache lines);
* a *residual-norm* diagnostic accumulated through a critical section;
* read-only metric/Jacobian tables reused in both sweeps.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(n: int = 24, steps: int = 3) -> Program:
    b = ProgramBuilder("arc2d", params={"T": steps})
    b.array("Q", (n, n))  # state
    b.array("RHS", (n, n))
    b.array("JAC", (n, n))  # read-only metrics
    b.array("RESID", (1,))
    b.array("diag", (n,), private=True)

    with b.procedure("init"):
        with b.doall("i", 0, n - 1, label="ainit") as i:
            with b.serial("j", 0, n - 1) as j:
                b.stmt(writes=[b.at("Q", i, j)], work=1)
                b.stmt(writes=[b.at("JAC", i, j)], work=2)

    with b.procedure("xsweep"):
        # Row-wise tridiagonal solve: unit stride, private scratch.
        with b.doall("i", 1, n - 2, label="xsweep") as i:
            with b.serial("j", 1, n - 2) as j:  # forward elimination
                b.stmt(writes=[b.at("diag", j)],
                       reads=[b.at("Q", i, j - 1), b.at("Q", i, j),
                              b.at("JAC", i, j)],
                       work=4)
            with b.serial("jb", 1, n - 2) as jb:  # back substitution
                b.stmt(writes=[b.at("RHS", i, jb)],
                       reads=[b.at("diag", jb), b.at("Q", i, jb)], work=3)

    with b.procedure("dissipate"):
        # Fourth-difference smoothing along rows: the distance-2 stencil
        # makes each task's read section span well beyond its own rows.
        with b.doall("i", 2, n - 3, label="dissip") as i:
            with b.serial("j", 2, n - 3) as j:
                b.stmt(writes=[b.at("RHS", i, j)],
                       reads=[b.at("Q", i, j - 2), b.at("Q", i, j - 1),
                              b.at("Q", i, j), b.at("Q", i, j + 1),
                              b.at("Q", i, j + 2), b.at("RHS", i, j)],
                       work=6)

    with b.procedure("residual"):
        # L2 residual norm: per-row partial sums folded under a lock.
        with b.doall("r", 1, n - 2, label="resid") as r:
            with b.serial("c", 1, n - 2) as c:
                b.stmt(writes=[b.at("diag", c)],
                       reads=[b.at("RHS", r, c)], work=1)
            with b.critical("resid_lock"):
                b.stmt(writes=[b.at("RESID", 0)],
                       reads=[b.at("RESID", 0), b.at("diag", 1)], work=2)

    with b.procedure("ysweep"):
        # Column-wise solve: tasks own columns, so writes from adjacent
        # tasks land in the same cache lines (row-major layout).
        with b.doall("j", 1, n - 2, label="ysweep") as j:
            with b.serial("i", 1, n - 2) as i:
                b.stmt(writes=[b.at("Q", i, j)],
                       reads=[b.at("RHS", i, j), b.at("RHS", i - 1, j),
                              b.at("JAC", i, j)],
                       work=4)

    with b.procedure("main"):
        b.call("init")
        b.stmt(writes=[b.at("RESID", 0)], work=1)
        with b.serial("t", 0, b.p("T") - 1):
            b.call("xsweep")
            b.call("dissipate")
            b.call("ysweep")
            b.call("residual")
        b.stmt(reads=[b.at("RESID", 0)], work=1)

    return b.build()


SMALL = dict(n=12, steps=2)
LARGE = dict(n=64, steps=4)
