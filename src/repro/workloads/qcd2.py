"""QCD2 — lattice gauge theory, quenched QCD simulation (Perfect Club).

The original performs heat-bath/metropolis updates of SU(3) gauge links on
a 4-D space-time lattice: each link update gathers "staples" from
neighbouring links in several directions, and observables (plaquette
averages) are accumulated globally.

Modeled here: the 4-D lattice is flattened to link arrays indexed by
site, one per (modelled) direction; a sweep updates each site's link from
neighbours at *multiple strides* (the flattened images of the 4
dimensions) and from the *other* direction's links (the staple coupling),
producing fine-grained scattered sharing — many lines holding words
written by different processors.  This is exactly the access pattern that
drives the directory scheme's extra coherence transactions and higher
average miss latency on QCD2 in the paper's latency table.  A
critical-section plaquette accumulation exercises the Section-5 lock
support; an acceptance test (If on a site-dependent expression) gives
data-dependent control flow; a serial gauge-fixing epoch renormalizes a
stripe of links between sweeps (master-write -> parallel-read).
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(nsite: int = 256, sweeps: int = 3, nx: int = 4) -> Program:
    """``nsite`` flattened lattice sites; neighbour strides 1, nx, nx*nx."""
    b = ProgramBuilder("qcd2", params={"SW": sweeps})
    b.array("LINK", (nsite,))
    b.array("LINK2", (nsite,))  # second direction
    b.array("STAPLE", (nsite,))
    b.array("PLAQ", (1,))
    b.array("BETA", (4,))  # couplings: read-only
    b.array("hits", (4,), private=True)  # acceptance counters
    sx, sy = 1, nx
    sz = nx * nx

    with b.procedure("init"):
        with b.doall("i", 0, nsite - 1, label="qinit") as i:
            b.stmt(writes=[b.at("LINK", i)], work=1)
            b.stmt(writes=[b.at("LINK2", i)], work=1)
        with b.serial("d", 0, 3) as d:
            b.stmt(writes=[b.at("BETA", d)], work=1)

    with b.procedure("staples"):
        # Gather staples from neighbours in three flattened directions and
        # from the orthogonal direction's links (the staple coupling);
        # modular wraparound is approximated by clamping the sweep range.
        hi = nsite - 1 - sz
        with b.doall("s", sz, hi, label="staples") as s:
            b.stmt(writes=[b.at("STAPLE", s)],
                   reads=[b.at("LINK", s - sx), b.at("LINK", s + sx),
                          b.at("LINK", s - sy), b.at("LINK", s + sy),
                          b.at("LINK", s - sz), b.at("LINK", s + sz),
                          b.at("LINK2", s), b.at("LINK2", s + sy),
                          b.at("BETA", 0)],
                   work=16)

    with b.procedure("update"):
        hi = nsite - 1 - sz
        with b.doall("s", sz, hi, label="update") as s:
            # Data-dependent acceptance: even sites take the cheap path.
            with b.when(b.v("s"), "<", (nsite // 2)):
                b.stmt(writes=[b.at("LINK", s)],
                       reads=[b.at("STAPLE", s), b.at("BETA", 1)], work=8)
                b.stmt(writes=[b.at("hits", 0)], reads=[b.at("hits", 0)],
                       work=1)
            b.stmt(writes=[b.at("LINK", s)],
                   reads=[b.at("STAPLE", s), b.at("BETA", 2)], work=4)

    with b.procedure("update_dir2"):
        # The orthogonal direction's heat-bath, coupled back to LINK.
        hi = nsite - 1 - sy
        with b.doall("u", sy, hi, label="update2") as u:
            b.stmt(writes=[b.at("LINK2", u)],
                   reads=[b.at("LINK", u), b.at("LINK", u + sy),
                          b.at("LINK2", u - sy), b.at("BETA", 3)],
                   work=10)

    with b.procedure("gauge_fix"):
        # Serial renormalization of the first time-slice (master-only),
        # re-read by every processor in the next sweep.
        with b.serial("g", 0, sz - 1) as g:
            b.stmt(writes=[b.at("LINK", g)], reads=[b.at("LINK", g)], work=2)

    with b.procedure("measure"):
        with b.doall("s", 0, nsite - 1, step=8, label="measure") as s:
            with b.critical("plaq_lock"):
                b.stmt(writes=[b.at("PLAQ", 0)],
                       reads=[b.at("PLAQ", 0), b.at("LINK", s)], work=2)

    with b.procedure("main"):
        b.call("init")
        with b.serial("t", 0, b.p("SW") - 1):
            b.call("staples")
            b.call("update")
            b.call("update_dir2")
            b.call("gauge_fix")
            b.call("measure")
        b.stmt(reads=[b.at("PLAQ", 0)], work=1)

    return b.build()


SMALL = dict(nsite=128, sweeps=2, nx=4)
LARGE = dict(nsite=2048, sweeps=4, nx=8)
