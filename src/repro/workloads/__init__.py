"""Perfect-Club-like benchmark kernels.

The paper evaluates six Perfect Club programs (SPEC77, OCEAN, FLO52, QCD2,
TRFD, and one more) parallelized by Polaris.  The original Fortran sources
and the Polaris front-end are not reproducible here, so each module builds
a synthetic kernel **in our IR** that models the original program's
dominant parallel-loop structure and shared-memory reference stream — the
quantities the coherence schemes actually respond to: sharing pattern,
reuse distance across epochs, stride, read/write mix, and serial/parallel
alternation.  The per-module docstrings record the correspondence; see
DESIGN.md section 2 for the substitution argument.

The exact sixth benchmark is not named in the recovered text; an ARC2D-style
ADI kernel stands in for it (noted in EXPERIMENTS.md).
"""

from repro.workloads.registry import WORKLOADS, build_workload, workload_names

__all__ = ["WORKLOADS", "build_workload", "workload_names"]
