"""SPEC77 — global spectral weather simulation (Perfect Club).

The original transforms atmospheric fields between grid space and spectral
space every timestep: Fourier transforms along latitude circles, Legendre
transforms across latitudes, and a (cheap, serial-ish) update of the
spectral coefficients.

Modeled here, per timestep:

* a *grid->spectral* DOALL over latitudes, each task reading an entire
  shared spectral coefficient row set (broadcast read sharing of data that
  changes only once per step — reuse distance of a full step, which
  timestamp Time-Reads exploit);
* a *serial* spectral update epoch on the master (the paper's
  serial-write -> parallel-read pattern, hit by every processor next step);
* a *spectral->grid* DOALL with strided, butterfly-like access (power-of-two
  strides crossing cache-line boundaries);
* a *semi-implicit time filter* (serial) coupling two spectral fields —
  master-written data that every processor re-reads next step;
* a *zonal energy diagnostic* accumulating through a critical section
  (inter-thread communication, Section 5 of the paper);
* a read-only Gaussian-weights table used in every epoch.
"""

from __future__ import annotations

from repro.ir.builder import ProgramBuilder
from repro.ir.program import Program


def build(nlat: int = 16, nspec: int = 64, steps: int = 3) -> Program:
    b = ProgramBuilder("spec77", params={"T": steps})
    b.array("GRID", (nlat, nspec))
    b.array("SPEC", (nspec,))
    b.array("DIV", (nspec,))  # divergence field, filter-coupled to SPEC
    b.array("FORCING", (nspec,))
    b.array("WEIGHTS", (nlat,))  # read-only after init
    b.array("ENERGY", (1,))
    b.array("work", (nspec,), private=True)

    with b.procedure("init"):
        with b.doall("l", 0, nlat - 1, label="winit") as l:
            b.stmt(writes=[b.at("WEIGHTS", l)], work=1)
            with b.serial("m0", 0, nspec - 1) as m0:
                b.stmt(writes=[b.at("GRID", l, m0)], work=1)
        with b.serial("k", 0, nspec - 1) as k:
            b.stmt(writes=[b.at("SPEC", k)], work=1)
            b.stmt(writes=[b.at("DIV", k)], work=1)
            b.stmt(writes=[b.at("FORCING", k)], work=1)
        b.stmt(writes=[b.at("ENERGY", 0)], work=1)

    with b.procedure("to_spectral"):
        # Each latitude reads the whole spectral state (broadcast sharing).
        with b.doall("l", 0, nlat - 1, label="tospec") as l:
            with b.serial("m", 0, nspec - 1) as m:
                b.stmt(writes=[b.at("work", m)],
                       reads=[b.at("GRID", l, m), b.at("SPEC", m),
                              b.at("WEIGHTS", l)],
                       work=4)
            b.stmt(writes=[b.at("GRID", l, 0)], reads=[b.at("work", 0)],
                   work=1)

    with b.procedure("spectral_update"):
        # Serial epoch on the master: advance the coefficients.
        with b.serial("m", 0, nspec - 1) as m:
            b.stmt(writes=[b.at("SPEC", m)],
                   reads=[b.at("SPEC", m), b.at("FORCING", m)], work=2)

    with b.procedure("time_filter"):
        # Robert-Asselin-style semi-implicit filter: the two spectral
        # fields damp each other (serial, master-only).
        with b.serial("f", 0, nspec - 1) as f:
            b.stmt(writes=[b.at("DIV", f)],
                   reads=[b.at("DIV", f), b.at("SPEC", f)], work=3)
            b.stmt(writes=[b.at("SPEC", f)],
                   reads=[b.at("DIV", f)], work=1)

    with b.procedure("energy_diag"):
        # Zonal kinetic-energy diagnostic: per-latitude partial sums folded
        # into one global accumulator under a lock.
        with b.doall("z", 0, nlat - 1, label="energy") as z:
            with b.serial("q", 0, nspec // 8 - 1) as q:
                b.stmt(writes=[b.at("work", q)],
                       reads=[b.at("GRID", z, q * 8), b.at("WEIGHTS", z)],
                       work=2)
            with b.critical("energy_lock"):
                b.stmt(writes=[b.at("ENERGY", 0)],
                       reads=[b.at("ENERGY", 0), b.at("work", 0)], work=2)

    with b.procedure("to_grid"):
        # Butterfly-ish strided writes back to grid space.
        with b.doall("l", 0, nlat - 1, label="togrid") as l:
            with b.serial("m", 0, nspec // 4 - 1) as m:
                b.stmt(writes=[b.at("GRID", l, m * 4)],
                       reads=[b.at("SPEC", m * 4), b.at("WEIGHTS", l)],
                       work=3)
                b.stmt(writes=[b.at("GRID", l, m * 4 + 2)],
                       reads=[b.at("SPEC", m * 4 + 2)], work=3)

    with b.procedure("main"):
        b.call("init")
        with b.serial("t", 0, b.p("T") - 1):
            b.call("to_spectral")
            b.call("spectral_update")
            b.call("time_filter")
            b.call("to_grid")
            b.call("energy_diag")
        b.stmt(reads=[b.at("ENERGY", 0)], work=1)

    return b.build()


SMALL = dict(nlat=8, nspec=32, steps=2)
LARGE = dict(nlat=32, nspec=256, steps=4)
