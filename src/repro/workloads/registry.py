"""Workload registry: names -> builders and standard size presets."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ir.program import Program
from repro.workloads import arc2d, flo52, ocean, qcd2, spec77, trfd

WORKLOADS: Dict[str, Callable[..., Program]] = {
    "spec77": spec77.build,
    "ocean": ocean.build,
    "flo52": flo52.build,
    "qcd2": qcd2.build,
    "trfd": trfd.build,
    "arc2d": arc2d.build,
}

SMALL_SIZES: Dict[str, dict] = {
    "spec77": spec77.SMALL,
    "ocean": ocean.SMALL,
    "flo52": flo52.SMALL,
    "qcd2": qcd2.SMALL,
    "trfd": trfd.SMALL,
    "arc2d": arc2d.SMALL,
}

LARGE_SIZES: Dict[str, dict] = {
    "spec77": spec77.LARGE,
    "ocean": ocean.LARGE,
    "flo52": flo52.LARGE,
    "qcd2": qcd2.LARGE,
    "trfd": trfd.LARGE,
    "arc2d": arc2d.LARGE,
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def build_workload(name: str, size: str = "default", **overrides) -> Program:
    """Build a benchmark by name.

    ``size`` is ``"default"`` (the evaluation sizes), ``"small"`` (quick
    test sizes), or ``"large"`` (longer runs with bigger working sets);
    keyword overrides are passed to the builder.
    """
    if name not in WORKLOADS:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}")
    kwargs: dict = {}
    if size == "small":
        kwargs.update(SMALL_SIZES[name])
    elif size == "large":
        kwargs.update(LARGE_SIZES[name])
    elif size != "default":
        raise KeyError(f"unknown size preset {size!r} (small | default | large)")
    kwargs.update(overrides)
    return WORKLOADS[name](**kwargs)
