"""Run telemetry: cache counters, per-job wall times, worker utilization.

A :class:`Telemetry` object rides along one executor run (or one runtime
session spanning several runs) and accumulates counters; workers report
their share back as plain dicts that the parent merges.  ``report()``
snapshots everything into a :class:`RunReport`, renderable as a text table
or JSON — the payload behind the CLI's ``--report PATH`` flag.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Union


def write_json(payload: Any, path: Union[str, os.PathLike, IO[str]]) -> None:
    """Shared JSON serializer for CLI outputs (``--json``, ``--report``)."""
    if hasattr(path, "write"):
        json.dump(payload, path, indent=2, sort_keys=False, default=str)
        path.write("\n")
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")


@dataclass
class JobRecord:
    """Outcome of one job: where it ran, how long, and from which source."""

    label: str
    scheme: str
    fingerprint: str
    wall_s: float = 0.0
    source: str = "computed"  # computed | cache | retried
    engine: str = ""  # which simulation engine produced the result
    worker: int = 0  # pid of the executing process (parent pid if serial)


@dataclass
class Telemetry:
    """Mutable counters accumulated over one or more executor runs."""

    prepare_hits: int = 0
    prepare_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    traces_generated: int = 0
    traces_shared: int = 0
    """Jobs that rode a front end another job in the same run owned —
    every group member beyond its first (the fingerprint-split dedup)."""
    gang_width: int = 0
    """Largest number of distinct back-end configurations gang-primed
    over one shared trace (0 when no group was ganged)."""
    results_shared: int = 0
    """Jobs answered by another job's result in the same run: their
    fingerprints collided after scheme-dead config pruning (e.g. the hw
    column of a timetag sweep), so one simulation served them all."""
    retries: int = 0
    jobs_submitted: int = 0
    wall_time_s: float = 0.0
    n_workers: int = 1
    records: List[JobRecord] = field(default_factory=list)
    phase_s: Dict[str, float] = field(default_factory=dict)
    """Cumulative wall seconds per pipeline phase (``compile``,
    ``trace``, ``gang``, ``engine``), summed across workers — front-end
    vs config-axis priming vs engine cost per run at a glance."""

    # ------------------------------------------------------------ recording

    def merge_worker(self, stats: Dict[str, Any]) -> None:
        """Fold one worker's counter dict into the parent's totals."""
        self.prepare_hits += stats.get("prepare_hits", 0)
        self.prepare_misses += stats.get("prepare_misses", 0)
        self.traces_generated += stats.get("traces_generated", 0)
        self.gang_width = max(self.gang_width, stats.get("gang_width", 0))
        self.results_shared += stats.get("results_shared", 0)
        for phase, seconds in stats.get("phases", {}).items():
            self.note_phase(phase, seconds)
        for record in stats.get("records", ()):
            self.records.append(JobRecord(**record))

    def note_job(self, record: JobRecord) -> None:
        self.records.append(record)

    def note_phase(self, phase: str, seconds: float) -> None:
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + seconds

    # ------------------------------------------------------------- derived

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.result_hits + self.result_misses
        return self.result_hits / lookups if lookups else 0.0

    def worker_utilization(self) -> Dict[int, float]:
        """Per-worker-pid busy seconds (from job wall times)."""
        busy: Dict[int, float] = {}
        for record in self.records:
            busy[record.worker] = busy.get(record.worker, 0.0) + record.wall_s
        return busy

    def report(self) -> "RunReport":
        return RunReport(telemetry=self)


@dataclass
class RunReport:
    """Snapshot of one run's telemetry, renderable as table or JSON."""

    telemetry: Telemetry

    def to_dict(self) -> Dict[str, Any]:
        t = self.telemetry
        return {
            "jobs": t.jobs_submitted,
            "workers": t.n_workers,
            "wall_time_s": round(t.wall_time_s, 6),
            "cache": {
                "result_hits": t.result_hits,
                "result_misses": t.result_misses,
                "prepare_hits": t.prepare_hits,
                "prepare_misses": t.prepare_misses,
                "hit_rate": round(t.cache_hit_rate, 4),
            },
            "traces_generated": t.traces_generated,
            "gang": {
                "traces_shared": t.traces_shared,
                "results_shared": t.results_shared,
                "width": t.gang_width,
            },
            "phases": {phase: round(seconds, 6)
                       for phase, seconds in sorted(t.phase_s.items())},
            "retries": t.retries,
            "worker_busy_s": {str(pid): round(busy, 6)
                              for pid, busy in sorted(t.worker_utilization().items())},
            "per_job": [asdict(record) for record in t.records],
        }

    def render(self) -> str:
        t = self.telemetry
        lines = [
            "== run report",
            f"jobs {t.jobs_submitted}  workers {t.n_workers}  "
            f"wall {t.wall_time_s:.2f}s  retries {t.retries}",
            f"cache: result {t.result_hits} hit / {t.result_misses} miss"
            f" ({100 * t.cache_hit_rate:.0f}%), "
            f"prepare {t.prepare_hits} hit / {t.prepare_misses} miss, "
            f"{t.traces_generated} trace(s) generated",
            f"gang: {t.traces_shared} job(s) shared a trace, "
            f"{t.results_shared} shared a result, width {t.gang_width}",
        ]
        if t.phase_s:
            lines.append("phases: " + "  ".join(
                f"{phase} {seconds:.3f}s"
                for phase, seconds in sorted(t.phase_s.items())))
        if t.records:
            width = max(len(r.label) for r in t.records)
            lines.append(f"{'job'.ljust(width)}  {'source':>8}  {'wall':>8}  worker")
            for record in t.records:
                lines.append(f"{record.label.ljust(width)}  "
                             f"{record.source:>8}  {record.wall_s:>7.3f}s  "
                             f"{record.worker}")
        return "\n".join(lines)

    def save(self, path: Union[str, os.PathLike]) -> None:
        write_json(self.to_dict(), path)
