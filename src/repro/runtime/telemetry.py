"""Run telemetry: cache counters, per-job wall times, worker utilization.

A :class:`Telemetry` object rides along one executor run (or one runtime
session spanning several runs) and accumulates counters; workers report
their share back as plain dicts that the parent merges.  ``report()``
snapshots everything into a :class:`RunReport`, renderable as a text table
or JSON — the payload behind the CLI's ``--report PATH`` flag.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, IO, List, Union

from repro.common.stats import percentile

__all__ = ["JobRecord", "RunReport", "Telemetry", "percentile", "write_json"]


def write_json(payload: Any, path: Union[str, os.PathLike, IO[str]]) -> None:
    """Shared JSON serializer for CLI outputs (``--json``, ``--report``)."""
    if hasattr(path, "write"):
        json.dump(payload, path, indent=2, sort_keys=False, default=str)
        path.write("\n")
        return
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False, default=str)
        handle.write("\n")


SERVE_LATENCY_CAP = 4096
"""Latency samples kept for the serve p50/p99 (a sliding window, so the
percentiles track steady state rather than all of history)."""


@dataclass
class JobRecord:
    """Outcome of one job: where it ran, how long, and from which source."""

    label: str
    scheme: str
    fingerprint: str
    wall_s: float = 0.0
    source: str = "computed"  # computed | cache | retried
    engine: str = ""  # which simulation engine produced the result
    jit: str = ""  # compiled-tier provenance ("", "numba", "interp", "fallback:…")
    worker: int = 0  # pid of the executing process (parent pid if serial)


@dataclass
class Telemetry:
    """Mutable counters accumulated over one or more executor runs."""

    prepare_hits: int = 0
    prepare_misses: int = 0
    result_hits: int = 0
    result_misses: int = 0
    traces_generated: int = 0
    traces_shared: int = 0
    """Jobs that rode a front end another job in the same run owned —
    every group member beyond its first (the fingerprint-split dedup)."""
    gang_width: int = 0
    """Largest number of distinct back-end configurations gang-primed
    over one shared trace (0 when no group was ganged)."""
    results_shared: int = 0
    """Jobs answered by another job's result in the same run: their
    fingerprints collided after scheme-dead config pruning (e.g. the hw
    column of a timetag sweep), so one simulation served them all."""
    retries: int = 0
    jobs_submitted: int = 0
    wall_time_s: float = 0.0
    n_workers: int = 1
    records: List[JobRecord] = field(default_factory=list)
    phase_s: Dict[str, float] = field(default_factory=dict)
    """Cumulative wall seconds per pipeline phase (``compile``,
    ``trace``, ``gang``, ``engine``), summed across workers — front-end
    vs config-axis priming vs engine cost per run at a glance."""
    serve_requests: int = 0
    """Requests answered by a :mod:`repro.serve` service sharing this
    telemetry (0 outside a serve deployment)."""
    serve_hits: int = 0
    """Serve requests answered entirely from the artifact cache —
    the worker pool was never touched."""
    serve_coalesced: int = 0
    """Serve requests that awaited an identical in-flight request
    instead of dispatching their own simulation."""
    serve_errors: int = 0
    serve_latency_s: List[float] = field(default_factory=list)
    """Recent per-request wall times (capped ring; see
    :data:`SERVE_LATENCY_CAP`) backing the ``/stats`` p50/p99."""
    jit_fallbacks: Dict[str, int] = field(default_factory=dict)
    """Count of jobs that requested the compiled tier but fell back,
    keyed by fallback reason (``numba-missing``, ``no-kernel``, …)."""

    # ------------------------------------------------------------ recording

    def merge_worker(self, stats: Dict[str, Any]) -> None:
        """Fold one worker's counter dict into the parent's totals."""
        self.prepare_hits += stats.get("prepare_hits", 0)
        self.prepare_misses += stats.get("prepare_misses", 0)
        self.traces_generated += stats.get("traces_generated", 0)
        self.gang_width = max(self.gang_width, stats.get("gang_width", 0))
        self.results_shared += stats.get("results_shared", 0)
        for phase, seconds in stats.get("phases", {}).items():
            self.note_phase(phase, seconds)
        for record in stats.get("records", ()):
            self.note_job(JobRecord(**record))

    def note_job(self, record: JobRecord) -> None:
        self.records.append(record)
        if record.jit.startswith("fallback:"):
            reason = record.jit.split(":", 1)[1]
            self.jit_fallbacks[reason] = self.jit_fallbacks.get(reason, 0) + 1

    def note_request(self, latency_s: float, source: str) -> None:
        """Record one serve request (``source``: hit/coalesced/computed/
        error) and its wall time into the capped latency ring."""
        self.serve_requests += 1
        if source == "hit":
            self.serve_hits += 1
        elif source == "coalesced":
            self.serve_coalesced += 1
        elif source == "error":
            self.serve_errors += 1
        self.serve_latency_s.append(latency_s)
        if len(self.serve_latency_s) > SERVE_LATENCY_CAP:
            del self.serve_latency_s[:-SERVE_LATENCY_CAP]

    def note_phase(self, phase: str, seconds: float) -> None:
        self.phase_s[phase] = self.phase_s.get(phase, 0.0) + seconds

    # ------------------------------------------------------------- derived

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.result_hits + self.result_misses
        return self.result_hits / lookups if lookups else 0.0

    @property
    def serve_hit_rate(self) -> float:
        """Fraction of serve requests that never reached the pool
        (cache hits plus coalesced waiters)."""
        if not self.serve_requests:
            return 0.0
        return (self.serve_hits + self.serve_coalesced) / self.serve_requests

    def serve_section(self) -> Dict[str, Any]:
        """The ``serve`` block of a run report / ``/stats`` payload."""
        return {
            "requests": self.serve_requests,
            "hits": self.serve_hits,
            "coalesced": self.serve_coalesced,
            "errors": self.serve_errors,
            "hit_rate": round(self.serve_hit_rate, 4),
            "p50_ms": round(1e3 * percentile(self.serve_latency_s, 50), 3),
            "p99_ms": round(1e3 * percentile(self.serve_latency_s, 99), 3),
        }

    def worker_utilization(self) -> Dict[int, float]:
        """Per-worker-pid busy seconds (from job wall times)."""
        busy: Dict[int, float] = {}
        for record in self.records:
            busy[record.worker] = busy.get(record.worker, 0.0) + record.wall_s
        return busy

    def report(self) -> "RunReport":
        return RunReport(telemetry=self)


@dataclass
class RunReport:
    """Snapshot of one run's telemetry, renderable as table or JSON."""

    telemetry: Telemetry

    def to_dict(self) -> Dict[str, Any]:
        t = self.telemetry
        return {
            "jobs": t.jobs_submitted,
            "workers": t.n_workers,
            "wall_time_s": round(t.wall_time_s, 6),
            "cache": {
                "result_hits": t.result_hits,
                "result_misses": t.result_misses,
                "prepare_hits": t.prepare_hits,
                "prepare_misses": t.prepare_misses,
                "hit_rate": round(t.cache_hit_rate, 4),
            },
            "traces_generated": t.traces_generated,
            "gang": {
                "traces_shared": t.traces_shared,
                "results_shared": t.results_shared,
                "width": t.gang_width,
            },
            "phases": {phase: round(seconds, 6)
                       for phase, seconds in sorted(t.phase_s.items())},
            **({"serve": t.serve_section()} if t.serve_requests else {}),
            **({"jit_fallbacks": dict(sorted(t.jit_fallbacks.items()))}
               if t.jit_fallbacks else {}),
            "retries": t.retries,
            "worker_busy_s": {str(pid): round(busy, 6)
                              for pid, busy in sorted(t.worker_utilization().items())},
            "per_job": [asdict(record) for record in t.records],
        }

    def render(self) -> str:
        t = self.telemetry
        lines = [
            "== run report",
            f"jobs {t.jobs_submitted}  workers {t.n_workers}  "
            f"wall {t.wall_time_s:.2f}s  retries {t.retries}",
            f"cache: result {t.result_hits} hit / {t.result_misses} miss"
            f" ({100 * t.cache_hit_rate:.0f}%), "
            f"prepare {t.prepare_hits} hit / {t.prepare_misses} miss, "
            f"{t.traces_generated} trace(s) generated",
            f"gang: {t.traces_shared} job(s) shared a trace, "
            f"{t.results_shared} shared a result, width {t.gang_width}",
        ]
        if t.phase_s:
            lines.append("phases: " + "  ".join(
                f"{phase} {seconds:.3f}s"
                for phase, seconds in sorted(t.phase_s.items())))
        if t.serve_requests:
            serve = t.serve_section()
            lines.append(
                f"serve: {serve['requests']} request(s), "
                f"{serve['hits']} hit / {serve['coalesced']} coalesced "
                f"({100 * serve['hit_rate']:.0f}%), "
                f"p50 {serve['p50_ms']:.2f}ms p99 {serve['p99_ms']:.2f}ms, "
                f"{serve['errors']} error(s)")
        if t.jit_fallbacks:
            lines.append("jit fallbacks: " + "  ".join(
                f"{reason} x{count}"
                for reason, count in sorted(t.jit_fallbacks.items())))
        if t.records:
            width = max(len(r.label) for r in t.records)
            lines.append(f"{'job'.ljust(width)}  {'source':>8}  {'wall':>8}  worker")
            for record in t.records:
                lines.append(f"{record.label.ljust(width)}  "
                             f"{record.source:>8}  {record.wall_s:>7.3f}s  "
                             f"{record.worker}")
        return "\n".join(lines)

    def save(self, path: Union[str, os.PathLike]) -> None:
        write_json(self.to_dict(), path)
