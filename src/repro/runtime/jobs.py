"""Job descriptions and deterministic fingerprints.

A :class:`Job` names one (program, machine, scheme, front-end options)
simulation.  Two fingerprints are derived from it:

* :meth:`Job.prepare_fingerprint` — identifies the compiler/trace
  *front-end* artifacts.  Only the machine fields the front end actually
  reads participate (:data:`TRACE_MACHINE_FIELDS`: processor count and
  schedule policy — the memory layout is fixed-aligned, see
  :mod:`repro.trace.layout`); back-end knobs such as cache geometry,
  timetag width, write buffer, and latencies do not.  Jobs sharing it can
  share one :class:`~repro.sim.runner.PreparedRun`; the executor groups by
  this key, so one trace generation feeds every scheme *and every
  back-end variant* of a sweep cell (the gang path).
* :meth:`Job.fingerprint` — identifies the finished
  :class:`~repro.sim.metrics.SimResult` (front-end key + the back-end
  machine fields + scheme).

Fingerprints are content hashes over a *canonical* JSON rendering of the
configuration (dataclasses flattened, enums replaced by their values, dict
keys sorted) plus a digest of the program listing — never over object
identities — so they are stable across processes and interpreter runs.
The salt from :mod:`repro.runtime.cache` is mixed in, so bumping it
invalidates every cached artifact at once.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.common.config import MachineConfig
from repro.compiler.marking import MarkingOptions
from repro.ir.pprint import format_program
from repro.ir.program import Program
from repro.trace.schedule import MigrationSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sweep imports us)
    from repro.sim.sweep import Sweep

#: Machine fields the compiler/trace front end reads.  Everything else on
#: :class:`MachineConfig` only affects the back-end simulation, so it
#: belongs in the result fingerprint, not the prepare fingerprint.
TRACE_MACHINE_FIELDS = ("n_procs", "schedule")


def split_machine(machine: MachineConfig) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split a machine into (trace-relevant, back-end-only) plain dicts.

    ``engine`` and ``jit`` appear in neither half — the engines and the
    compiled tier are differentially tested to be bit-identical, so
    neither choice ever keys an artifact (cache entries are shared
    across tiers).
    """
    plain = _plain(machine)
    plain.pop("engine", None)
    plain.pop("jit", None)
    front = {name: plain.pop(name) for name in TRACE_MACHINE_FIELDS}
    return front, plain


def _plain(value: Any) -> Any:
    """Reduce a config value to JSON-serializable plain data."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering used for all fingerprints."""
    return json.dumps(_plain(value), sort_keys=True, separators=(",", ":"))


def program_digest(program: Program) -> str:
    """Content hash of a program: name, bound parameters, full listing."""
    payload = "\n".join([program.name,
                         canonical_json(program.params),
                         format_program(program)])
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class Job:
    """One simulation to run: a program on a machine under one scheme."""

    program: Program
    scheme: str
    machine: MachineConfig
    params: Optional[Dict[str, int]] = None
    opts: Optional[MarkingOptions] = None
    migration: Optional[MigrationSpec] = None
    tag: Any = None
    """Caller metadata carried through execution (sweep labels, experiment
    keys); never part of the fingerprint."""

    _digest: Optional[str] = field(default=None, repr=False, compare=False)
    _prepare_key: Optional[str] = field(default=None, repr=False, compare=False)

    def canonical(self) -> Dict[str, Any]:
        """The hashed front-end identity (program by digest, configs
        flattened).

        Only the trace-relevant half of the machine participates
        (:func:`split_machine`), so back-end variants of one cell hash to
        the same front end.  ``machine.engine`` is deliberately absent
        everywhere: the engines are differentially tested to produce
        bit-identical results, so they may share cached artifacts — which
        engine actually produced a cached ``SimResult`` is recorded on the
        artifact itself (``SimResult.engine``), not in its key.
        """
        from repro.runtime.cache import cache_salt

        front, _back = split_machine(self.machine)
        return {
            "salt": cache_salt(),
            "program": self.digest,
            "machine": front,
            "params": _plain(self.params or {}),
            "opts": _plain(self.opts or MarkingOptions()),
            "migration": _plain(self.migration or MigrationSpec()),
        }

    @property
    def digest(self) -> str:
        if self._digest is None:
            self._digest = program_digest(self.program)
        return self._digest

    def prepare_fingerprint(self) -> str:
        """Key of the shareable front-end artifacts (no scheme)."""
        if self._prepare_key is None:
            text = canonical_json(self.canonical())
            self._prepare_key = hashlib.sha256(text.encode()).hexdigest()
        return self._prepare_key

    def fingerprint(self) -> str:
        """Key of the finished SimResult (front end + back end + scheme).

        The back-end machine fields dropped from the prepare key re-enter
        here: two jobs sharing a trace but differing in, say, line size or
        timetag width must never collide on a cached result.  Fields the
        scheme declares it never reads
        (:func:`repro.coherence.api.dead_config_fields`) are pruned first,
        so e.g. every timetag width of a fig15-style sweep names the *same*
        hardware-directory result and the executor computes it once.
        """
        from repro.coherence.api import dead_config_fields

        _front, back = split_machine(self.machine)
        for name in dead_config_fields(self.scheme):
            back.pop(name, None)
        text = ":".join([self.prepare_fingerprint(), canonical_json(back),
                         self.scheme])
        return hashlib.sha256(text.encode()).hexdigest()

    @property
    def label(self) -> str:
        return f"{self.program.name}/{self.scheme}"


def jobs_for_schemes(program: Program, schemes: Sequence[str],
                     machine: MachineConfig,
                     params: Optional[Dict[str, int]] = None,
                     opts: Optional[MarkingOptions] = None,
                     migration: Optional[MigrationSpec] = None,
                     tag: Any = None) -> List[Job]:
    """One job per scheme over a shared front end (``simulate_all`` shape)."""
    shared = Job(program=program, scheme=schemes[0] if schemes else "",
                 machine=machine, params=params, opts=opts,
                 migration=migration)
    digest = shared.digest
    return [Job(program=program, scheme=scheme, machine=machine,
                params=params, opts=opts, migration=migration, tag=tag,
                _digest=digest)
            for scheme in schemes]


def expand_sweep(sweep: "Sweep") -> List[Job]:
    """Flatten a sweep grid into jobs, in the order ``Sweep.run`` reports.

    Each job's ``tag`` is the cell's label dict; the program digest is
    computed once and shared across the whole grid.
    """
    import itertools

    if not sweep._axes:
        raise ValueError("sweep has no axes; add at least one")
    digest = program_digest(sweep.program)
    names = [name for name, _ in sweep._axes]
    jobs: List[Job] = []
    for combo in itertools.product(*(axis for _, axis in sweep._axes)):
        machine = sweep.base
        labels: Dict[str, str] = {}
        for name, (label, transform) in zip(names, combo):
            machine = transform(machine)
            labels[name] = label
        for scheme in sweep.schemes:
            jobs.append(Job(program=sweep.program, scheme=scheme,
                            machine=machine, params=sweep.params,
                            tag=dict(labels), _digest=digest))
    return jobs


def group_by_prepare(jobs: Sequence[Job]) -> List[Tuple[str, List[Tuple[int, Job]]]]:
    """Group (index, job) pairs by shared front-end fingerprint.

    Groups come back in first-appearance order, so the serial executor
    visits cells in the caller's order while still preparing each distinct
    front end exactly once.
    """
    groups: Dict[str, List[Tuple[int, Job]]] = {}
    for index, job in enumerate(jobs):
        groups.setdefault(job.prepare_fingerprint(), []).append((index, job))
    return list(groups.items())
