"""Runtime sessions: an ambient executor for code that can't thread one.

The experiment harnesses call :class:`~repro.experiments.common.Bench`
deep inside 20 per-figure modules; threading ``jobs=``/``cache=`` through
every one of them would be noise.  Instead, ``run_experiment(jobs=4)``
opens a *session* — a context-variable scope carrying one configured
:class:`~repro.runtime.executor.ParallelExecutor` — and ``Bench`` routes
its simulations through the active session when there is one.  With no
session active every caller gets the original direct in-process path,
unchanged.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator, Optional

from repro.runtime.cache import ArtifactCache
from repro.runtime.executor import ParallelExecutor
from repro.runtime.telemetry import Telemetry

_ACTIVE: contextvars.ContextVar[Optional["RuntimeSession"]] = \
    contextvars.ContextVar("repro_runtime_session", default=None)


class RuntimeSession:
    """One executor shared by everything inside a ``session()`` scope."""

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ArtifactCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout: Optional[float] = None):
        self.executor = ParallelExecutor(jobs=jobs, cache=cache,
                                         telemetry=telemetry, timeout=timeout)

    @property
    def telemetry(self) -> Telemetry:
        return self.executor.telemetry

    @property
    def parallel(self) -> bool:
        return self.executor.n_jobs > 1

    def run(self, jobs, prepared=None):
        return self.executor.run(jobs, prepared=prepared)


def current_session() -> Optional[RuntimeSession]:
    """The innermost active session, or ``None``."""
    return _ACTIVE.get()


@contextlib.contextmanager
def session(jobs: Optional[int] = 1,
            cache: Optional[ArtifactCache] = None,
            telemetry: Optional[Telemetry] = None,
            timeout: Optional[float] = None) -> Iterator[RuntimeSession]:
    """Activate a runtime session for the enclosed block."""
    active = RuntimeSession(jobs=jobs, cache=cache, telemetry=telemetry,
                            timeout=timeout)
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)
