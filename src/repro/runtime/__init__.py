"""Parallel execution engine with a content-addressed artifact cache.

The single execution substrate behind sweeps, experiments, and
multi-scheme runs::

    from repro.runtime import ArtifactCache, Job, Telemetry, execute_jobs

    jobs = [Job(program, scheme, machine) for scheme in ("tpi", "hw")]
    telemetry = Telemetry()
    results = execute_jobs(jobs, n_jobs=4, cache=ArtifactCache(),
                           telemetry=telemetry)
    print(telemetry.report().render())

Pieces: :mod:`~repro.runtime.jobs` (job descriptions + deterministic
fingerprints), :mod:`~repro.runtime.cache` (on-disk artifact store),
:mod:`~repro.runtime.executor` (serial / process-pool execution),
:mod:`~repro.runtime.telemetry` (counters + run reports), and
:mod:`~repro.runtime.context` (ambient sessions for the experiment
harnesses).
"""

from repro.runtime.cache import (
    ArtifactCache,
    CacheStats,
    CACHE_VERSION,
    ENGINE_SALT,
    cache_salt,
    default_cache_dir,
)
from repro.runtime.context import RuntimeSession, current_session, session
from repro.runtime.executor import (
    JobTimeoutError,
    ParallelExecutor,
    effective_jobs,
    execute_jobs,
)
from repro.runtime.jobs import (
    Job,
    canonical_json,
    expand_sweep,
    group_by_prepare,
    jobs_for_schemes,
    program_digest,
)
from repro.runtime.shardcache import ShardedCache, peers_from_env
from repro.runtime.telemetry import (
    JobRecord,
    RunReport,
    Telemetry,
    percentile,
    write_json,
)

__all__ = [
    "ArtifactCache",
    "CACHE_VERSION",
    "CacheStats",
    "ENGINE_SALT",
    "Job",
    "JobRecord",
    "JobTimeoutError",
    "ParallelExecutor",
    "RunReport",
    "RuntimeSession",
    "ShardedCache",
    "Telemetry",
    "cache_salt",
    "canonical_json",
    "current_session",
    "default_cache_dir",
    "effective_jobs",
    "execute_jobs",
    "expand_sweep",
    "group_by_prepare",
    "jobs_for_schemes",
    "peers_from_env",
    "percentile",
    "program_digest",
    "session",
    "write_json",
]
