"""Sharded, read-through artifact cache for multi-host deployments.

:class:`ShardedCache` keeps the exact on-disk layout of
:class:`~repro.runtime.cache.ArtifactCache` — entries live under
``<root>/v<N>/<kind>/<key[:2]>/<key>.pkl`` — but makes the fingerprint
prefix an explicit *shard*: the first :data:`SHARD_WIDTH` hex digits of a
key name one of 256 shard directories.  Because fingerprints are uniform
content hashes, shards stay balanced without bookkeeping, ``shard_stats``
can report per-shard occupancy for capacity planning, and operators can
mount or sync shard subtrees independently.

On top of the local store it adds an optional *read-through peer tier*:
a list of other cache roots (plain directories, e.g. an NFS mount that
another host populates) and/or ``http(s)://host:port`` endpoints of
running ``repro serve`` instances, each consulted in order on a local
miss.  A peer hit is re-validated (unpickled) and then written into the
local shard, so N hosts converge on a shared warm set while every host
keeps serving from its own disk.  Peer population is *single-flight* —
concurrent local misses on one key fetch from the peers once — and every
peer failure (unreachable host, truncated pickle, permission error) is
swallowed: the worst case is always "compute locally", never an error.

Peers come from the constructor or the ``REPRO_CACHE_PEERS`` environment
variable (comma-separated paths/URLs).  Entries containing ``://`` are
treated as HTTP endpoints serving ``GET /artifact/<kind>/<key>`` (the
:mod:`repro.serve` server exposes this route); everything else is a
filesystem root laid out like a local cache.
"""

from __future__ import annotations

import os
import pickle
import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.runtime.cache import CACHE_VERSION, ArtifactCache, _KINDS

SHARD_WIDTH = 2
"""Hex digits of the fingerprint that name a shard (2 -> 256 shards)."""

PEER_TIMEOUT_S = 2.0
"""Per-request timeout for HTTP peers; a slow peer must never stall the
local fallback path for long."""


def peers_from_env() -> List[str]:
    """Parse ``REPRO_CACHE_PEERS`` into a peer list (may be empty)."""
    raw = os.environ.get("REPRO_CACHE_PEERS", "")
    return [entry.strip() for entry in raw.split(",") if entry.strip()]


class _PathPeer:
    """A peer that is another cache root on a reachable filesystem."""

    def __init__(self, root: Union[str, os.PathLike]):
        self.name = str(root)
        self.base = Path(root) / f"v{CACHE_VERSION}"

    def fetch(self, kind: str, key: str) -> Optional[bytes]:
        path = self.base / kind / key[:SHARD_WIDTH] / f"{key}.pkl"
        try:
            return path.read_bytes()
        except OSError:
            return None


class _HttpPeer:
    """A peer that is a running ``repro serve`` instance."""

    def __init__(self, url: str, timeout: float = PEER_TIMEOUT_S):
        self.name = url.rstrip("/")
        self.timeout = timeout

    def fetch(self, kind: str, key: str) -> Optional[bytes]:
        url = f"{self.name}/artifact/{kind}/{key}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as resp:
                if resp.status != 200:
                    return None
                return resp.read()
        except (urllib.error.URLError, OSError, ValueError):
            return None


def _make_peer(spec: str) -> Union[_PathPeer, _HttpPeer]:
    if "://" in spec:
        return _HttpPeer(spec)
    return _PathPeer(spec)


class ShardedCache(ArtifactCache):
    """Local artifact cache with explicit shards and a peer tier.

    Drop-in for :class:`ArtifactCache` everywhere (the executor, the
    serve service, the CLI): same layout, same atomic-rename stores, same
    corruption tolerance.  ``load`` additionally falls through to the
    configured peers on a local miss.
    """

    def __init__(self, root: Optional[os.PathLike] = None,
                 peers: Optional[Sequence[str]] = None):
        super().__init__(root)
        if peers is None:
            peers = peers_from_env()
        self.peers = [_make_peer(spec) for spec in peers]
        self.counters: Dict[str, int] = {
            "local_hits": 0, "peer_hits": 0, "misses": 0, "peer_errors": 0}
        self._flight_guard = threading.Lock()
        self._flights: Dict[str, threading.Lock] = {}

    # ----------------------------------------------------------------- load

    def load(self, kind: str, key: str) -> Optional[Any]:
        hit = super().load(kind, key)
        if hit is not None:
            self.counters["local_hits"] += 1
            return hit
        if not self.peers:
            self.counters["misses"] += 1
            return None
        return self._load_via_peers(kind, key)

    def _load_via_peers(self, kind: str, key: str) -> Optional[Any]:
        """Single-flight peer fetch: one thread fetches, the rest reuse."""
        token = f"{kind}:{key}"
        with self._flight_guard:
            lock = self._flights.setdefault(token, threading.Lock())
        with lock:
            # A concurrent flight may have populated the local shard
            # while this thread waited on the lock.
            hit = super().load(kind, key)
            if hit is not None:
                self.counters["local_hits"] += 1
                return hit
            obj = self._fetch_remote(kind, key)
        with self._flight_guard:
            self._flights.pop(token, None)
        if obj is None:
            self.counters["misses"] += 1
        return obj

    def _fetch_remote(self, kind: str, key: str) -> Optional[Any]:
        for peer in self.peers:
            payload = peer.fetch(kind, key)
            if payload is None:
                continue
            try:
                obj = pickle.loads(payload)
            except Exception:
                # A peer's truncated or foreign entry must degrade to a
                # local compute, never poison this host.
                self.counters["peer_errors"] += 1
                continue
            self.counters["peer_hits"] += 1
            self.store(kind, key, obj)  # warm the local shard
            return obj
        return None

    # ---------------------------------------------------------------- shards

    @staticmethod
    def shard_of(key: str) -> str:
        """The shard (fingerprint prefix directory) a key lives in."""
        return key[:SHARD_WIDTH]

    def shard_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-shard entry counts across all artifact kinds.

        Tolerates concurrent mutation the same way
        :meth:`ArtifactCache.stats` does: a directory or entry vanishing
        mid-scan is skipped, never a traceback.
        """
        shards: Dict[str, Dict[str, int]] = {}
        for kind in _KINDS:
            kind_dir = self.base / kind
            try:
                prefixes = sorted(p for p in kind_dir.iterdir() if p.is_dir())
            except OSError:
                continue
            for prefix in prefixes:
                try:
                    count = sum(1 for _ in prefix.glob("*.pkl"))
                except OSError:
                    continue
                if count:
                    entry = shards.setdefault(prefix.name,
                                              {"entries": 0, "kinds": 0})
                    entry["entries"] += count
                    entry["kinds"] += 1
        return shards

    # ------------------------------------------------------------- reporting

    def describe(self) -> Dict[str, Any]:
        """Counters + topology snapshot for ``/stats``."""
        return {
            "root": str(self.root),
            "peers": [peer.name for peer in self.peers],
            "shard_width": SHARD_WIDTH,
            "counters": dict(self.counters),
            "shards": len(self.shard_stats()),
        }
