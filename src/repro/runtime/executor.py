"""The execution engine: serial or process-parallel, cache-aware.

:class:`ParallelExecutor` takes a list of :class:`~repro.runtime.jobs.Job`
and returns one :class:`~repro.sim.metrics.SimResult` per job, **in input
order**, regardless of completion order.  The pipeline:

1. finished results are looked up in the artifact cache (parent-side);
2. the remaining jobs are grouped by front-end fingerprint, so each
   distinct (program, machine, params, opts, migration) is compiled and
   traced exactly once no matter how many schemes or sweep cells share it;
3. groups run in-process when ``jobs == 1`` (zero overhead for tests and
   small runs) or across a :class:`concurrent.futures.ProcessPoolExecutor`
   otherwise, with a per-job timeout and one automatic in-process retry
   when a worker crashes;
4. everything computed is written back to the cache.

When a single front end fans out to several back ends/schemes and more
than one worker is available, the front end is prepared parent-side once
and the entries are scattered in gang-sized chunks — one gang per worker,
the columnar buffers shipped once per chunk instead of once per cell
(``simulate_all(jobs=4)`` and ganged-sweep shapes).

Groups whose entries span several distinct back-end machines are *gang
primed* (:func:`repro.sim.gang.prime_group`) before simulation: the
trace-static per-geometry analyses are built for all members in one
config-axis broadcast and shared.  Priming never changes results — every
member stays byte-identical to a solo run — so it applies to fast- and
gang-engine entries alike; reference-engine entries bypass it.

The engine is deterministic — a heap over per-processor clocks — so serial
and parallel execution produce bit-identical results; the test suite
enforces this.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.runtime.cache import ArtifactCache, KIND_PREPARED, KIND_RESULT
from repro.runtime.jobs import Job
from repro.runtime.telemetry import JobRecord, Telemetry
from repro.sim.engine import make_engine
from repro.sim.metrics import SimResult
from repro.sim.runner import PreparedRun, prepare


class JobTimeoutError(SimulationError):
    """A simulation job exceeded the executor's per-job timeout."""


def effective_jobs(jobs: Optional[int]) -> int:
    """Resolve a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


@dataclass
class _Entry:
    """One pending simulation inside a group: its own back-end machine.

    Entries of one group share the front end (trace + marking) but may
    differ in every back-end machine field — the gang axis — so the
    machine rides on the entry, never on the group's ``PreparedRun``.
    """

    index: int
    scheme: str
    machine: Any
    result_key: str
    label: str


@dataclass
class _GroupWork:
    """One worker unit: a shared front end plus its member simulations."""

    prepare_key: str
    program: Any
    machine: Any
    params: Optional[Dict[str, int]]
    opts: Any
    migration: Any
    entries: List[_Entry]
    cache_root: Optional[str]


@dataclass
class _ScatterWork:
    """Scatter unit: one gang chunk over a parent-prepared front end."""

    prepared: PreparedRun
    entries: List[_Entry]
    cache_root: Optional[str]


def _obtain_prepared(work: _GroupWork, cache: Optional[ArtifactCache],
                     stats: Dict[str, Any]) -> PreparedRun:
    if cache is not None:
        hit = cache.load(KIND_PREPARED, work.prepare_key)
        if hit is not None:
            stats["prepare_hits"] += 1
            return hit
    stats["prepare_misses"] += 1
    stats["traces_generated"] += 1
    prepared = prepare(work.program, work.machine, work.params, work.opts,
                       work.migration)
    phases = stats["phases"]
    phases["compile"] = phases.get("compile", 0.0) + prepared.compile_s
    phases["trace"] = phases.get("trace", 0.0) + prepared.trace_s
    if cache is not None:
        cache.store(KIND_PREPARED, work.prepare_key, prepared)
    return prepared


def _prime_gang(prepared: PreparedRun, entries: Sequence[_Entry],
                stats: Dict[str, Any]) -> None:
    """Share the trace-static analyses across a group's back-end variants.

    A no-op for single-config groups; otherwise one config-axis broadcast
    (:func:`repro.sim.gang.prime_group`) pre-builds every member
    geometry's epoch analyses on the shared trace.  Results are identical
    with or without priming, so this is applied unconditionally to fast-
    and gang-engine entries.
    """
    from repro.sim.engine import resolve_engine
    from repro.sim.gang import distinct_backends, prime_group

    machines = distinct_backends(
        [entry.machine for entry in entries
         if resolve_engine(entry.machine) != "reference"])
    if len(machines) < 2:
        return
    started = time.perf_counter()
    info = prime_group(prepared.trace, machines)
    phases = stats["phases"]
    phases["gang"] = (phases.get("gang", 0.0)
                      + time.perf_counter() - started)
    stats["gang_width"] = max(stats.get("gang_width", 0), info["width"])


def _simulate_entries(prepared: PreparedRun,
                      entries: Sequence[_Entry],
                      cache: Optional[ArtifactCache],
                      stats: Dict[str, Any]) -> List[Tuple[int, SimResult]]:
    out: List[Tuple[int, SimResult]] = []
    # Scheme-dead config pruning (Job.fingerprint) makes e.g. every
    # timetag width of an hw cell name the same result key — compute
    # the representative once and share it with the duplicates.
    reps: Dict[str, _Entry] = {}
    unique: List[_Entry] = []
    for entry in entries:
        if entry.result_key not in reps:
            reps[entry.result_key] = entry
            unique.append(entry)
    _prime_gang(prepared, unique, stats)
    # Lockstep across the group (scheme *and* config axis): one epoch is
    # stepped through every member engine before the next, so each
    # epoch's shared trace-static analyses are built once and consumed
    # cache-hot.  Engines are independent, so this is pure scheduling —
    # every result stays byte-identical to a solo ``run()``.
    engines = [make_engine(prepared.trace, prepared.marking,
                           entry.machine, entry.scheme) for entry in unique]
    walls = [0.0] * len(unique)
    for engine in engines:
        engine.start()
    for epoch in prepared.trace.epochs:
        for i, engine in enumerate(engines):
            started = time.perf_counter()
            engine.step(epoch)
            walls[i] += time.perf_counter() - started
    computed: Dict[str, SimResult] = {}
    phases = stats["phases"]
    for entry, engine, wall in zip(unique, engines, walls):
        result = engine.finish()
        computed[entry.result_key] = result
        if cache is not None:
            cache.store(KIND_RESULT, entry.result_key, result)
        phases["engine"] = phases.get("engine", 0.0) + wall
        stats["records"].append({
            "label": entry.label, "scheme": entry.scheme,
            "fingerprint": entry.result_key[:12],
            "wall_s": wall, "source": "computed",
            "engine": result.engine, "jit": result.jit,
            "worker": os.getpid()})
        out.append((entry.index, result))
    for entry in entries:
        if entry is reps[entry.result_key]:
            continue
        result = computed[entry.result_key]
        stats["results_shared"] += 1
        stats["records"].append({
            "label": entry.label, "scheme": entry.scheme,
            "fingerprint": entry.result_key[:12],
            "wall_s": 0.0, "source": "shared",
            "engine": result.engine, "jit": result.jit,
            "worker": os.getpid()})
        out.append((entry.index, result))
    return out


def _new_stats() -> Dict[str, Any]:
    return {"prepare_hits": 0, "prepare_misses": 0, "traces_generated": 0,
            "gang_width": 0, "results_shared": 0, "records": [], "phases": {}}


def _execute_group(work: _GroupWork) -> Tuple[List[Tuple[int, SimResult]], Dict]:
    """Worker entry point: prepare (or load) the front end, run members."""
    cache = ArtifactCache(work.cache_root) if work.cache_root else None
    stats = _new_stats()
    prepared = _obtain_prepared(work, cache, stats)
    return _simulate_entries(prepared, work.entries, cache, stats), stats


def _execute_scatter(work: _ScatterWork) -> Tuple[List[Tuple[int, SimResult]], Dict]:
    """Worker entry point for the scatter path (front end shipped in)."""
    cache = ArtifactCache(work.cache_root) if work.cache_root else None
    stats = _new_stats()
    return _simulate_entries(work.prepared, work.entries, cache, stats), stats


class ParallelExecutor:
    """Runs jobs across processes with caching and deterministic ordering.

    ``jobs=1`` (the default) executes serially in-process — same code
    path, no pool, no pickling.  ``jobs=None`` or ``0`` uses every core.
    ``timeout`` is a per-job wall-clock bound in seconds; ``retries`` is
    the number of automatic in-process retries after a worker crash.
    """

    def __init__(self, jobs: Optional[int] = 1,
                 cache: Optional[ArtifactCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1):
        self.n_jobs = effective_jobs(jobs)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.timeout = timeout
        self.retries = retries

    # ------------------------------------------------------------------ API

    def run(self, jobs: Sequence[Job],
            prepared: Optional[Dict[str, PreparedRun]] = None) -> List[SimResult]:
        """Execute every job; results come back in input order.

        ``prepared`` optionally supplies already-built front ends keyed by
        prepare fingerprint (``simulate_all`` passes its ``PreparedRun``
        through here so it is never rebuilt).
        """
        started = time.perf_counter()
        telemetry = self.telemetry
        telemetry.jobs_submitted += len(jobs)
        results: List[Optional[SimResult]] = [None] * len(jobs)

        pending: List[Tuple[int, Job]] = []
        for index, job in enumerate(jobs):
            hit = (self.cache.load(KIND_RESULT, job.fingerprint())
                   if self.cache is not None else None)
            if hit is not None:
                telemetry.result_hits += 1
                telemetry.note_job(JobRecord(
                    label=job.label, scheme=job.scheme,
                    fingerprint=job.fingerprint()[:12], wall_s=0.0,
                    source="cache", worker=os.getpid()))
                results[index] = hit
            else:
                telemetry.result_misses += 1
                pending.append((index, job))

        groups = self._build_groups(pending, prepared)
        # Every pending job beyond the first of its group rides a shared
        # front end — the fingerprint-split dedup the gang path builds on.
        telemetry.traces_shared += sum(len(g.entries) - 1 for g in groups)
        # Scatter fans gang chunks (not whole groups) out to the pool, so
        # count work units accordingly or the report under-states worker
        # parallelism.
        units = max(1, len(groups))
        if groups:
            if self.n_jobs <= 1:
                self._run_serial(groups, prepared, results)
            elif len(groups) == 1 and len(groups[0].entries) > 1:
                units = len(groups[0].entries)
                self._run_scatter(groups[0], prepared, results)
            else:
                self._run_pool(groups, prepared, results)

        telemetry.n_workers = max(telemetry.n_workers,
                                  1 if self.n_jobs <= 1 else
                                  min(self.n_jobs, units))
        telemetry.wall_time_s += time.perf_counter() - started
        return [result for result in results]  # type: ignore[misc]

    # ------------------------------------------------------------- internal

    def _build_groups(self, pending: Sequence[Tuple[int, Job]],
                      prepared: Optional[Dict[str, PreparedRun]]) -> List[_GroupWork]:
        cache_root = str(self.cache.root) if self.cache is not None else None
        grouped: Dict[str, _GroupWork] = {}
        order: List[_GroupWork] = []
        for index, job in pending:
            key = job.prepare_fingerprint()
            work = grouped.get(key)
            if work is None:
                work = _GroupWork(prepare_key=key, program=job.program,
                                  machine=job.machine, params=job.params,
                                  opts=job.opts, migration=job.migration,
                                  entries=[], cache_root=cache_root)
                grouped[key] = work
                order.append(work)
            work.entries.append(_Entry(index=index, scheme=job.scheme,
                                       machine=job.machine,
                                       result_key=job.fingerprint(),
                                       label=job.label))
        return order

    def _group_timeout(self, work: _GroupWork) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.timeout * max(1, len(work.entries))

    def _absorb(self, outcome: Tuple[List[Tuple[int, SimResult]], Dict],
                results: List[Optional[SimResult]]) -> None:
        payload, stats = outcome
        self.telemetry.merge_worker(stats)
        for index, result in payload:
            results[index] = result

    def _run_serial(self, groups: Sequence[_GroupWork],
                    prepared: Optional[Dict[str, PreparedRun]],
                    results: List[Optional[SimResult]]) -> None:
        for work in groups:
            supplied = (prepared or {}).get(work.prepare_key)
            if supplied is not None:
                stats = _new_stats()
                outcome = (_simulate_entries(supplied, work.entries,
                                             self.cache, stats), stats)
            else:
                # In-process: reuse self.cache instead of reopening the root.
                stats = _new_stats()
                run = _obtain_prepared(work, self.cache, stats)
                if prepared is not None:
                    prepared[work.prepare_key] = run
                outcome = (_simulate_entries(run, work.entries, self.cache,
                                             stats), stats)
            self._absorb(outcome, results)

    def _run_scatter(self, work: _GroupWork,
                     prepared: Optional[Dict[str, PreparedRun]],
                     results: List[Optional[SimResult]]) -> None:
        """One front end, many back ends/schemes: prepare once, fan out.

        Entries split into one contiguous gang chunk per worker, so the
        columnar buffers pickle once per worker (not once per cell) and
        each worker's chunk shares primed analyses in-process.  Contiguity
        matters: the grid is schemes-innermost, so a cell's schemes — and
        neighboring cells, which most often share a cache geometry — land
        in the same chunk.
        """
        stats = _new_stats()
        run = (prepared or {}).get(work.prepare_key)
        if run is None:
            run = _obtain_prepared(work, self.cache, stats)
            if prepared is not None:
                prepared[work.prepare_key] = run
        self.telemetry.merge_worker(stats)
        # Dedup duplicate result keys parent-side (scheme-dead config
        # pruning): chunk boundaries would otherwise split duplicates
        # across workers and recompute them.
        reps: Dict[str, _Entry] = {}
        entries: List[_Entry] = []
        duplicates: List[_Entry] = []
        for entry in work.entries:
            if entry.result_key in reps:
                duplicates.append(entry)
            else:
                reps[entry.result_key] = entry
                entries.append(entry)
        chunks = max(1, min(self.n_jobs, len(entries)))
        size, rem = divmod(len(entries), chunks)
        units: List[_ScatterWork] = []
        start = 0
        for rank in range(chunks):
            stop = start + size + (1 if rank < rem else 0)
            units.append(_ScatterWork(prepared=run,
                                      entries=entries[start:stop],
                                      cache_root=work.cache_root))
            start = stop
        self._dispatch(_execute_scatter, units, self._chunk_timeout, results)
        for entry in duplicates:
            result = results[reps[entry.result_key].index]
            results[entry.index] = result
            self.telemetry.results_shared += 1
            self.telemetry.note_job(JobRecord(
                label=entry.label, scheme=entry.scheme,
                fingerprint=entry.result_key[:12], wall_s=0.0,
                source="shared", engine=result.engine, worker=os.getpid()))

    def _chunk_timeout(self, unit: _ScatterWork) -> Optional[float]:
        if self.timeout is None:
            return None
        return self.timeout * max(1, len(unit.entries))

    def _run_pool(self, groups: Sequence[_GroupWork],
                  prepared: Optional[Dict[str, PreparedRun]],
                  results: List[Optional[SimResult]]) -> None:
        # Parent-supplied front ends cannot cross the pickle boundary via
        # the cache, so peel those groups off and run them in-process.
        remote: List[_GroupWork] = []
        for work in groups:
            if prepared and work.prepare_key in prepared:
                self._run_serial([work], prepared, results)
            else:
                remote.append(work)
        if remote:
            self._dispatch(_execute_group, remote, self._group_timeout,
                           results)

    def _dispatch(self, fn, units, timeout_for, results) -> None:
        """Submit units to a fresh pool; retry crashed units in-process."""
        workers = min(self.n_jobs, len(units))
        crashed: List[Any] = []
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [(unit, pool.submit(fn, unit)) for unit in units]
                for unit, future in futures:
                    try:
                        self._absorb(future.result(timeout=timeout_for(unit)),
                                     results)
                    except FutureTimeout:
                        for _, other in futures:
                            other.cancel()
                        raise JobTimeoutError(
                            f"job exceeded {self.timeout}s timeout") from None
                    except BrokenProcessPool:
                        raise  # pool is dead; retry everything unfinished
                    except Exception:
                        crashed.append(unit)
        except BrokenProcessPool:
            crashed = [unit for unit in units
                       if self._unfinished(unit, results)]
        for unit in crashed:
            if self.retries <= 0:
                raise SimulationError("worker failed and retries exhausted")
            self.telemetry.retries += 1
            self._absorb(fn(unit), results)

    @staticmethod
    def _unfinished(unit, results) -> bool:
        return any(results[entry.index] is None for entry in unit.entries)


def execute_jobs(jobs: Sequence[Job], n_jobs: Optional[int] = 1,
                 cache: Optional[ArtifactCache] = None,
                 telemetry: Optional[Telemetry] = None,
                 timeout: Optional[float] = None) -> List[SimResult]:
    """One-call convenience: build an executor, run, return ordered results."""
    executor = ParallelExecutor(jobs=n_jobs, cache=cache, telemetry=telemetry,
                                timeout=timeout)
    return executor.run(jobs)
