"""Content-addressed on-disk artifact cache.

Four artifact kinds are stored, all pickled under their fingerprint:

* ``prepared`` — :class:`~repro.sim.runner.PreparedRun` front-end output
  (marking + trace), keyed by :meth:`Job.prepare_fingerprint`;
* ``result`` — finished :class:`~repro.sim.metrics.SimResult`, keyed by
  :meth:`Job.fingerprint`;
* ``lint`` — :class:`~repro.analysis.diagnostics.Report` from
  ``repro lint``, keyed by :func:`repro.analysis.lint.lint_fingerprint`;
* ``modelcheck`` — :class:`~repro.analysis.diagnostics.Report` from
  ``repro modelcheck``, keyed by
  :func:`repro.analysis.modelcheck.modelcheck_fingerprint` (which digests
  the rule/checker *source files*, so editing the protocol re-verifies).

Layout: ``<root>/v<CACHE_VERSION>/<kind>/<key[:2]>/<key>.pkl``.  The root
defaults to ``~/.cache/repro`` and can be overridden with the
``REPRO_CACHE_DIR`` environment variable or the ``--cache-dir`` CLI flag.

Key salting: every fingerprint mixes in :func:`cache_salt`, which combines
``CACHE_VERSION`` with ``ENGINE_SALT``.  Bump ``ENGINE_SALT`` whenever the
simulation semantics change (engine, coherence schemes, marking, trace
generation) so stale artifacts can never be returned; bump
``CACHE_VERSION`` when the on-disk layout itself changes.

Loads are corruption-tolerant: any failure to read or unpickle an entry is
treated as a miss and the damaged file is removed.  Stores are atomic
(write to a temp file, then rename) and best-effort — a full disk degrades
to a cache miss, never to a failed run.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

CACHE_VERSION = 2
"""On-disk layout version; bump when the directory structure or the
pickled shape of a cached artifact class changes (v2: ``Report.tool``)."""

ENGINE_SALT = "procs-v5"
"""Simulation-semantics version; bump on any engine/compiler/trace change
that can alter results, to invalidate previously cached artifacts."""

KIND_PREPARED = "prepared"
KIND_RESULT = "result"
KIND_LINT = "lint"
KIND_MODELCHECK = "modelcheck"
_KINDS = (KIND_PREPARED, KIND_RESULT, KIND_LINT, KIND_MODELCHECK)


def cache_salt() -> str:
    """The salt mixed into every fingerprint."""
    return f"v{CACHE_VERSION}:{ENGINE_SALT}"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Entry counts and byte totals per artifact kind."""

    root: str
    entries: Dict[str, int] = field(default_factory=dict)
    bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def total_entries(self) -> int:
        return sum(self.entries.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def render(self) -> str:
        lines = [f"cache {self.root}"]
        for kind in sorted(set(self.entries) | set(self.bytes)):
            lines.append(f"  {kind:>9}: {self.entries.get(kind, 0):>6} entries"
                         f"  {self.bytes.get(kind, 0) / 1024:>10.1f} KB")
        lines.append(f"  {'total':>9}: {self.total_entries:>6} entries"
                     f"  {self.total_bytes / 1024:>10.1f} KB")
        return "\n".join(lines)


class ArtifactCache:
    """Pickle store addressed by content fingerprint."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.base = self.root / f"v{CACHE_VERSION}"

    # ---------------------------------------------------------------- paths

    def _path(self, kind: str, key: str) -> Path:
        return self.base / kind / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ I/O

    def load(self, kind: str, key: str) -> Optional[Any]:
        """Return the cached object, or ``None`` on a miss.

        A corrupt or unreadable entry counts as a miss; the stale file is
        removed so it cannot poison later lookups.
        """
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def store(self, kind: str, key: str, obj: Any) -> bool:
        """Atomically persist an object; returns False on I/O failure."""
        path = self._path(kind, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except Exception:
            # Unpicklable payloads and I/O failures (full disk, read-only
            # cache) degrade to a miss on the next lookup, never to a
            # failed run.
            return False

    def contains(self, kind: str, key: str) -> bool:
        return self._path(kind, key).exists()

    # ----------------------------------------------------------- management

    def stats(self) -> CacheStats:
        """Entry counts per kind; safe against concurrent mutation.

        Another worker may be populating or clearing the same root while
        this scan runs (the serve deployment does exactly that), so a
        directory or entry vanishing mid-iteration is counted as absent —
        zeroed stats, never a traceback.
        """
        stats = CacheStats(root=str(self.root))
        for kind in _KINDS:
            kind_dir = self.base / kind
            count = size = 0
            try:
                if kind_dir.is_dir():
                    for entry in kind_dir.rglob("*.pkl"):
                        try:
                            size += entry.stat().st_size
                            count += 1
                        except OSError:
                            continue
            except OSError:
                # The kind directory itself was removed mid-scan.
                count = size = 0
            stats.entries[kind] = count
            stats.bytes[kind] = size
        return stats

    def clear(self) -> int:
        """Remove every cached artifact; returns the number removed.

        Like :meth:`stats`, this tolerates a racing worker deleting (or
        re-creating) entries mid-walk: whatever this process removed is
        counted, everything else is skipped.
        """
        removed = 0
        try:
            if not self.base.is_dir():
                return removed
            entries = sorted(self.base.rglob("*"), reverse=True)
        except OSError:
            return removed
        for entry in entries:
            try:
                if entry.is_dir():
                    entry.rmdir()
                else:
                    entry.unlink()
                    removed += 1
            except OSError:
                continue
        try:
            self.base.rmdir()
        except OSError:
            pass
        return removed
