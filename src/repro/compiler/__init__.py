"""Compiler analyses: the Polaris-substrate passes plus the paper's
stale-reference marking algorithm (Time-Read insertion).

Pipeline (see :func:`repro.compiler.marking.mark_program`):

1. epoch partitioning + epoch flow graph (``epochs``);
2. symbolic range analysis of affine subscripts (``ranges``, ``ssa``);
3. bounded regular section descriptors per access (``sections``);
4. dependence tests between DOALL iterations (``dependence``);
5. interprocedural MOD/USE summaries (``callgraph``, ``interproc``);
6. the marking pass itself (``marking``), with per-benchmark statistics
   (``report``).
"""

from repro.compiler.marking import (
    InterprocMode,
    Marking,
    MarkingOptions,
    RefMark,
    mark_program,
)
from repro.compiler.epochs import EpochGraph, StaticEpoch, build_epoch_graph
from repro.compiler.sections import RegularSection
from repro.compiler.report import marking_report

__all__ = [
    "EpochGraph",
    "InterprocMode",
    "Marking",
    "MarkingOptions",
    "RefMark",
    "RegularSection",
    "StaticEpoch",
    "build_epoch_graph",
    "mark_program",
    "marking_report",
]
