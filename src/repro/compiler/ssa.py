"""GSA-lite scalar resolution.

The paper transforms programs to Gated Single Assignment form and runs
demand-driven symbolic analysis on it [4].  Our IR has structured control
flow only, so full GSA collapses to something much simpler that preserves
the analysis power the marking pass needs:

* straight-line scalar assignments are resolved by substitution (copy /
  affine propagation), so a subscript ``A[off + i]`` with ``off := 2*N``
  becomes exactly affine in parameters and indices;
* scalars assigned inside a loop are *loop-varying*: they cannot be
  represented affinely, so they are **weakened** to an opaque symbol with a
  conservative interval.  The common induction pattern ``s := s + c`` gets a
  tight interval derived from the trip count; anything else is widened to
  unbounded (section construction then clamps to the array extent);
* branches of an ``If`` merge by interval union (the gating function of GSA,
  approximated by its value range).

The outcome per scalar is either an exact :class:`Affine` over parameters
and loop indices, or an interval registered in the :class:`RangeEnv`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.compiler.ranges import Interval, RangeEnv, interval_add, interval_union
from repro.ir.expr import Affine
from repro.ir.program import ScalarAssign, walk


@dataclass
class ScalarEnv:
    """Tracks, per scalar, an exact affine value or a weakened interval."""

    exact: Dict[str, Affine] = field(default_factory=dict)
    weak: Set[str] = field(default_factory=set)

    def copy(self) -> "ScalarEnv":
        return ScalarEnv(dict(self.exact), set(self.weak))

    def resolve(self, expr: Affine) -> Affine:
        """Substitute exactly-known scalars; weakened ones stay symbolic."""
        known = {s: self.exact[s] for s in expr.symbols if s in self.exact}
        return expr.substitute(known) if known else expr

    def assign(self, node: ScalarAssign, ranges: RangeEnv) -> None:
        """Process ``name := expr`` in straight-line context."""
        resolved = self.resolve(node.expr)
        if node.name in resolved.symbols:
            # Self-reference outside a loop pre-pass: weaken via current range.
            self._weaken(node.name, ranges.range_of(resolved), ranges)
            return
        self.exact[node.name] = resolved
        self.weak.discard(node.name)
        ranges.bind(node.name, ranges.range_of(resolved))

    def _weaken(self, name: str, interval: Interval, ranges: RangeEnv) -> None:
        self.exact.pop(name, None)
        self.weak.add(name)
        ranges.bind(name, interval)

    def weaken_loop_body(self, body, trip_bound: Optional[int],
                         ranges: RangeEnv) -> None:
        """Weaken every scalar assigned anywhere in a loop body.

        Must be called before analysing the body so that uses of
        loop-varying scalars see a sound interval.  The induction pattern
        ``s := s + c`` (possibly via several assignments summing to a net
        constant increment per iteration) gets the interval
        ``[init_lo + min(0, c*(T-1)), init_hi + max(0, c*(T-1))]`` for trip
        bound ``T``; other assignments widen to unbounded.
        """
        increments = self._net_increments(body)
        for name, net in increments.items():
            if net is None or trip_bound is None:
                self._weaken(name, (None, None), ranges)
                continue
            init = ranges.range_of(self.resolve(Affine.var(name))
                                   if name in self.exact else Affine.var(name))
            span = net * max(0, trip_bound - 1)
            delta: Interval = (min(0, span), max(0, span))
            self._weaken(name, interval_add(init, delta), ranges)

    @staticmethod
    def _net_increments(body) -> Dict[str, Optional[int]]:
        """Per scalar assigned in ``body``: net constant increment per
        iteration if every assignment is ``s := s + const`` at the top level
        of the body, else None (unknown)."""
        result: Dict[str, Optional[int]] = {}
        top_level = {id(n) for n in body}
        for node in walk(tuple(body)):
            if not isinstance(node, ScalarAssign):
                continue
            name = node.name
            delta = node.expr - Affine.var(name)
            is_simple = (id(node) in top_level and delta.is_constant)
            if name not in result:
                result[name] = delta.const if is_simple else None
            elif result[name] is not None and is_simple:
                result[name] += delta.const
            else:
                result[name] = None
        return result

    def merge_branches(self, then_env: "ScalarEnv", else_env: "ScalarEnv",
                       then_ranges: RangeEnv, else_ranges: RangeEnv,
                       ranges: RangeEnv) -> None:
        """Gate (phi) merge of the two branch environments into self."""
        names = (set(then_env.exact) | then_env.weak
                 | set(else_env.exact) | else_env.weak)
        for name in names:
            t = then_env.exact.get(name)
            e = else_env.exact.get(name)
            if t is not None and e is not None and t == e:
                self.exact[name] = t
                self.weak.discard(name)
                ranges.bind(name, ranges.range_of(t))
            else:
                t_iv = then_ranges.lookup(name)
                e_iv = else_ranges.lookup(name)
                self._weaken(name, interval_union(t_iv, e_iv), ranges)
