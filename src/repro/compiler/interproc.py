"""Interprocedural MOD/USE side-effect summaries.

For each procedure, the summary records which sections of which shared
arrays the procedure (including its callees) may write (MOD) and read (USE).
Summaries are computed bottom-up over the call graph; since procedures
communicate only through global arrays, a callee's summary folds into its
caller unchanged.

The marking pass proper analyses statically-inlined bodies (more precise);
these summaries serve the ``SUMMARY`` ablation mode, the per-benchmark
compiler report, and API users who want side-effect information.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.compiler.callgraph import bottom_up_order
from repro.compiler.marking import MarkingOptions, _WalkBase
from repro.compiler.epochs import StaticEpoch
from repro.compiler.ranges import RangeEnv
from repro.compiler.sections import RegularSection, SectionList
from repro.compiler.ssa import ScalarEnv
from repro.ir.expr import Affine
from repro.ir.program import ArrayRef, Program, Sharing
from typing import Tuple


@dataclass
class ProcedureSummary:
    """MOD/USE section lists of one procedure, shared arrays only."""

    name: str
    mod: Dict[str, SectionList] = field(default_factory=dict)
    use: Dict[str, SectionList] = field(default_factory=dict)

    def record(self, array: str, section: RegularSection, is_write: bool) -> None:
        target = self.mod if is_write else self.use
        target.setdefault(array, SectionList(array)).add(section)

    def merge(self, other: "ProcedureSummary") -> None:
        for source, target in ((other.mod, self.mod), (other.use, self.use)):
            for array, sections in source.items():
                bucket = target.setdefault(array, SectionList(array))
                for section in sections.sections:
                    bucket.add(section)


class _SummaryWalker(_WalkBase):
    """Collects MOD/USE sections of one procedure body.

    Reuses the epoch-body walker by wrapping the procedure body in a
    synthetic serial "epoch".  The base walker descends into DOALL loops
    exactly like serial ones, which is what a MOD/USE summary wants: only
    the touched sections matter, not the parallelism.
    """

    def __init__(self, program: Program, proc_name: str,
                 params: Dict[str, int]):
        body = program.procedures[proc_name].body
        pseudo = StaticEpoch(
            id=-1, parallel=False, nodes=body, outer=(),
            scalars=ScalarEnv(), ranges=RangeEnv.from_params(params),
            origin_proc=proc_name)
        super().__init__(program, pseudo, MarkingOptions())
        self.summary = ProcedureSummary(proc_name)

    def visit_ref(self, ref: ArrayRef, is_write: bool,
                  subs: Tuple[Affine, ...], section: RegularSection) -> None:
        if self.program.arrays[ref.array].sharing is Sharing.PRIVATE:
            return
        self.summary.record(ref.array, section, is_write)


def procedure_summaries(program: Program,
                        params: Optional[Dict[str, int]] = None
                        ) -> Dict[str, ProcedureSummary]:
    """MOD/USE summaries for every procedure, bottom-up over the call graph.

    Note the walker inlines callees itself, so each summary is already
    transitively closed; the bottom-up order is kept for the classic
    presentation (and so the per-procedure cost is paid once in tests).
    """
    env = program.bind_params(params)
    summaries: Dict[str, ProcedureSummary] = {}
    for name in bottom_up_order(program):
        walker = _SummaryWalker(program, name, env)
        walker.run()
        summaries[name] = walker.summary
    return summaries
