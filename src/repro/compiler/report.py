"""Per-program compiler marking statistics.

Produces the static side of the paper's compiler evaluation: how many read
sites each analysis mode marks as Time-Reads, per benchmark.  Dynamic
fractions (how many executed reads were Time-Reads) come from the simulator
counters; see ``repro.experiments.tab_marking``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.compiler.marking import InterprocMode, MarkingOptions, RefMark, mark_program
from repro.ir.program import Program


@dataclass(frozen=True)
class ModeStats:
    """Static marking statistics for one analysis configuration."""

    read_sites: int
    time_read_sites_tpi: int
    time_read_sites_sc: int
    parallel_epochs: int
    total_epochs: int

    @property
    def time_read_fraction_tpi(self) -> float:
        return self.time_read_sites_tpi / self.read_sites if self.read_sites else 0.0

    @property
    def time_read_fraction_sc(self) -> float:
        return self.time_read_sites_sc / self.read_sites if self.read_sites else 0.0


def _stats_for(program: Program, params: Optional[Dict[str, int]],
               opts: MarkingOptions) -> ModeStats:
    marking = mark_program(program, params, opts)
    read_sites = len(marking.tpi)
    return ModeStats(
        read_sites=read_sites,
        time_read_sites_tpi=sum(
            1 for mark in marking.tpi.values() if mark is RefMark.TIME_READ),
        time_read_sites_sc=sum(
            1 for mark in marking.sc.values() if mark is RefMark.TIME_READ),
        parallel_epochs=marking.stats["epochs.parallel"],
        total_epochs=marking.stats["epochs"],
    )


def marking_report(program: Program,
                   params: Optional[Dict[str, int]] = None
                   ) -> Dict[str, ModeStats]:
    """Marking statistics under the three interprocedural modes.

    Keys: ``"inline"`` (the paper's full analysis), ``"summary"``
    (section-widened call summaries), ``"none"`` (pre-TPI region-based
    schemes that invalidate at procedure boundaries).
    """
    return {
        mode.value: _stats_for(program, params, MarkingOptions(interproc=mode))
        for mode in InterprocMode
    }


def render_report(name: str, report: Dict[str, ModeStats]) -> str:
    """Human-readable table for one benchmark."""
    lines = [f"compiler marking statistics: {name}",
             f"{'mode':<10} {'read sites':>10} {'TIME_READ (TPI)':>16} "
             f"{'TIME_READ (SC)':>15} {'% TPI':>7}"]
    for mode, stats in report.items():
        lines.append(
            f"{mode:<10} {stats.read_sites:>10} {stats.time_read_sites_tpi:>16} "
            f"{stats.time_read_sites_sc:>15} {100 * stats.time_read_fraction_tpi:>6.1f}%")
    return "\n".join(lines)
