"""Stale-reference marking: the paper's central compiler algorithm.

A *stale reference sequence* [35] is: (1) processor ``P_i`` reads or writes
location ``x`` in epoch ``e1`` and caches it; (2) another processor writes
``x`` in a later epoch ``e2``; (3) ``P_i`` reads ``x`` in epoch ``e3 > e2``.
Every read that can terminate such a sequence must be marked **Time-Read**;
all other reads stay ordinary reads and may hit on any valid cached copy.

The pass runs in three phases over the epoch flow graph:

1. **Collect** — per epoch, the MOD/USE regular sections and the list of
   write occurrences (for same-epoch dependence tests);
2. **Propagate** — per epoch, the *stale sources*: sections written in
   epochs that may precede it and whose writer may be a different processor
   than the reader.  Serial epochs all execute on the master processor, so
   serial-writer -> serial-reader pairs are excluded (unless task migration
   is allowed, Section 5 of the paper);
3. **Decide** — a structured walk of each epoch body marks every shared
   read site, maintaining a *validated set* so that reads dominated within
   the same task by a write (or, for TPI, by an earlier Time-Read) of the
   same element are downgraded to ordinary reads — this exploits intra-task
   temporal reuse exactly as the paper's reference-marking algorithm does.

Two decision maps are produced from the one analysis: one for TPI (where a
Time-Read itself validates the word via its timetag) and one for the
software cache-bypass scheme SC (where a bypassing read does *not* validate,
so only writes can downgrade later reads).

Interprocedural behaviour is selectable (:class:`InterprocMode`):
``INLINE`` analyses statically-inlined call bodies at full precision;
``SUMMARY`` widens callee accesses to whole-array sections and kills the
validated set at call boundaries; ``NONE`` models the pre-TPI schemes that
invalidate the whole cache at procedure boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import CompilationError
from repro.compiler.dependence import Relation, doall_relation
from repro.compiler.epochs import EpochGraph, StaticEpoch, build_epoch_graph
from repro.compiler.ranges import RangeEnv, interval_union
from repro.compiler.sections import RegularSection, SectionList, section_of, whole_array_section
from repro.ir.expr import Affine
from repro.ir.program import (
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Sharing,
    Statement,
)


class RefMark(enum.Enum):
    READ = "read"
    TIME_READ = "time_read"


class InterprocMode(enum.Enum):
    INLINE = "inline"
    SUMMARY = "summary"
    NONE = "none"


@dataclass(frozen=True)
class MarkingOptions:
    """Knobs for the marking analysis (ablation axes of the paper).

    ``assume_no_migration=False`` (Section 5 of the paper) surrenders every
    piece of reasoning that depends on knowing which processor executes
    what: serial epochs may leave the master, and a task's own earlier
    accesses may have happened on a different processor, so same-iteration
    dependences become cross-processor and intra-task validation downgrades
    are disabled.  (The migrating runtime is assumed to drain the source
    processor's write buffer at the migration point, a release fence.)
    """

    interproc: InterprocMode = InterprocMode.INLINE
    intra_task_reuse: bool = True
    assume_no_migration: bool = True


@dataclass
class Marking:
    """Per-site decisions for the two compiler-directed schemes.

    Two Time-Read flavours are distinguished (both are one hardware
    instruction with a mode bit):

    * **strict** (``site in strict_sites``) — a concurrent task may write
      the word in the *same* epoch; the hardware may only hit on a copy the
      task itself produced this epoch (timetag == R);
    * **timestamp** (the default) — no same-epoch writer is possible; the
      hardware hits iff the word was validated strictly after the array's
      last-possibly-writing epoch, read from the per-array W register:
      ``(R - tag) mod 2^k <= min(R - W[array], 2^k - 1)``.

    ``epoch_writes`` carries the compiler-emitted epoch-epilogue updates:
    for each static epoch (keyed by :attr:`StaticEpoch.write_key`), the
    shared arrays the epoch may write, with a *racy* flag when two
    different iterations may write the same element (then W is set one
    epoch higher, so even the writers' own copies are distrusted).
    """

    tpi: Dict[int, RefMark]
    sc: Dict[int, RefMark]
    graph: EpochGraph
    strict_sites: Set[int] = field(default_factory=set)
    epoch_writes: Dict[int, Dict[str, bool]] = field(default_factory=dict)
    stats: Dict[str, int] = field(default_factory=dict)

    def tpi_mark(self, site: int) -> RefMark:
        return self.tpi.get(site, RefMark.READ)

    def sc_mark(self, site: int) -> RefMark:
        return self.sc.get(site, RefMark.READ)

    def is_strict(self, site: int) -> bool:
        return site in self.strict_sites


# --------------------------------------------------------------------------
# Phase 1: per-epoch collection


@dataclass
class _WriteOcc:
    array: str
    subs: Tuple[Affine, ...]
    section: RegularSection


@dataclass
class _EpochInfo:
    mod: Dict[str, SectionList] = field(default_factory=dict)
    writes: List[_WriteOcc] = field(default_factory=list)
    epoch_syms: Set[str] = field(default_factory=set)
    epoch_ranges: Dict[str, Tuple] = field(default_factory=dict)
    racy_arrays: Set[str] = field(default_factory=set)

    def add_write(self, occ: _WriteOcc) -> None:
        self.mod.setdefault(occ.array, SectionList(occ.array)).add(occ.section)
        self.writes.append(occ)

    def detect_races(self, doall_index: str, dep_env,
                     same_iter_is_race: bool = False) -> None:
        """Cross-iteration write-write conflicts (illegal-DOALL guard).

        A legal DOALL never has two iterations writing one element, but the
        analysis cannot always prove legality; arrays with a possible
        write-write conflict get their W register bumped past the epoch so
        that even the writers' own copies are re-fetched afterwards.

        With ``same_iter_is_race`` (task migration allowed), even two
        writes of the *same iteration* to one element count: a migrated
        task's halves run on different processors, so the first writer's
        cached copy can be stale while still carrying the writing epoch's
        timetag.
        """
        by_array: Dict[str, List[_WriteOcc]] = {}
        for occ in self.writes:
            by_array.setdefault(occ.array, []).append(occ)
        for array, occs in by_array.items():
            if array in self.racy_arrays:
                continue
            found = False
            for i, w1 in enumerate(occs):
                for w2 in occs[i:]:
                    if not w1.section.overlaps(w2.section):
                        continue
                    rel = doall_relation(w1.subs, w2.subs, doall_index,
                                         self.epoch_syms, dep_env)
                    if rel is Relation.MAY_CONFLICT:
                        found = True
                        break
                    if rel is Relation.SAME_ITER_ONLY and same_iter_is_race:
                        found = True
                        break
                if found:
                    break
            if found:
                self.racy_arrays.add(array)


class _WalkBase:
    """Structured walk of one epoch body with scalar/range tracking.

    Epoch bodies never contain DOALLs (the partitioner split there), so the
    walk only handles serial constructs; calls are inlined (the validator
    guarantees an acyclic call graph).
    """

    def __init__(self, program: Program, epoch: StaticEpoch,
                 opts: MarkingOptions):
        self.program = program
        self.epoch = epoch
        self.opts = opts
        self.scalars = epoch.scalars.copy()
        self.ranges = RangeEnv(dict(epoch.ranges.bindings))
        self.in_critical = 0
        self.inline_depth = 0

    # hook -----------------------------------------------------------------
    def visit_ref(self, ref: ArrayRef, is_write: bool,
                  subs: Tuple[Affine, ...], section: RegularSection) -> None:
        raise NotImplementedError

    def enter_loop(self, loop: Loop) -> None:
        pass

    def exit_loop(self, loop: Loop) -> None:
        pass

    def enter_branch(self) -> object:
        return None

    def merge_branches_hook(self, then_state: object, else_state: object,
                            saved: object) -> None:
        pass

    def enter_critical(self) -> None:
        pass

    def exit_critical(self) -> None:
        pass

    def at_call_boundary(self) -> None:
        pass

    # driving ----------------------------------------------------------------
    def run(self) -> None:
        if self.epoch.parallel:
            loop = self.epoch.doall
            assert loop is not None
            lo = self.scalars.resolve(loop.lo)
            hi = self.scalars.resolve(loop.hi)
            self.ranges.bind(loop.index,
                             self.ranges.loop_range(lo, hi, loop.step))
            self.note_epoch_sym(loop.index)
            self._body(loop.body)
        else:
            self._body(self.epoch.nodes)

    def note_epoch_sym(self, symbol: str) -> None:
        pass

    def _body(self, nodes: Tuple[Node, ...]) -> None:
        for node in nodes:
            self._node(node)

    def _node(self, node: Node) -> None:
        if isinstance(node, Statement):
            for ref in node.reads:
                self._ref(ref, is_write=False)
            for ref in node.writes:
                self._ref(ref, is_write=True)
        elif isinstance(node, ScalarAssign):
            self.scalars.assign(node, self.ranges)
        elif isinstance(node, Loop):
            self._loop(node)
        elif isinstance(node, If):
            self._if(node)
        elif isinstance(node, CriticalSection):
            self.in_critical += 1
            self.enter_critical()
            self._body(node.body)
            self.exit_critical()
            self.in_critical -= 1
        elif isinstance(node, Call):
            if self.opts.interproc is not InterprocMode.INLINE:
                self.at_call_boundary()
            self.inline_depth += 1
            self._body(self.program.procedures[node.callee].body)
            self.inline_depth -= 1
            if self.opts.interproc is not InterprocMode.INLINE:
                self.at_call_boundary()
        else:  # pragma: no cover - closed union
            raise CompilationError(
                f"unexpected node {type(node).__name__} in epoch "
                f"{self.epoch.label or self.epoch.id} (procedure "
                f"{self.epoch.origin_proc!r})")

    def _loop(self, loop: Loop) -> None:
        lo = self.scalars.resolve(loop.lo)
        hi = self.scalars.resolve(loop.hi)
        trips = self.ranges.max_trip_count(lo, hi, loop.step)
        self.ranges = self.ranges.child()
        self.ranges.bind(loop.index, self.ranges.loop_range(lo, hi, loop.step))
        self.note_epoch_sym(loop.index)
        weak_before = set(self.scalars.weak)
        self.scalars.weaken_loop_body(loop.body, trips, self.ranges)
        for name in self.scalars.weak - weak_before:
            self.note_epoch_sym(name)
        self.enter_loop(loop)
        self._body(loop.body)
        self.exit_loop(loop)
        self.ranges = self.ranges.parent  # type: ignore[assignment]

    def _if(self, node: If) -> None:
        saved = self.enter_branch()
        saved_scalars = self.scalars.copy()
        then_ranges = self.ranges.child()
        self.ranges = then_ranges
        self._body(node.then)
        then_scalars = self.scalars
        then_state = self.enter_branch()

        self.scalars = saved_scalars.copy()
        else_ranges = then_ranges.parent.child()  # type: ignore[union-attr]
        self.ranges = else_ranges
        self._restore_branch(saved)
        self._body(node.els)
        else_scalars = self.scalars
        else_state = self.enter_branch()

        self.ranges = else_ranges.parent  # type: ignore[assignment]
        merged = saved_scalars.copy()
        merged.merge_branches(then_scalars, else_scalars,
                              then_ranges, else_ranges, self.ranges)
        for name in merged.weak:
            self.note_epoch_sym(name)
        self.scalars = merged
        self.merge_branches_hook(then_state, else_state, saved)

    def _restore_branch(self, saved: object) -> None:
        pass

    def _ref(self, ref: ArrayRef, is_write: bool) -> None:
        array = self.program.arrays[ref.array]
        subs = tuple(self.scalars.resolve(s) for s in ref.subscripts)
        section = section_of(ArrayRef(ref.array, subs, ref.site), array, self.ranges)
        if (self.opts.interproc is InterprocMode.SUMMARY
                and self.inline_depth > 0):
            section = whole_array_section(array)
        self.visit_ref(ref, is_write, subs, section)


def _effectively_shared(array, opts: MarkingOptions) -> bool:
    """Private storage counts as shared when tasks may migrate: the two
    halves of one task run on different processors, so per-processor
    copies of "private" data become cross-processor-visible."""
    return (array.sharing is Sharing.SHARED
            or not opts.assume_no_migration)


class _Collector(_WalkBase):
    """Phase 1: gather MOD sections, write occurrences, symbol ranges."""

    def __init__(self, program: Program, epoch: StaticEpoch,
                 opts: MarkingOptions):
        super().__init__(program, epoch, opts)
        self.info = _EpochInfo()

    def note_epoch_sym(self, symbol: str) -> None:
        self.info.epoch_syms.add(symbol)
        interval = self.ranges.lookup(symbol)
        if symbol in self.info.epoch_ranges:
            interval = interval_union(self.info.epoch_ranges[symbol], interval)
        self.info.epoch_ranges[symbol] = interval

    def visit_ref(self, ref: ArrayRef, is_write: bool,
                  subs: Tuple[Affine, ...], section: RegularSection) -> None:
        if not is_write:
            return
        if not _effectively_shared(self.program.arrays[ref.array], self.opts):
            return
        self.info.add_write(_WriteOcc(ref.array, subs, section))
        # Record ranges of weak scalars appearing in subscripts, for the
        # dependence tests.
        for sub in subs:
            for symbol in sub.symbols:
                if symbol in self.scalars.weak:
                    self.note_epoch_sym(symbol)


# --------------------------------------------------------------------------
# Phase 3: per-epoch decisions

_Key = Tuple[str, Tuple[Affine, ...]]


class _ValidState:
    """Validated-element sets for the decision walk (TPI and SC views)."""

    def __init__(self) -> None:
        self.by_write: Set[_Key] = set()
        self.by_time_read: Set[_Key] = set()

    def copy(self) -> "_ValidState":
        fresh = _ValidState()
        fresh.by_write = set(self.by_write)
        fresh.by_time_read = set(self.by_time_read)
        return fresh

    def clear(self) -> None:
        self.by_write.clear()
        self.by_time_read.clear()

    def drop_keys_with_symbol(self, symbol: str) -> None:
        def keep(keys: Set[_Key]) -> Set[_Key]:
            return {k for k in keys
                    if not any(symbol in sub.symbols for sub in k[1])}
        self.by_write = keep(self.by_write)
        self.by_time_read = keep(self.by_time_read)

    def intersect_added(self, base: "_ValidState", then: "_ValidState",
                        els: "_ValidState") -> None:
        # Plain intersection of the two final states: entries added in only
        # one branch don't survive, and entries *cleared* inside a branch
        # (e.g. by a critical section) are correctly dropped too.
        del base  # kept in the signature for symmetry with the call site
        self.by_write = then.by_write & els.by_write
        self.by_time_read = then.by_time_read & els.by_time_read


class _Decider(_WalkBase):
    """Phase 3: mark every shared read site READ or TIME_READ."""

    def __init__(self, program: Program, epoch: StaticEpoch,
                 opts: MarkingOptions, info: _EpochInfo,
                 stale_by_dist: List[Tuple[int, Dict[str, SectionList]]],
                 any_writes: Dict[str, SectionList],
                 dep_env: RangeEnv,
                 tpi: Dict[int, RefMark], sc: Dict[int, RefMark],
                 strict_sites: Set[int],
                 stats: Dict[str, int]):
        super().__init__(program, epoch, opts)
        self.info = info
        self.stale_by_dist = stale_by_dist  # ascending by distance
        self.any_writes = any_writes
        self.dep_env = dep_env
        self.tpi = tpi
        self.sc = sc
        self.strict_sites = strict_sites
        self.stats = stats
        self.valid = _ValidState()

    # ---- validated-set scoping

    def enter_loop(self, loop: Loop) -> None:
        pass

    def exit_loop(self, loop: Loop) -> None:
        self.valid.drop_keys_with_symbol(loop.index)

    def enter_branch(self) -> object:
        return self.valid.copy()

    def _restore_branch(self, saved: object) -> None:
        self.valid = saved.copy()  # type: ignore[union-attr]

    def merge_branches_hook(self, then_state: object, else_state: object,
                            saved: object) -> None:
        merged = _ValidState()
        merged.intersect_added(saved, then_state, else_state)  # type: ignore[arg-type]
        self.valid = merged

    def enter_critical(self) -> None:
        # Lock acquisition is an acquire point: everything validated before
        # it may have been overwritten by the previous lock holder.
        self.valid.clear()

    def exit_critical(self) -> None:
        # Values read under the lock may be overwritten by the next holder
        # as soon as we release; keep nothing.
        self.valid.clear()

    def at_call_boundary(self) -> None:
        self.valid.clear()

    # ---- the decision itself

    def visit_ref(self, ref: ArrayRef, is_write: bool,
                  subs: Tuple[Affine, ...], section: RegularSection) -> None:
        array = self.program.arrays[ref.array]
        key: Optional[_Key] = None
        if not any(s in self.scalars.weak for sub in subs for s in sub.symbols):
            key = (ref.array, subs)

        if is_write:
            if key is not None:
                self.valid.by_write.add(key)
            return
        if not _effectively_shared(array, self.opts):
            self._decide(ref, RefMark.READ, RefMark.READ, "private")
            return

        if self.in_critical and self._written_anywhere(ref.array, section):
            # Forced Time-Read: lock ordering makes even same-epoch writes
            # visible, so no validation downgrade applies.
            self._decide(ref, RefMark.TIME_READ, RefMark.TIME_READ, "critical",
                         strict=True)
            return

        distance = self._stale_distance(ref.array, subs, section)
        stale = distance is not None
        strict = distance == 0  # a same-epoch concurrent writer is possible
        tpi_mark = sc_mark = RefMark.TIME_READ if stale else RefMark.READ
        reason = "stale" if stale else "fresh"
        if (stale and self.opts.intra_task_reuse
                and self.opts.assume_no_migration and key is not None):
            if key in self.valid.by_write or key in self.valid.by_time_read:
                tpi_mark = RefMark.READ
            if key in self.valid.by_write:
                sc_mark = RefMark.READ
            if tpi_mark is RefMark.READ:
                reason = "validated"
        if key is not None:
            if tpi_mark is RefMark.TIME_READ:
                self.valid.by_time_read.add(key)
            # An SC bypassing read does not allocate, so it validates nothing;
            # a non-stale read implies the cached copy is already fresh.
        self._decide(ref, tpi_mark, sc_mark, reason, strict)

    def _decide(self, ref: ArrayRef, tpi_mark: RefMark, sc_mark: RefMark,
                reason: str, strict: bool = False) -> None:
        # A site inlined at several call sites gets the OR over contexts;
        # strictness ORs too (most conservative).
        if self.tpi.get(ref.site) is not RefMark.TIME_READ:
            self.tpi[ref.site] = tpi_mark
        if tpi_mark is RefMark.TIME_READ and strict:
            self.strict_sites.add(ref.site)
        if self.sc.get(ref.site) is not RefMark.TIME_READ:
            self.sc[ref.site] = sc_mark
        self.stats[f"reason.{reason}"] = self.stats.get(f"reason.{reason}", 0) + 1

    def _written_anywhere(self, array: str, section: RegularSection) -> bool:
        writes = self.any_writes.get(array)
        return writes is not None and writes.overlaps(section)

    def _stale_distance(self, array: str, subs: Tuple[Affine, ...],
                        section: RegularSection) -> Optional[int]:
        """Minimum epoch distance to a conflicting write, or None if fresh.

        0 means a concurrent (same-epoch) write is possible.
        """
        if self.opts.interproc is InterprocMode.NONE:
            # Region-based predecessors: no flow analysis, any write anywhere
            # (past, future, or concurrent) makes the read suspect.
            return 0 if self._written_anywhere(array, section) else None
        if self.epoch.parallel and self._same_epoch_conflict(array, subs,
                                                             section):
            return 0
        for dist, sources in self.stale_by_dist:
            sections = sources.get(array)
            if sections is not None and sections.overlaps(section):
                return dist
        return None

    def _same_epoch_conflict(self, array: str, subs: Tuple[Affine, ...],
                             section: RegularSection) -> bool:
        loop = self.epoch.doall
        assert loop is not None
        for write in self.info.writes:
            if write.array != array or not write.section.overlaps(section):
                continue
            rel = doall_relation(write.subs, subs, loop.index,
                                 self.info.epoch_syms, self.dep_env)
            if rel is Relation.MAY_CONFLICT:
                return True
            if (rel is Relation.SAME_ITER_ONLY
                    and not self.opts.assume_no_migration):
                # A migrated task's halves run on different processors, so
                # even a same-iteration write may be a remote write.
                return True
        return False


# --------------------------------------------------------------------------
# Phase 2 + driver


def _possibly_other_processor(writer: StaticEpoch, reader: StaticEpoch,
                              opts: MarkingOptions) -> bool:
    """May the writer run on a different processor than the reader?

    All serial epochs run on the master processor, so serial->serial pairs
    are same-processor — unless task migration is permitted (Section 5).
    """
    if writer.parallel or reader.parallel:
        return True
    return not opts.assume_no_migration


def mark_program(program: Program, params: Optional[Dict[str, int]] = None,
                 opts: Optional[MarkingOptions] = None,
                 graph: Optional[EpochGraph] = None) -> Marking:
    """Run the full marking analysis and return per-site decisions."""
    opts = opts or MarkingOptions()
    graph = graph or build_epoch_graph(program, params)

    infos: Dict[int, _EpochInfo] = {}
    for epoch in graph.epochs:
        collector = _Collector(program, epoch, opts)
        collector.run()
        infos[epoch.id] = collector.info

    any_writes: Dict[str, SectionList] = {}
    for info in infos.values():
        for array, sections in info.mod.items():
            target = any_writes.setdefault(array, SectionList(array))
            for section in sections.sections:
                target.add(section)

    tpi: Dict[int, RefMark] = {}
    sc: Dict[int, RefMark] = {}
    stats: Dict[str, int] = {}

    strict_sites: Set[int] = set()
    for epoch in graph.epochs:
        by_dist: Dict[int, Dict[str, SectionList]] = {}
        for other in graph.epochs:
            dist = graph.distance(other.id, epoch.id)
            if dist is None:
                continue
            if not _possibly_other_processor(other, epoch, opts):
                continue
            bucket = by_dist.setdefault(dist, {})
            for array, sections in infos[other.id].mod.items():
                target = bucket.setdefault(array, SectionList(array))
                for section in sections.sections:
                    target.add(section)
        stale_by_dist = sorted(by_dist.items())

        info = infos[epoch.id]
        dep_env = RangeEnv(dict(epoch.ranges.bindings))
        for symbol, interval in info.epoch_ranges.items():
            dep_env.bind(symbol, interval)

        if epoch.parallel:
            info.detect_races(epoch.doall.index, dep_env,
                              same_iter_is_race=not opts.assume_no_migration)
        decider = _Decider(program, epoch, opts, info, stale_by_dist,
                           any_writes, dep_env, tpi, sc, strict_sites, stats)
        decider.run()

    stats["sites.time_read.tpi"] = sum(
        1 for mark in tpi.values() if mark is RefMark.TIME_READ)
    stats["sites.time_read.sc"] = sum(
        1 for mark in sc.values() if mark is RefMark.TIME_READ)
    stats["sites.read"] = sum(1 for mark in tpi.values() if mark is RefMark.READ)
    epoch_writes: Dict[int, Dict[str, bool]] = {}
    for epoch in graph.epochs:
        key = epoch.write_key
        if key is None:
            continue
        info = infos[epoch.id]
        if not info.mod:
            continue
        entry = epoch_writes.setdefault(key, {})
        for array in info.mod:
            entry[array] = entry.get(array, False) or (array in info.racy_arrays)

    stats["epochs"] = len(graph.epochs)
    stats["epochs.parallel"] = len(graph.parallel_epochs)
    stats["sites.strict"] = len(strict_sites)
    return Marking(tpi=tpi, sc=sc, graph=graph, strict_sites=strict_sites,
                   epoch_writes=epoch_writes, stats=stats)
