"""Dependence tests between accesses of one parallel epoch.

Given a write W and a read R inside the same DOALL, the marking pass needs
to know whether a *different* iteration's W can touch the element R reads.
Symbols bound inside the epoch (the DOALL index, inner serial-loop indices,
weakened task-local scalars) are renamed apart between the two accesses —
each task has its own instances — while parameters and outer serial-loop
indices are shared.

Per dimension we then test the equation ``W_sub(vars1) - R_sub(vars2) = 0``
with three classic conservative tests:

* **Banerjee range test** — if 0 lies outside the interval of the LHS the
  dimension (hence the pair) is :data:`Relation.DISJOINT`;
* **GCD test** — if gcd of the variable coefficients does not divide the
  constant, also DISJOINT;
* **same-iteration forcing** — a dimension of the form ``a*(i1 - i2) = 0``
  with ``a != 0`` forces the two accesses into the same iteration, giving
  :data:`Relation.SAME_ITER_ONLY` (no cross-iteration conflict).

Anything else is :data:`Relation.MAY_CONFLICT`.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Set, Tuple

from repro.compiler.ranges import Interval, RangeEnv, interval_add, interval_scale
from repro.ir.expr import Affine


class Relation(enum.Enum):
    DISJOINT = "disjoint"  # no iteration pair touches a common element
    SAME_ITER_ONLY = "same_iter_only"  # common elements only within one task
    MAY_CONFLICT = "may_conflict"  # a cross-iteration conflict is possible


_SUFFIX_1 = "#1"
_SUFFIX_2 = "#2"


def _rename(expr: Affine, epoch_syms: Set[str], suffix: str) -> Affine:
    subst = {s: Affine.var(s + suffix) for s in expr.symbols if s in epoch_syms}
    return expr.substitute(subst) if subst else expr


def _interval_of(expr: Affine, env: RangeEnv, epoch_syms: Set[str]) -> Interval:
    """Interval of a renamed expression (renamed vars share the base range)."""
    result: Interval = (expr.const, expr.const)
    for symbol, coeff in expr.terms:
        base = symbol
        for suffix in (_SUFFIX_1, _SUFFIX_2):
            if symbol.endswith(suffix):
                base = symbol[: -len(suffix)]
                break
        result = interval_add(result, interval_scale(env.lookup(base), coeff))
    return result


def _dim_relation(w_sub: Affine, r_sub: Affine, doall_index: str,
                  epoch_syms: Set[str], env: RangeEnv) -> Relation:
    w = _rename(w_sub, epoch_syms, _SUFFIX_1)
    r = _rename(r_sub, epoch_syms, _SUFFIX_2)
    diff = w - r

    if diff.is_constant:
        return Relation.DISJOINT if diff.const != 0 else Relation.MAY_CONFLICT

    # Banerjee range test: can the difference be zero at all?
    lo, hi = _interval_of(diff, env, epoch_syms)
    if (lo is not None and lo > 0) or (hi is not None and hi < 0):
        return Relation.DISJOINT

    # GCD test.
    coeffs = [c for _, c in diff.terms]
    g = 0
    for c in coeffs:
        g = math.gcd(g, abs(c))
    if g and diff.const % g:
        return Relation.DISJOINT

    # Same-iteration forcing: diff == a*(i#1 - i#2), a != 0.
    i1, i2 = doall_index + _SUFFIX_1, doall_index + _SUFFIX_2
    terms = dict(diff.terms)
    if (diff.const == 0 and set(terms) == {i1, i2}
            and terms[i1] == -terms[i2] and terms[i1] != 0):
        return Relation.SAME_ITER_ONLY

    return Relation.MAY_CONFLICT


def doall_relation(w_subs: Tuple[Affine, ...], r_subs: Tuple[Affine, ...],
                   doall_index: str, epoch_syms: Iterable[str],
                   env: RangeEnv) -> Relation:
    """Relation between a write's and a read's subscripts inside one DOALL.

    Subscripts must already be scalar-resolved.  ``epoch_syms`` are the
    symbols private to a task (the DOALL index, inner loop indices, weakened
    task-local scalars); ``env`` provides intervals for every symbol.
    """
    syms = set(epoch_syms)
    syms.add(doall_index)
    saw_same_iter = False
    for w_sub, r_sub in zip(w_subs, r_subs):
        rel = _dim_relation(w_sub, r_sub, doall_index, syms, env)
        if rel is Relation.DISJOINT:
            return Relation.DISJOINT
        if rel is Relation.SAME_ITER_ONLY:
            saw_same_iter = True
    return Relation.SAME_ITER_ONLY if saw_same_iter else Relation.MAY_CONFLICT
