"""Epoch partitioning and the epoch flow graph (EFG).

The paper's execution model divides a parallelized program into *epochs*:
each DOALL loop is one parallel epoch; maximal stretches of serial code
between DOALLs form serial epochs (which execute on the master processor).
The compiler analyses run over the **epoch flow graph** [21]: nodes are
static epochs, edges are possible control-flow successions, including loop
back-edges, so that "a write in epoch e' may precede a read in epoch e"
becomes graph reachability.

Construction statically inlines procedure calls that contain DOALLs (the
call graph is acyclic), and keeps pure-serial calls as opaque nodes inside
their enclosing serial epoch.  Serial loops that contain DOALLs are *opened*:
they contribute an (empty) loop-header epoch, their body's epochs, and a
back-edge.  Scalar values are tracked across the walk with the GSA-lite
environment (:mod:`repro.compiler.ssa`), and every epoch records a snapshot
of the scalar/range environments at its entry for later per-epoch analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import CompilationError
from repro.compiler.ranges import RangeEnv
from repro.compiler.ssa import ScalarEnv
from repro.ir.expr import Affine
from repro.ir.program import (
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    walk,
)


def proc_contains_doall(program: Program, name: str,
                        memo: Optional[Dict[str, bool]] = None) -> bool:
    """Does a procedure (transitively) contain a DOALL loop?"""
    memo = memo if memo is not None else {}
    if name in memo:
        return memo[name]
    memo[name] = False
    result = False
    for node in walk(program.procedures[name].body):
        if isinstance(node, Loop) and node.parallel:
            result = True
            break
        if isinstance(node, Call) and proc_contains_doall(program, node.callee, memo):
            result = True
            break
    memo[name] = result
    return result


def node_contains_doall(program: Program, node: Node,
                        memo: Optional[Dict[str, bool]] = None) -> bool:
    """Does a single node (transitively) contain a DOALL loop?

    Used identically by the compiler's partitioner and the trace generator,
    so static epoch boundaries and dynamic epoch boundaries always agree.
    """
    memo = memo if memo is not None else {}
    if isinstance(node, Loop) and node.parallel:
        return True
    if isinstance(node, Call):
        return proc_contains_doall(program, node.callee, memo)
    if isinstance(node, (Loop, CriticalSection)):
        return any(node_contains_doall(program, n, memo) for n in node.body)
    if isinstance(node, If):
        return any(node_contains_doall(program, n, memo)
                   for n in (*node.then, *node.els))
    return False


@dataclass(frozen=True)
class LoopCtx:
    """An *opened* serial loop enclosing an epoch (bounds already resolved)."""

    index: str
    lo: Affine
    hi: Affine
    step: int


@dataclass
class StaticEpoch:
    """A node of the epoch flow graph.

    For a parallel epoch ``nodes`` is the single DOALL loop; for a serial
    epoch it is the run of serial nodes it comprises (possibly empty for
    loop-header join points).  ``scalars``/``ranges`` snapshot the symbolic
    environment at epoch entry.
    """

    id: int
    parallel: bool
    nodes: Tuple[Node, ...]
    outer: Tuple[LoopCtx, ...]
    scalars: ScalarEnv
    ranges: RangeEnv
    origin_proc: str
    label: str = ""

    @property
    def doall(self) -> Optional[Loop]:
        return self.nodes[0] if self.parallel else None  # type: ignore[return-value]

    @property
    def write_key(self) -> Optional[int]:
        """Identity key linking this static epoch to its dynamic instances.

        The trace generator computes the same key (the identity of the
        epoch's first node) for every dynamic epoch, so the runtime can
        apply the compiler-emitted per-epoch W-register updates.  Inlined
        procedure bodies share node objects across call sites, which is
        harmless: the static epochs then have identical write sets.
        """
        return id(self.nodes[0]) if self.nodes else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "P" if self.parallel else "S"
        return f"<epoch {self.id}{kind} {self.label or self.origin_proc}>"


class EpochGraph:
    """Static epochs plus successor edges; supports may-precede queries
    and minimum epoch-distance queries (for Time-Read windows)."""

    def __init__(self) -> None:
        self.epochs: List[StaticEpoch] = []
        self.succ: Dict[int, Set[int]] = {}
        self.entry: Optional[int] = None
        self._closure: Optional[Dict[int, Set[int]]] = None
        self._dist: Dict[int, Dict[int, int]] = {}

    def add_epoch(self, epoch: StaticEpoch) -> None:
        self.epochs.append(epoch)
        self.succ.setdefault(epoch.id, set())
        self._closure = None
        self._dist = {}

    def add_edge(self, src: int, dst: int) -> None:
        self.succ.setdefault(src, set()).add(dst)
        self._closure = None
        self._dist = {}

    def reach(self, src: int, dst: int) -> bool:
        """May an execution of ``src`` strictly precede one of ``dst``?

        Reachability through at least one edge; ``reach(e, e)`` is true iff
        ``e`` lies on a cycle (a loop re-executes it).
        """
        if self._closure is None:
            self._closure = self._compute_closure()
        return dst in self._closure.get(src, set())

    def _compute_closure(self) -> Dict[int, Set[int]]:
        closure: Dict[int, Set[int]] = {}
        order = sorted(self.succ)
        for start in order:
            seen: Set[int] = set()
            stack = list(self.succ[start])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.succ.get(node, ()))
            closure[start] = seen
        return closure

    def _is_header(self, epoch_id: int) -> bool:
        epoch = self.epochs[epoch_id]
        return not epoch.parallel and not epoch.nodes

    def distance(self, src: int, dst: int) -> Optional[int]:
        """Minimum number of epoch boundaries crossed getting from ``src``
        to ``dst`` (``None`` if unreachable).

        Loop-header epochs (empty serial join points) are structural only —
        the runtime never enters them, so they cost 0; every other epoch
        entered on the path, including ``dst`` itself, costs 1.  This is a
        *lower bound* on the dynamic epoch-counter difference between an
        execution of ``src`` and a later execution of ``dst``, which is what
        makes it a safe Time-Read window.  ``distance(e, e)`` is the
        shortest cycle through ``e`` (None if not on a cycle).
        """
        if src not in self._dist:
            self._dist[src] = self._zero_one_bfs(src)
        return self._dist[src].get(dst)

    def _zero_one_bfs(self, src: int) -> Dict[int, int]:
        from collections import deque

        best: Dict[int, int] = {}
        queue = deque()
        for succ in self.succ.get(src, ()):
            cost = 0 if self._is_header(succ) else 1
            queue.append((cost, succ))
        while queue:
            cost, node = queue.popleft()
            if node in best and best[node] <= cost:
                continue
            best[node] = cost
            for succ in self.succ.get(node, ()):
                step = 0 if self._is_header(succ) else 1
                nxt = cost + step
                if succ not in best or best[succ] > nxt:
                    if step == 0:
                        queue.appendleft((nxt, succ))
                    else:
                        queue.append((nxt, succ))
        return best

    @property
    def parallel_epochs(self) -> List[StaticEpoch]:
        return [e for e in self.epochs if e.parallel]


class _Partitioner:
    """Single walk over the (inlined) program producing the EFG."""

    def __init__(self, program: Program, param_env: Dict[str, int]):
        self.program = program
        self.graph = EpochGraph()
        self.scalars = ScalarEnv()
        self.ranges = RangeEnv.from_params(param_env)
        self.buffer: List[Node] = []
        self.buffer_snapshot: Optional[Tuple[ScalarEnv, Dict]] = None
        self.last: Set[int] = set()
        self.outer: List[LoopCtx] = []
        self.proc_stack: List[str] = []
        self._doall_memo: Dict[str, bool] = {}

    # ------------------------------------------------------------- driving

    def run(self) -> EpochGraph:
        self.proc_stack.append(self.program.entry)
        self._body(self.program.procedures[self.program.entry].body)
        self._flush()
        if not self.graph.epochs:
            self._new_epoch(parallel=False, nodes=(), label="empty program")
        return self.graph

    def _body(self, nodes: Tuple[Node, ...]) -> None:
        for node in nodes:
            self._node(node)

    def _node(self, node: Node) -> None:
        if isinstance(node, Loop) and node.parallel:
            self._parallel_epoch(node)
        elif isinstance(node, Loop) and node_contains_doall(self.program, node,
                                                            self._doall_memo):
            self._opened_loop(node)
        elif isinstance(node, If) and node_contains_doall(self.program, node,
                                                          self._doall_memo):
            self._opened_if(node)
        elif isinstance(node, Call) and proc_contains_doall(self.program, node.callee,
                                                            self._doall_memo):
            self._flush()
            self.proc_stack.append(node.callee)
            self._body(self.program.procedures[node.callee].body)
            self.proc_stack.pop()
        else:
            self._buffer_node(node)

    # ------------------------------------------------------- serial buffer

    def _buffer_node(self, node: Node) -> None:
        if not self.buffer:
            self.buffer_snapshot = (self.scalars.copy(), self._flat_ranges())
        self.buffer.append(node)
        self._apply_effects(node)

    def _flush(self) -> None:
        if not self.buffer:
            return
        scalars, ranges = self.buffer_snapshot  # type: ignore[misc]
        self._new_epoch(parallel=False, nodes=tuple(self.buffer),
                        scalars=scalars, ranges=ranges,
                        label=f"serial@{self.proc_stack[-1]}")
        self.buffer = []
        self.buffer_snapshot = None

    # ------------------------------------------------------------ regions

    def _parallel_epoch(self, loop: Loop) -> None:
        self._flush()
        self._new_epoch(parallel=True, nodes=(loop,),
                        label=loop.label or f"doall {loop.index}@{self.proc_stack[-1]}")
        # Scalars assigned inside the DOALL body are task-local temporaries;
        # after the epoch their (master-visible) values are unknown.
        trips = self.ranges.max_trip_count(self.scalars.resolve(loop.lo),
                                           self.scalars.resolve(loop.hi), loop.step)
        self.scalars.weaken_loop_body(loop.body, trips, self.ranges)

    def _opened_loop(self, loop: Loop) -> None:
        self._flush()
        head = self._new_epoch(parallel=False, nodes=(),
                               label=f"head {loop.index}@{self.proc_stack[-1]}")
        lo = self.scalars.resolve(loop.lo)
        hi = self.scalars.resolve(loop.hi)
        trips = self.ranges.max_trip_count(lo, hi, loop.step)
        self.ranges = self.ranges.child()
        self.ranges.bind(loop.index, self.ranges.loop_range(lo, hi, loop.step))
        self.scalars.weaken_loop_body(loop.body, trips, self.ranges)
        self.outer.append(LoopCtx(loop.index, lo, hi, loop.step))
        self._body(loop.body)
        self._flush()
        for src in self.last:
            self.graph.add_edge(src, head.id)  # back edge
        self.outer.pop()
        self.ranges = self.ranges.parent  # type: ignore[assignment]
        self.last = {head.id}

    def _opened_if(self, node: If) -> None:
        self._flush()
        fork = set(self.last)
        saved_scalars = self.scalars.copy()

        self.ranges = self.ranges.child()
        self._body(node.then)
        self._flush()
        then_last = set(self.last)
        then_scalars, self.scalars = self.scalars, saved_scalars.copy()
        then_ranges = self.ranges
        self.ranges = then_ranges.parent.child()  # type: ignore[union-attr]

        self.last = set(fork)
        self._body(node.els)
        self._flush()
        else_last = set(self.last)
        else_scalars = self.scalars
        else_ranges = self.ranges
        self.ranges = else_ranges.parent  # type: ignore[assignment]

        merged = saved_scalars.copy()
        merged.merge_branches(then_scalars, else_scalars,
                              then_ranges, else_ranges, self.ranges)
        self.scalars = merged
        self.last = (then_last or fork) | (else_last or fork)

    # ------------------------------------------------------------- helpers

    def _new_epoch(self, parallel: bool, nodes: Tuple[Node, ...],
                   scalars: Optional[ScalarEnv] = None,
                   ranges: Optional[Dict] = None, label: str = "") -> StaticEpoch:
        snapshot_scalars = scalars if scalars is not None else self.scalars.copy()
        snapshot_ranges = ranges if ranges is not None else self._flat_ranges()
        epoch = StaticEpoch(
            id=len(self.graph.epochs), parallel=parallel, nodes=nodes,
            outer=tuple(self.outer), scalars=snapshot_scalars,
            ranges=RangeEnv(snapshot_ranges),
            origin_proc=self.proc_stack[-1], label=label)
        self.graph.add_epoch(epoch)
        for src in self.last:
            self.graph.add_edge(src, epoch.id)
        if self.graph.entry is None:
            self.graph.entry = epoch.id
        self.last = {epoch.id}
        return epoch

    def _flat_ranges(self) -> Dict:
        flat: Dict = {}
        chain = []
        env: Optional[RangeEnv] = self.ranges
        while env is not None:
            chain.append(env)
            env = env.parent
        for env in reversed(chain):
            flat.update(env.bindings)
        return flat

    def _apply_effects(self, node: Node) -> None:
        """Propagate scalar effects of a node buffered into a serial epoch."""
        if isinstance(node, ScalarAssign):
            self.scalars.assign(node, self.ranges)
        elif isinstance(node, Loop):
            lo = self.scalars.resolve(node.lo)
            hi = self.scalars.resolve(node.hi)
            trips = self.ranges.max_trip_count(lo, hi, node.step)
            self.scalars.weaken_loop_body(node.body, trips, self.ranges)
        elif isinstance(node, If):
            saved = self.scalars.copy()
            then_ranges = self.ranges.child()
            then_env = saved.copy()
            _apply_branch(self, then_env, then_ranges, node.then)
            else_ranges = self.ranges.child()
            else_env = saved.copy()
            _apply_branch(self, else_env, else_ranges, node.els)
            merged = saved.copy()
            merged.merge_branches(then_env, else_env, then_ranges, else_ranges,
                                  self.ranges)
            self.scalars = merged
        elif isinstance(node, CriticalSection):
            for inner in node.body:
                self._apply_effects(inner)
        elif isinstance(node, Call):
            self.proc_stack.append(node.callee)
            for inner in self.program.procedures[node.callee].body:
                self._apply_effects(inner)
            self.proc_stack.pop()
        # Statements have no scalar effects.


def _apply_branch(part: _Partitioner, env: ScalarEnv, ranges: RangeEnv,
                  nodes: Tuple[Node, ...]) -> None:
    """Apply scalar effects of a branch body into the given environments."""
    saved_scalars, saved_ranges = part.scalars, part.ranges
    part.scalars, part.ranges = env, ranges
    try:
        for node in nodes:
            part._apply_effects(node)
    finally:
        part.scalars, part.ranges = saved_scalars, saved_ranges


def build_epoch_graph(program: Program,
                      params: Optional[Dict[str, int]] = None) -> EpochGraph:
    """Partition a program into static epochs and build its EFG."""
    env = program.bind_params(params)
    graph = _Partitioner(program, env).run()
    if graph.entry is None:  # pragma: no cover - run() guarantees an epoch
        raise CompilationError(
            f"epoch graph of {program.name!r} has no entry (entry "
            f"procedure {program.entry!r} produced no epochs)")
    return graph
