"""Procedure call graph and bottom-up traversal order.

The paper's interprocedural analysis scans the call graph bottom-up,
propagating each procedure's side effects to its callers.  The validator has
already rejected recursion, so a reverse topological order always exists.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.common.errors import CompilationError
from repro.ir.program import Call, Program, walk


def call_edges(program: Program) -> Dict[str, Set[str]]:
    """Caller -> set of callees, for every defined procedure."""
    edges: Dict[str, Set[str]] = {name: set() for name in program.procedures}
    for name, proc in program.procedures.items():
        for node in walk(proc.body):
            if isinstance(node, Call):
                edges[name].add(node.callee)
    return edges


def bottom_up_order(program: Program) -> List[str]:
    """Procedures ordered so every callee precedes its callers."""
    edges = call_edges(program)
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(name: str) -> None:
        if state.get(name) == 1:
            return
        if state.get(name) == 0:
            raise CompilationError(f"recursion detected at procedure {name!r}")
        state[name] = 0
        for callee in sorted(edges[name]):
            visit(callee)
        state[name] = 1
        order.append(name)

    for name in sorted(program.procedures):
        visit(name)
    return order


def callers_of(program: Program) -> Dict[str, Set[str]]:
    """Callee -> set of callers (inverse call graph)."""
    inverse: Dict[str, Set[str]] = {name: set() for name in program.procedures}
    for caller, callees in call_edges(program).items():
        for callee in callees:
            inverse[callee].add(caller)
    return inverse
