"""Bounded regular section descriptors.

A :class:`RegularSection` summarizes the set of elements an array reference
touches across a loop nest as one ``lo:hi:stride`` triplet per dimension,
clamped to the array extents.  Sections are the currency of the paper's
intra- and interprocedural array data-flow analysis: the marking pass asks
"may this read's section overlap that write's section?".

All operations are conservative: when in doubt they answer "overlaps".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.compiler.ranges import RangeEnv
from repro.ir.expr import Affine
from repro.ir.program import Array, ArrayRef


@dataclass(frozen=True)
class DimSection:
    """One dimension of a regular section: ``{lo + k*stride | lo+k*stride <= hi}``."""

    lo: int
    hi: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ValueError("stride must be positive")

    @property
    def empty(self) -> bool:
        return self.hi < self.lo

    def overlaps(self, other: "DimSection") -> bool:
        """May the two arithmetic progressions share a point? Conservative."""
        if self.empty or other.empty:
            return False
        if self.hi < other.lo or other.hi < self.lo:
            return False
        # Arithmetic progressions lo1 + k*s1 and lo2 + m*s2 intersect only if
        # (lo1 - lo2) is divisible by gcd(s1, s2).  (Necessary condition; we
        # don't check that the intersection point lies inside both windows,
        # which keeps the test conservative.)
        g = math.gcd(self.stride, other.stride)
        return (self.lo - other.lo) % g == 0

    def union(self, other: "DimSection") -> "DimSection":
        """Bounding section of the two (stride falls back to gcd)."""
        if self.empty:
            return other
        if other.empty:
            return self
        g = math.gcd(self.stride, other.stride)
        if (self.lo - other.lo) % g:
            g = 1  # offsets incompatible: widen to dense
        return DimSection(min(self.lo, other.lo), max(self.hi, other.hi), g)

    def contains(self, other: "DimSection") -> bool:
        """Definitely-contains (used only for summary compaction)."""
        if other.empty:
            return True
        if self.empty:
            return False
        return (self.lo <= other.lo and other.hi <= self.hi
                and other.stride % self.stride == 0
                and (other.lo - self.lo) % self.stride == 0)


@dataclass(frozen=True)
class RegularSection:
    """A rectangular array region: one :class:`DimSection` per dimension."""

    array: str
    dims: Tuple[DimSection, ...]

    @property
    def empty(self) -> bool:
        return any(d.empty for d in self.dims)

    def overlaps(self, other: "RegularSection") -> bool:
        if self.array != other.array:
            return False
        return all(a.overlaps(b) for a, b in zip(self.dims, other.dims))

    def union(self, other: "RegularSection") -> "RegularSection":
        if self.array != other.array:
            raise ValueError("cannot union sections of different arrays")
        return RegularSection(
            self.array, tuple(a.union(b) for a, b in zip(self.dims, other.dims)))

    def contains(self, other: "RegularSection") -> bool:
        return (self.array == other.array
                and all(a.contains(b) for a, b in zip(self.dims, other.dims)))

    def __str__(self) -> str:
        dims = ", ".join(
            f"{d.lo}:{d.hi}" + (f":{d.stride}" if d.stride != 1 else "")
            for d in self.dims)
        return f"{self.array}[{dims}]"


def whole_array_section(array: Array) -> RegularSection:
    return RegularSection(
        array.name, tuple(DimSection(0, extent - 1, 1) for extent in array.shape))


def _dim_stride(sub: Affine, env: RangeEnv) -> int:
    """Stride of a subscript: |coefficient| of its single varying symbol.

    A symbol is *varying* if its interval is not a single point.  Multiple
    varying symbols (coupled subscripts) fall back to dense stride 1.
    """
    varying = []
    for symbol, coeff in sub.terms:
        lo, hi = env.lookup(symbol)
        if lo is None or hi is None or lo != hi:
            varying.append(coeff)
    if len(varying) == 1:
        return abs(varying[0])
    return 1


def section_of(ref: ArrayRef, array: Array, env: RangeEnv) -> RegularSection:
    """The regular section a reference touches under an index environment.

    Unbounded subscript ranges (widened scalars) are clamped to the array
    extent, i.e. the section conservatively covers the whole dimension.
    """
    dims = []
    for sub, extent in zip(ref.subscripts, array.shape):
        lo, hi = env.range_of(sub)
        lo = 0 if lo is None else max(0, min(lo, extent - 1))
        hi = extent - 1 if hi is None else max(0, min(hi, extent - 1))
        dims.append(DimSection(lo, hi, _dim_stride(sub, env)))
    return RegularSection(array.name, tuple(dims))


class SectionList:
    """A bounded union of sections of one array.

    Keeps at most ``cap`` sections; beyond that, new sections are merged into
    the closest existing one (by bounding-box union), preserving soundness at
    the cost of precision — this is the "bounded" in bounded regular sections.
    """

    def __init__(self, array: str, cap: int = 8):
        self.array = array
        self.cap = cap
        self.sections: list = []

    def add(self, section: RegularSection) -> None:
        if section.empty:
            return
        for i, existing in enumerate(self.sections):
            if existing.contains(section):
                return
            if section.contains(existing):
                self.sections[i] = section
                return
        if len(self.sections) < self.cap:
            self.sections.append(section)
        else:
            self.sections[-1] = self.sections[-1].union(section)

    def overlaps(self, section: RegularSection) -> bool:
        return any(s.overlaps(section) for s in self.sections)

    def union_all(self) -> Optional[RegularSection]:
        if not self.sections:
            return None
        result = self.sections[0]
        for s in self.sections[1:]:
            result = result.union(s)
        return result
