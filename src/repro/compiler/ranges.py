"""Symbolic range analysis of affine expressions.

A :class:`RangeEnv` maps symbols (parameters, loop indices, weakened
scalars) to inclusive integer intervals; :meth:`RangeEnv.range_of` computes
the interval of an affine expression by interval arithmetic.  ``None``
bounds denote unbounded directions (the result of widening an
unanalyzable scalar); section construction clamps them to array extents.

This is the demand-driven symbolic analysis layer the paper performs on the
GSA form [4]; see ``repro.compiler.ssa`` for the scalar-resolution part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.ir.expr import Affine

Bound = Optional[int]  # None = unbounded in that direction
Interval = Tuple[Bound, Bound]  # inclusive (lo, hi)


def interval_add(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else a[0] + b[0]
    hi = None if a[1] is None or b[1] is None else a[1] + b[1]
    return (lo, hi)


def interval_scale(a: Interval, k: int) -> Interval:
    if k == 0:
        return (0, 0)
    lo, hi = a
    if k < 0:
        lo, hi = hi, lo
    return (None if lo is None else lo * k, None if hi is None else hi * k)


def interval_union(a: Interval, b: Interval) -> Interval:
    lo = None if a[0] is None or b[0] is None else min(a[0], b[0])
    hi = None if a[1] is None or b[1] is None else max(a[1], b[1])
    return (lo, hi)


def intervals_overlap(a: Interval, b: Interval) -> bool:
    """Conservative: unbounded directions always overlap."""
    a_lo, a_hi = a
    b_lo, b_hi = b
    if a_hi is not None and b_lo is not None and a_hi < b_lo:
        return False
    if b_hi is not None and a_lo is not None and b_hi < a_lo:
        return False
    return True


@dataclass
class RangeEnv:
    """A chainable symbol -> interval environment."""

    bindings: Dict[str, Interval]
    parent: Optional["RangeEnv"] = None

    @staticmethod
    def from_params(params: Dict[str, int]) -> "RangeEnv":
        return RangeEnv({name: (value, value) for name, value in params.items()})

    def child(self, **bindings: Interval) -> "RangeEnv":
        return RangeEnv(dict(bindings), parent=self)

    def bind(self, symbol: str, interval: Interval) -> None:
        self.bindings[symbol] = interval

    def lookup(self, symbol: str) -> Interval:
        env: Optional[RangeEnv] = self
        while env is not None:
            if symbol in env.bindings:
                return env.bindings[symbol]
            env = env.parent
        return (None, None)  # unknown symbol: unbounded (conservative)

    def range_of(self, expr: Affine) -> Interval:
        """Interval of ``expr`` under this environment."""
        result: Interval = (expr.const, expr.const)
        for symbol, coeff in expr.terms:
            result = interval_add(result, interval_scale(self.lookup(symbol), coeff))
        return result

    def loop_range(self, lo: Affine, hi: Affine, step: int) -> Interval:
        """Interval of a loop index given its (affine) bounds and step.

        The interval covers every value the index can take for any value of
        the bound symbols; empty loops yield an empty-ish degenerate interval
        which callers treat as "no iterations".
        """
        lo_iv = self.range_of(lo)
        hi_iv = self.range_of(hi)
        if step > 0:
            return (lo_iv[0], hi_iv[1])
        return (hi_iv[0], lo_iv[1])

    def max_trip_count(self, lo: Affine, hi: Affine, step: int) -> Optional[int]:
        """An upper bound on the trip count, or None if unbounded."""
        lo_iv = self.range_of(lo)
        hi_iv = self.range_of(hi)
        if step > 0:
            if lo_iv[0] is None or hi_iv[1] is None:
                return None
            span = hi_iv[1] - lo_iv[0]
        else:
            if hi_iv[0] is None or lo_iv[1] is None:
                return None
            span = lo_iv[1] - hi_iv[0]
        if span < 0:
            return 0
        return span // abs(step) + 1
