"""IR interpreter: executes a program and produces its memory-event trace.

The generator walks the program with concrete parameter bindings and emits
a dynamic epoch **exactly where the compiler's partitioner placed a static
epoch on the taken path**.  This agreement is a correctness requirement of
the Time-Read windows: the compiler guarantees "no conflicting write within
the last D-1 epoch-counter increments" using *static* shortest-path
distances on the EFG, so the runtime must increment the counter once per
static epoch entered — no more (which would only cost performance) and no
fewer (which would be unsafe).  Concretely:

* every DOALL is one (parallel) epoch, even with zero iterations;
* a maximal run of serial nodes between split points is one serial epoch,
  even if it generates no memory events (e.g. scalar assignments only);
* split points are: DOALL loops, serial loops containing DOALLs, If nodes
  containing DOALLs, and calls to procedures containing DOALLs — the same
  predicate (:func:`repro.compiler.epochs.node_contains_doall`) the
  partitioner uses;
* loop-header epochs are structural (the partitioner's empty join nodes);
  they cost 0 in the static distance metric and are not emitted here.

Scalars are evaluated exactly; subscripts are bounds-checked against array
shapes; DOALL iterations are scheduled by the machine's policy and can be
split mid-task by a :class:`MigrationSpec` for the Section-5 experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.columnar import ColumnarTrace, TaskColumns

from repro.common.config import MachineConfig
from repro.common.errors import SimulationError
from repro.compiler.epochs import node_contains_doall, proc_contains_doall
from repro.ir.program import (
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Sharing,
    Statement,
)
from repro.trace.events import EventKind, MemEvent, Task, Trace, TraceEpoch
from repro.trace.layout import MemoryLayout
from repro.trace.schedule import MigrationSpec, schedule_iterations


class _Generator:
    def __init__(self, program: Program, machine: MachineConfig,
                 params: Optional[Dict[str, int]],
                 migration: MigrationSpec):
        self.program = program
        self.machine = machine
        self.migration = migration
        self.env: Dict[str, int] = program.bind_params(params)
        # Fixed-alignment layout: the trace must not depend on back-end
        # cache geometry, so one generation serves a whole line-size sweep.
        self.layout = MemoryLayout(program, machine.n_procs)
        self.trace = Trace(program_name=program.name, n_procs=machine.n_procs,
                           layout=self.layout)
        self.serial_events: List[MemEvent] = []
        self.serial_nodes_pending = False
        self.serial_first_node_id: Optional[int] = None
        self.pending_work = 0
        self.lock_ids: Dict[str, int] = {}
        self.iteration_counter = 0  # global, drives migration injection
        self._doall_memo: Dict[str, bool] = {}

    # ------------------------------------------------------------- driving

    def run(self) -> Trace:
        self._body(self.program.procedures[self.program.entry].body,
                   proc=0, out=None, in_critical=False, serial=True)
        self._flush_serial()
        return self.trace

    def _body(self, nodes, proc: int, out: Optional[List[MemEvent]],
              in_critical: bool, serial: bool) -> None:
        # ``out is None`` means "the master's current serial epoch buffer",
        # which _flush_serial may swap out between nodes.
        for node in nodes:
            self._node(node, proc, out, in_critical, serial)

    def _sink(self, out: Optional[List[MemEvent]]) -> List[MemEvent]:
        return self.serial_events if out is None else out

    def _node(self, node: Node, proc: int, out: Optional[List[MemEvent]],
              in_critical: bool, serial: bool) -> None:
        if serial:
            self._mark_pending_if_serial_node(node)
        if isinstance(node, Statement):
            self._statement(node, proc, out, in_critical)
        elif isinstance(node, ScalarAssign):
            self.env[node.name] = node.expr.evaluate(self.env)
        elif isinstance(node, Loop):
            if node.parallel:
                if not serial:
                    raise SimulationError("nested DOALL reached the generator")
                self._doall(node)
            elif serial and node_contains_doall(self.program, node,
                                                self._doall_memo):
                self._opened_loop(node)
            else:
                self._serial_loop(node, proc, out, in_critical, serial)
        elif isinstance(node, If):
            if serial and node_contains_doall(self.program, node,
                                              self._doall_memo):
                self._opened_if(node)
                return
            branch = node.then if node.cond.evaluate(self.env) else node.els
            self._body(branch, proc, out, in_critical, serial)
        elif isinstance(node, CriticalSection):
            lock = self.lock_ids.setdefault(node.lock, len(self.lock_ids))
            self._sink(out).append(MemEvent(EventKind.LOCK, 0, -1,
                                            self._take_work(), shared=False,
                                            lock=lock))
            self._body(node.body, proc, out, True, serial)
            self._sink(out).append(MemEvent(EventKind.UNLOCK, 0, -1,
                                            self._take_work(), shared=False,
                                            lock=lock))
        elif isinstance(node, Call):
            if serial and proc_contains_doall(self.program, node.callee,
                                              self._doall_memo):
                self._flush_serial()
            self._body(self.program.procedures[node.callee].body,
                       proc, out, in_critical, serial)
        else:  # pragma: no cover - closed union
            raise SimulationError(f"unknown node {type(node).__name__}")

    def _mark_pending_if_serial_node(self, node: Node) -> None:
        """Nodes the partitioner would buffer open a serial epoch."""
        if isinstance(node, (Loop, If, Call)):
            if node_contains_doall(self.program, node, self._doall_memo):
                return  # a split point, not a buffered node
        if not self.serial_nodes_pending:
            self.serial_first_node_id = id(node)
        self.serial_nodes_pending = True

    def _opened_loop(self, loop: Loop) -> None:
        """A serial loop containing DOALLs: epoch boundary at entry; the
        (contracted) loop-header epoch itself is never emitted."""
        self._flush_serial()
        lo = loop.lo.evaluate(self.env)
        hi = loop.hi.evaluate(self.env)
        values = range(lo, hi + (1 if loop.step > 0 else -1), loop.step)
        for value in values:
            self.env[loop.index] = value
            self._body(loop.body, 0, None, False, True)
            self._flush_serial()  # back edge: close the iteration's tail
        self.env.pop(loop.index, None)

    def _opened_if(self, node: If) -> None:
        """An If containing DOALLs: boundary before, and after the branch."""
        self._flush_serial()
        branch = node.then if node.cond.evaluate(self.env) else node.els
        self._body(branch, 0, None, False, True)
        self._flush_serial()

    def _serial_loop(self, loop: Loop, proc: int, out: List[MemEvent],
                     in_critical: bool, serial: bool) -> None:
        lo = loop.lo.evaluate(self.env)
        hi = loop.hi.evaluate(self.env)
        values = range(lo, hi + (1 if loop.step > 0 else -1), loop.step)
        for value in values:
            self.env[loop.index] = value
            self._body(loop.body, proc, out, in_critical, serial)
        self.env.pop(loop.index, None)

    # -------------------------------------------------------------- epochs

    def _flush_serial(self) -> None:
        """Close the current serial epoch if the partitioner opened one.

        Emitted even when it produced no memory events (the static epoch
        exists, so the runtime must count the boundary for the Time-Read
        window distances to stay sound).
        """
        if not self.serial_nodes_pending:
            return
        task = Task(proc=0, events=self.serial_events,
                    extra_work=self._take_work())
        epoch = TraceEpoch(index=len(self.trace.epochs), parallel=False,
                           tasks=[task], label="serial", n_tasks_scheduled=1,
                           write_key=self.serial_first_node_id)
        self.trace.epochs.append(epoch)
        self.serial_events = []
        self.serial_nodes_pending = False
        self.serial_first_node_id = None

    def _doall(self, loop: Loop) -> None:
        self._flush_serial()
        lo = loop.lo.evaluate(self.env)
        hi = loop.hi.evaluate(self.env)
        values = list(range(lo, hi + (1 if loop.step > 0 else -1), loop.step))
        assignments = schedule_iterations(values, self.machine.n_procs,
                                          self.machine.schedule)
        tasks: Dict[int, Task] = {}
        env_backup = dict(self.env)
        n_scheduled = 0
        for proc, iterations in assignments:
            for value in iterations:
                n_scheduled += 1
                self.env[loop.index] = value
                events: List[MemEvent] = []
                self._body(loop.body, proc, events, False, serial=False)
                self._place_task_events(events, proc, tasks)
                self.iteration_counter += 1
        self.env = env_backup
        if self.pending_work:
            # Work accumulated with no trailing access: charge the master.
            tasks.setdefault(0, Task(proc=0)).extra_work += self._take_work()
        epoch = TraceEpoch(index=len(self.trace.epochs), parallel=True,
                           tasks=[tasks[p] for p in sorted(tasks)],
                           label=loop.label or f"doall {loop.index}",
                           n_tasks_scheduled=n_scheduled,
                           write_key=id(loop))
        self.trace.epochs.append(epoch)

    def _place_task_events(self, events: List[MemEvent], proc: int,
                           tasks: Dict[int, Task]) -> None:
        """Append one iteration's events, splitting mid-task on migration.

        The split point must not separate a LOCK from its UNLOCK: a task
        cannot migrate while holding a lock (the runtime would have to
        carry lock ownership across processors).  The split lands at the
        lock-depth-zero point nearest the middle; a task that is inside a
        critical section throughout simply does not migrate.
        """
        split = 0
        if self.migration.migrates(self.iteration_counter) and len(events) > 1:
            split = self._lock_safe_split(events)
        if split:
            target = (proc + 1) % self.machine.n_procs
            tasks.setdefault(proc, Task(proc=proc)).events.extend(events[:split])
            tasks.setdefault(target, Task(proc=target)).events.extend(events[split:])
        else:
            tasks.setdefault(proc, Task(proc=proc)).events.extend(events)

    @staticmethod
    def _lock_safe_split(events: List[MemEvent]) -> int:
        """Index nearest the midpoint where no lock is held (0 = don't split)."""
        depth = 0
        candidates = []
        for idx, event in enumerate(events):
            if idx > 0 and depth == 0:
                candidates.append(idx)
            if event.kind is EventKind.LOCK:
                depth += 1
            elif event.kind is EventKind.UNLOCK:
                depth -= 1
        if not candidates:
            return 0
        mid = (len(events) + 1) // 2
        return min(candidates, key=lambda idx: abs(idx - mid))

    # ------------------------------------------------------------ leaves

    def _take_work(self) -> int:
        work, self.pending_work = self.pending_work, 0
        return work

    def _statement(self, stmt: Statement, proc: int,
                   out: Optional[List[MemEvent]],
                   in_critical: bool) -> None:
        self.pending_work += stmt.work
        sink = self._sink(out)
        for ref in stmt.reads:
            self._emit_ref(EventKind.READ, ref, proc, in_critical, sink)
        for ref in stmt.writes:
            self._emit_ref(EventKind.WRITE, ref, proc, in_critical, sink)

    def _emit_ref(self, kind: EventKind, ref, proc: int, in_critical: bool,
                  sink: List[MemEvent]) -> None:
        """One event per word of the access unit (element_words >= 1),
        every word carrying the reference's site marking."""
        array = self.program.arrays[ref.array]
        indices = tuple(sub.evaluate(self.env) for sub in ref.subscripts)
        addr = self.layout.addr_of(ref.array, indices, proc)
        # Under task migration, "private" per-processor storage is accessed
        # by whichever processor the task fragment lands on, so it must go
        # through the coherence machinery like shared data.
        shared = (array.sharing is Sharing.SHARED or self.migration.enabled)
        for offset in range(array.element_words):
            sink.append(MemEvent(kind, addr + offset, ref.site,
                                 self._take_work(), shared=shared,
                                 in_critical=in_critical))


class _ColumnarGenerator(_Generator):
    """The interpreter with vectorized DOALL expansion layered on top.

    Affine DOALL bodies (the common case — see :mod:`repro.trace.
    vectorize`) are evaluated once symbolically and expanded over the
    whole iteration space with numpy broadcasting, producing per-task
    columns directly; everything else — serial epochs, migration runs,
    and any body the extractor rejects — takes the inherited
    per-iteration path, byte-for-byte.  ``run`` returns the whole trace
    in columnar form.
    """

    def __init__(self, program: Program, machine: MachineConfig,
                 params: Optional[Dict[str, int]],
                 migration: MigrationSpec):
        super().__init__(program, machine, params, migration)
        from repro.trace.vectorize import TemplateCache
        self._expanded: Dict[int, List["TaskColumns"]] = {}
        self._templates = TemplateCache()
        self.n_expanded_epochs = 0

    def _doall(self, loop) -> None:
        from repro.trace.vectorize import expand_epoch
        if self.migration.enabled:
            # Mid-task splits depend on the global iteration counter;
            # the interpreter's event-level walk handles them.
            return super()._doall(loop)
        template = self._templates.get(self.program, loop, self.env)
        if template is None:
            return super()._doall(loop)
        self._flush_serial()
        lo = loop.lo.evaluate(self.env)
        hi = loop.hi.evaluate(self.env)
        values = list(range(lo, hi + (1 if loop.step > 0 else -1), loop.step))
        assignments = schedule_iterations(values, self.machine.n_procs,
                                          self.machine.schedule)
        columns = expand_epoch(template, values, assignments, self.layout)
        if columns is None:
            # A subscript leaves its array for some iteration; re-run the
            # interpreter so the error (first faulting iteration) matches.
            return super()._doall(loop)
        index = len(self.trace.epochs)
        self.trace.epochs.append(TraceEpoch(
            index=index, parallel=True, tasks=[],
            label=loop.label or f"doall {loop.index}",
            n_tasks_scheduled=len(values), write_key=id(loop)))
        self._expanded[index] = columns
        self.iteration_counter += len(values)
        self.n_expanded_epochs += 1

    def run(self) -> "ColumnarTrace":  # type: ignore[override]
        from repro.trace.columnar import ColumnarTrace
        trace = super().run()
        columnar = ColumnarTrace.from_trace(trace, self._expanded)
        columnar.n_expanded_epochs = self.n_expanded_epochs
        return columnar


def generate_trace(program: Program, machine: MachineConfig,
                   params: Optional[Dict[str, int]] = None,
                   migration: Optional[MigrationSpec] = None) -> Trace:
    """Execute ``program`` and return its memory-event trace."""
    return _Generator(program, machine, params,
                      migration or MigrationSpec()).run()


def generate_columnar(program: Program, machine: MachineConfig,
                      params: Optional[Dict[str, int]] = None,
                      migration: Optional[MigrationSpec] = None):
    """Execute ``program`` and return its trace in columnar form.

    Equivalent to ``ColumnarTrace.from_trace(generate_trace(...))`` —
    the round-trip is lossless and simulation results are identical —
    but affine DOALLs are expanded with numpy instead of interpreted
    per iteration, which is what makes the front end fast.
    """
    return _ColumnarGenerator(program, machine, params,
                              migration or MigrationSpec()).run()
