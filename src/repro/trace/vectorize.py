"""Vectorized DOALL trace generation: symbolic templates + broadcasting.

The per-iteration interpreter in :mod:`repro.trace.generate` re-walks a
DOALL body once per iteration, re-evaluating every subscript and building
every :class:`MemEvent` object individually.  In all six paper workloads
the bodies are *affine*: once the enclosing scalar environment is fixed,
every executed subscript is ``coeff * i + const`` in the iteration
variable ``i``, branch conditions and inner serial-loop bounds are
iteration-independent, and there is no synchronization.  For such bodies
the event stream of iteration ``i`` is a fixed *template* with only the
addresses (affinely) and the work carry depending on ``i`` — so the whole
epoch can be expanded with one numpy broadcast.

:func:`extract_template` symbolically executes a DOALL body once; every
symbolic value is ``(coeff, const)`` over the single DOALL index, so the
walk is plain integer arithmetic (no :class:`~repro.ir.expr.Affine`
allocation on the hot path).  Extraction is *pure* — it never mutates
generator state — so returning ``None`` simply falls back to the
interpreter with identical observable behavior, including error
behavior: every condition that makes extraction fail either reproduces
exactly under the interpreter or raises there, and bounds violations are
re-detected by :func:`expand_epoch`'s min/max check before any event is
emitted.

Fallback (interpreter) triggers, checked per construct:

* task migration enabled (the caller never attempts extraction);
* critical sections (LOCK/UNLOCK events, ``in_critical`` marking);
* a nested parallel loop (the interpreter raises on these);
* an ``If`` condition or serial-loop bound that is not a known constant
  after substitution (iteration-dependent control flow);
* a subscript or scalar assignment reading an unbound symbol;
* a scalar that is read from the enclosing environment and then rebound
  inside the body (by an assignment or a serial loop's index) — its
  value would leak across iterations;
* templates above :data:`MAX_TEMPLATE_EVENTS` events or extraction above
  :data:`MAX_STEPS` node visits (unroll explosion guard).

Extraction reads the scalar environment only through recorded lookups,
so its result is a deterministic function of the loop and the *consumed*
projection of the environment — which is what lets the generator cache
templates across repeated executions of the same DOALL (e.g. inside a
serial time loop) and revalidate them with a handful of dict lookups.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.program import (
    Call,
    CriticalSection,
    If,
    Loop,
    Program,
    ScalarAssign,
    Statement,
)
from repro.trace.columnar import KIND_READ, KIND_WRITE, TaskColumns
from repro.trace.layout import MemoryLayout

#: Largest per-iteration template worth materializing (serial unrolling
#: inside a DOALL body can explode; past this the interpreter is fine).
MAX_TEMPLATE_EVENTS = 4096
#: Node-visit budget for one extraction (guards event-free unrolling).
MAX_STEPS = 65536
_MAX_CALL_DEPTH = 32

_CMP = {"<": operator.lt, "<=": operator.le, ">": operator.gt,
        ">=": operator.ge, "==": operator.eq, "!=": operator.ne}

#: Sentinel symbolic value for a name a serial loop popped: the
#: interpreter leaves it unbound, so any later read must fall back.
_POPPED = object()


class Template:
    """Symbolic execution of one DOALL iteration, affine in the index.

    ``events`` rows are ``(code, site, array, addr_coeff, addr_const,
    shared, work)`` with the array base address excluded from the const;
    ``bounds`` rows are ``(coeff, const, extent)`` per checked subscript
    dimension; ``trailing`` is the compute left pending after the last
    event; ``consumed`` is the environment projection extraction read
    (``None`` marking a name that was looked up and absent), which the
    caller uses to revalidate cached templates.
    """

    __slots__ = ("events", "bounds", "trailing", "consumed", "_np", "_bases")

    def __init__(self, events, bounds, trailing, consumed):
        self.events: List[Tuple[int, int, str, int, int, bool, int]] = events
        self.bounds: List[Tuple[int, int, int]] = bounds
        self.trailing = trailing
        self.consumed: Dict[str, Optional[int]] = consumed
        self._np = None
        self._bases: Dict[int, np.ndarray] = {}

    def matches(self, env: Dict[str, int]) -> bool:
        """Is this template valid under ``env``?  (Same consumed values.)"""
        return all(env.get(name) == value
                   for name, value in self.consumed.items())

    def arrays(self):
        """Per-event numpy columns (cached): code/site/coeff/const/shared/
        work plus the array-name indirection for base lookup."""
        if self._np is None:
            ev = self.events
            n = len(ev)
            names = sorted({e[2] for e in ev})
            index = {name: i for i, name in enumerate(names)}
            self._np = (
                np.fromiter((e[0] for e in ev), np.uint8, n),
                np.fromiter((e[1] for e in ev), np.int64, n),
                np.fromiter((e[3] for e in ev), np.int64, n),
                np.fromiter((e[4] for e in ev), np.int64, n),
                np.fromiter((e[5] for e in ev), bool, n),
                np.fromiter((e[6] for e in ev), np.int64, n),
                names,
                np.fromiter((index[e[2]] for e in ev), np.intp, n),
            )
        return self._np

    def base_row(self, layout: MemoryLayout, proc: int) -> np.ndarray:
        """Per-event base addresses under ``layout`` for ``proc`` (cached;
        one generator run uses one layout, so the cache never grows)."""
        row = self._bases.get(proc)
        if row is None:
            *_, names, ev_arr = self.arrays()
            bases = np.fromiter((layout.base(name, proc) for name in names),
                                np.int64, len(names))
            row = bases[ev_arr]
            self._bases[proc] = row
        return row

    @property
    def private_arrays(self) -> bool:
        # Extraction only runs with migration disabled, where the shared
        # flag is exactly "the array is declared shared".
        return any(not e[5] for e in self.events)


class _Fail(Exception):
    """Internal: body is outside the affine-template fragment."""


class _Extractor:
    def __init__(self, program: Program, index: str, env: Dict[str, int]):
        self.program = program
        self.index = index
        self.env = env  # never mutated; read via _lookup only
        self.consumed: Dict[str, Optional[int]] = {}
        self.sym: Dict[str, object] = {}  # local (coeff, const) bindings
        self.events: List[Tuple[int, int, str, int, int, bool, int]] = []
        self.bounds: List[Tuple[int, int, int]] = []
        self.pending = 0
        self.steps = 0

    # ------------------------------------------------------------ helpers

    def _lookup(self, name: str) -> Tuple[int, int]:
        value = self.sym.get(name)
        if value is not None:
            if value is _POPPED:
                raise _Fail  # unbound after a serial loop's env.pop
            return value  # type: ignore[return-value]
        if name == self.index:
            return (1, 0)
        if name in self.consumed:
            bound = self.consumed[name]
        else:
            bound = self.env.get(name)
            self.consumed[name] = bound
        if bound is None:
            raise _Fail  # unbound symbol: the interpreter raises on this
        return (0, bound)

    def _sub(self, expr) -> Tuple[int, int]:
        """Evaluate an :class:`Affine` to ``(coeff, const)`` over the index."""
        coeff, const = 0, expr.const
        for name, c in expr.terms:
            k, v = self._lookup(name)
            coeff += c * k
            const += c * v
        return coeff, const

    def _const(self, expr) -> int:
        coeff, const = self._sub(expr)
        if coeff:
            raise _Fail  # iteration-dependent control flow
        return const

    def _bind(self, name: str, value) -> None:
        """A within-body rebinding (assignment or serial-loop index).

        If the enclosing environment's value of ``name`` was already read
        this body, iterations after the first would observe the previous
        iteration's leftover binding instead — fall back.
        """
        if name in self.consumed:
            raise _Fail
        self.sym[name] = value

    # -------------------------------------------------------------- walk

    def body(self, nodes, depth: int) -> None:
        for node in nodes:
            self.steps += 1
            if self.steps > MAX_STEPS:
                raise _Fail
            if isinstance(node, Statement):
                self.statement(node)
            elif isinstance(node, ScalarAssign):
                self._bind(node.name, self._sub(node.expr))
            elif isinstance(node, Loop):
                if node.parallel:
                    raise _Fail  # interpreter raises on nested DOALLs
                self.serial_loop(node, depth)
            elif isinstance(node, If):
                lhs = self._const(node.cond.lhs)
                rhs = self._const(node.cond.rhs)
                taken = _CMP[node.cond.op](lhs, rhs)
                self.body(node.then if taken else node.els, depth)
            elif isinstance(node, Call):
                if depth >= _MAX_CALL_DEPTH:
                    raise _Fail
                self.body(self.program.procedures[node.callee].body, depth + 1)
            elif isinstance(node, CriticalSection):
                raise _Fail  # lock events / in_critical marking
            else:  # pragma: no cover - closed union
                raise _Fail

    def serial_loop(self, loop: Loop, depth: int) -> None:
        lo, hi = self._const(loop.lo), self._const(loop.hi)
        if loop.index in self.consumed:
            # The body already read this name from the enclosing
            # environment; the loop rebinds and then *pops* it (even with
            # zero iterations), so later iterations would see different
            # bindings than the first — fall back.
            raise _Fail
        for value in range(lo, hi + (1 if loop.step > 0 else -1), loop.step):
            self.sym[loop.index] = (0, value)
            self.body(loop.body, depth)
        # Mirror ``env.pop(loop.index, None)``: unbound afterwards.
        self.sym[loop.index] = _POPPED

    def statement(self, stmt: Statement) -> None:
        self.pending += stmt.work
        arrays = self.program.arrays
        for ref, code in [(r, KIND_READ) for r in stmt.reads] + \
                         [(w, KIND_WRITE) for w in stmt.writes]:
            array = arrays[ref.array]
            flat_k = flat_c = 0
            for sub, extent in zip(ref.subscripts, array.shape):
                k, c = self._sub(sub)
                self.bounds.append((k, c, extent))
                flat_k = flat_k * extent + k
                flat_c = flat_c * extent + c
            words = array.element_words
            word_k, word_c = flat_k * words, flat_c * words
            shared = array.sharing.value == "shared"
            if len(self.events) + words > MAX_TEMPLATE_EVENTS:
                raise _Fail
            for offset in range(words):
                work, self.pending = self.pending, 0
                self.events.append((code, ref.site, ref.array,
                                    word_k, word_c + offset, shared, work))


def _extract(program: Program, loop: Loop, env: Dict[str, int]):
    """Run one extraction; returns ``(template_or_None, consumed)``."""
    extractor = _Extractor(program, loop.index, env)
    try:
        extractor.body(loop.body, 0)
    except _Fail:
        return None, extractor.consumed
    return (Template(extractor.events, extractor.bounds, extractor.pending,
                     extractor.consumed),
            extractor.consumed)


def extract_template(program: Program, loop: Loop,
                     env: Dict[str, int]) -> Optional[Template]:
    """Symbolically execute ``loop.body`` under ``env``; pure.

    Returns the per-iteration template, or ``None`` when the body falls
    outside the affine fragment (see module docstring for the triggers).
    """
    return _extract(program, loop, env)[0]


class TemplateCache:
    """Per-run memo of extraction results, keyed by loop identity.

    Extraction reads the environment only through recorded lookups, so a
    cached result (template *or* rejection) stays valid for any
    environment agreeing on the consumed values — a DOALL inside a serial
    time loop revalidates with a few dict probes instead of re-walking
    its body.  Keyed by ``id(loop)``; the program (and its loop nodes)
    outlives the generator run holding this cache, and cached templates
    also carry layout-derived base rows, so the cache must not outlive
    the run's (program, layout) pair.
    """

    _LIMIT = 8  # distinct consumed projections kept per loop

    def __init__(self) -> None:
        self._memo: Dict[int, List[Tuple[Dict[str, Optional[int]],
                                         Optional[Template]]]] = {}

    def get(self, program: Program, loop: Loop,
            env: Dict[str, int]) -> Optional[Template]:
        entries = self._memo.setdefault(id(loop), [])
        for consumed, result in entries:
            if all(env.get(name) == value
                   for name, value in consumed.items()):
                return result
        result, consumed = _extract(program, loop, env)
        if len(entries) < self._LIMIT:
            entries.append((consumed, result))
        return result


def _empty_task(proc: int, extra_work: int = 0) -> TaskColumns:
    return TaskColumns(
        proc=proc, extra_work=extra_work,
        kind=np.zeros(0, np.uint8), addr=np.zeros(0, np.int64),
        site=np.zeros(0, np.int64), work=np.zeros(0, np.int64),
        shared=np.zeros(0, bool), in_critical=np.zeros(0, bool),
        lock=np.zeros(0, np.int32))


def _charge_master(columns: List[TaskColumns], leftover: int) -> None:
    """Trailing work with no event to attach to goes to the master task,
    exactly like the interpreter's rule (creating it if necessary)."""
    if columns and columns[0].proc == 0:
        columns[0].extra_work += leftover
    else:
        columns.insert(0, _empty_task(0, leftover))


def expand_epoch(template: Template, values: Sequence[int],
                 assignments: Sequence[Tuple[int, List[int]]],
                 layout: MemoryLayout) -> Optional[List[TaskColumns]]:
    """Broadcast ``template`` over a scheduled iteration space.

    ``assignments`` is :func:`repro.trace.schedule.schedule_iterations`
    output (processor order — the interpreter's execution order, which
    fixes how trailing work carries between consecutive iterations).
    Returns per-task columns in the same order, or ``None`` if any
    subscript would leave its array bounds for some iteration (the
    caller then re-runs the interpreter, which raises the identical
    error at the first faulting iteration).
    """
    if values:
        vmin, vmax = min(values), max(values)
        for coeff, const, extent in template.bounds:
            lo, hi = coeff * vmin + const, coeff * vmax + const
            if lo > hi:
                lo, hi = hi, lo
            if lo < 0 or hi >= extent:
                return None

    n_ev = len(template.events)
    trailing = template.trailing
    n_total = sum(len(iterations) for _, iterations in assignments)
    if n_ev == 0:
        # Every participating processor still gets an (empty) task — the
        # reference engine's barrier accounting counts tasks, not events.
        columns = [_empty_task(proc) for proc, _ in assignments]
        if trailing and n_total:
            _charge_master(columns, trailing * n_total)
        return columns

    ev_code, ev_site, ev_coeff, ev_const, ev_shared, ev_work, _, _ = \
        template.arrays()
    v_all = np.fromiter(
        (v for _, iterations in assignments for v in iterations),
        np.int64, n_total)
    addr = (v_all[:, None] * ev_coeff + ev_const).reshape(-1)
    kind = np.tile(ev_code, n_total)
    site = np.tile(ev_site, n_total)
    shared = np.tile(ev_shared, n_total)
    work = np.tile(ev_work, n_total)
    if trailing and n_total:
        # Pending work left by iteration g-1 lands on the first event of
        # iteration g; the globally first iteration has no carry.
        work[::n_ev] += trailing
        work[0] -= trailing
    n = n_total * n_ev
    in_critical = np.zeros(n, bool)
    lock = np.full(n, -1, np.int32)

    per_proc_bases = template.private_arrays
    if not per_proc_bases and assignments:
        addr += np.tile(template.base_row(layout, 0), n_total)

    columns: List[TaskColumns] = []
    start = 0
    for proc, iterations in assignments:
        stop = start + len(iterations) * n_ev
        if per_proc_bases:
            addr[start:stop] += np.tile(template.base_row(layout, proc),
                                        len(iterations))
        columns.append(TaskColumns(
            proc=proc, extra_work=0,
            kind=kind[start:stop], addr=addr[start:stop],
            site=site[start:stop], work=work[start:stop],
            shared=shared[start:stop], in_critical=in_critical[start:stop],
            lock=lock[start:stop]))
        start = stop

    if trailing and n_total:
        _charge_master(columns, trailing)
    return columns
