"""Memory-event stream structures.

A :class:`Trace` is a sequence of dynamic epochs; each epoch holds one
:class:`Task` per participating processor; each task is an ordered list of
:class:`MemEvent`.  Epoch boundaries are implicit barriers (the DOALL model):
the simulator synchronizes all processors and increments the TPI epoch
counters between epochs.

Events carry the *site* id of the originating source reference; coherence
schemes that honour compiler marking look the site up in the
:class:`repro.compiler.Marking` maps to decide whether a READ is an ordinary
read or a Time-Read / bypassing read.  This keeps one generated trace
reusable across all schemes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.layout import MemoryLayout


class EventKind(enum.Enum):
    READ = "read"
    WRITE = "write"
    LOCK = "lock"
    UNLOCK = "unlock"


@dataclass(slots=True)
class MemEvent:
    """One dynamic memory operation (word-addressed)."""

    kind: EventKind
    addr: int
    site: int
    work: int = 0  # compute cycles charged before this operation issues
    shared: bool = True
    in_critical: bool = False
    lock: int = -1  # lock id for LOCK/UNLOCK events


@dataclass(slots=True)
class Task:
    """The event stream one processor executes within one epoch."""

    proc: int
    events: List[MemEvent] = field(default_factory=list)
    extra_work: int = 0  # trailing compute cycles not attached to any event


@dataclass(slots=True)
class TraceEpoch:
    """One dynamic epoch: a barrier-delimited set of per-processor tasks.

    ``write_key`` identifies the originating static epoch (by its first
    node's identity); the TPI runtime uses it to apply the compiler-emitted
    per-array last-write-epoch (W-register) updates at the epoch's end.
    """

    index: int
    parallel: bool
    tasks: List[Task] = field(default_factory=list)
    label: str = ""
    n_tasks_scheduled: int = 0  # dispatch count (> len(tasks) under self-sched)
    write_key: Optional[int] = None
    _batch: Optional[object] = field(default=None, repr=False, compare=False)
    """Fast-engine columnar view of the tasks, built lazily on first use
    and shared by every scheme simulated over this trace in-process.
    Derived data: dropped from pickles (see ``__getstate__``) so cached
    PreparedRun artifacts stay lean."""

    def __getstate__(self):
        state = {slot: getattr(self, slot) for slot in self.__slots__}
        state["_batch"] = None
        return state

    def __setstate__(self, state):
        for slot in self.__slots__:
            object.__setattr__(self, slot, state.get(slot))

    @property
    def n_events(self) -> int:
        return sum(len(t.events) for t in self.tasks)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)


@dataclass
class Trace:
    """A complete program execution as dynamic epochs."""

    program_name: str
    n_procs: int
    epochs: List[TraceEpoch] = field(default_factory=list)
    layout: Optional["MemoryLayout"] = None  # set by the generator

    @property
    def n_events(self) -> int:
        return sum(e.n_events for e in self.epochs)

    @property
    def n_epochs(self) -> int:
        return len(self.epochs)

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram (reads/writes/locks), for reporting."""
        counts: Dict[str, int] = {k.value: 0 for k in EventKind}
        for epoch in self.epochs:
            for task in epoch.tasks:
                for event in task.events:
                    counts[event.kind.value] += 1
        return counts
