"""Columnar trace store: the object :class:`~repro.trace.events.Trace`
as a handful of flat numpy arrays.

A trace is mostly one enormous homogeneous event stream, so the
list-of-:class:`MemEvent` representation pays per-object costs everywhere
it moves: building it dominates trace generation, pickling it dominates
the executor's scatter boundary and the artifact cache, and the fast
engine immediately re-converts it to arrays (:class:`repro.sim.
fastengine._TaskArrays`).  This module stores the same information
columnarly:

* one array per :class:`MemEvent` field (``kind``/``addr``/``site``/
  ``work``/``shared``/``in_critical``/``lock``) over every event in the
  trace, in task-major program order;
* a compact task table (``proc``, ``extra_work``, event offsets) and an
  epoch table (offsets into the task table plus the per-epoch metadata
  lists);
* the original :class:`~repro.trace.layout.MemoryLayout` by reference.

The conversion is lossless both ways: ``ColumnarTrace.from_trace(t).
to_trace() == t`` (enforced by a hypothesis property in
tests/test_columnar.py), and engines driven from either form produce
byte-identical results.  Consumers that want arrays (the fast engine's
batch kernels) slice them zero-copy via :meth:`ColumnarEpoch.
task_columns`; consumers that want objects (the reference engine, the
wholesale fallback path) materialize a :class:`~repro.trace.events.Task`
list lazily per epoch.  Pickling a ``ColumnarTrace`` ships the raw array
buffers — no per-event object graph — which is what makes cached
``PreparedRun`` artifacts and executor scatter cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.trace.events import EventKind, MemEvent, Task, Trace, TraceEpoch

#: Event-kind codes used in the ``kind`` column.  LOCK/UNLOCK sort after
#: the data kinds so "epoch has synchronization" is one vectorized compare.
KIND_READ, KIND_WRITE, KIND_LOCK, KIND_UNLOCK = 0, 1, 2, 3
_KIND_CODE = {EventKind.READ: KIND_READ, EventKind.WRITE: KIND_WRITE,
              EventKind.LOCK: KIND_LOCK, EventKind.UNLOCK: KIND_UNLOCK}
_KIND_OF_CODE = (EventKind.READ, EventKind.WRITE,
                 EventKind.LOCK, EventKind.UNLOCK)


@dataclass
class TaskColumns:
    """Zero-copy per-task view of the flat event columns."""

    proc: int
    extra_work: int
    kind: np.ndarray
    addr: np.ndarray
    site: np.ndarray
    work: np.ndarray
    shared: np.ndarray
    in_critical: np.ndarray
    lock: np.ndarray

    @property
    def n(self) -> int:
        return len(self.addr)

    def to_task(self) -> Task:
        """Materialize the object :class:`Task` (python-int field values)."""
        events = [MemEvent(_KIND_OF_CODE[k], a, s, w, sh, ic, lk)
                  for k, a, s, w, sh, ic, lk in zip(
                      self.kind.tolist(), self.addr.tolist(),
                      self.site.tolist(), self.work.tolist(),
                      self.shared.tolist(), self.in_critical.tolist(),
                      self.lock.tolist())]
        return Task(proc=self.proc, events=events, extra_work=self.extra_work)

    @staticmethod
    def from_task(task: Task) -> "TaskColumns":
        events = task.events
        n = len(events)
        return TaskColumns(
            proc=task.proc, extra_work=task.extra_work,
            kind=np.fromiter((_KIND_CODE[e.kind] for e in events),
                             np.uint8, n),
            addr=np.fromiter((e.addr for e in events), np.int64, n),
            site=np.fromiter((e.site for e in events), np.int64, n),
            work=np.fromiter((e.work for e in events), np.int64, n),
            shared=np.fromiter((e.shared for e in events), bool, n),
            in_critical=np.fromiter((e.in_critical for e in events), bool, n),
            lock=np.fromiter((e.lock for e in events), np.int32, n))


class ColumnarEpoch:
    """One epoch of a :class:`ColumnarTrace`, structurally compatible with
    :class:`~repro.trace.events.TraceEpoch`: the engines read ``index``,
    ``parallel``, ``label``, ``n_tasks_scheduled``, ``write_key``,
    ``tasks`` (materialized lazily and cached) and use ``_batch`` as a
    scratch slot; the fast engine additionally reads the columnar views.
    """

    __slots__ = ("trace", "index", "_tasks", "_batch")

    def __init__(self, trace: "ColumnarTrace", index: int):
        self.trace = trace
        self.index = index
        self._tasks: Optional[List[Task]] = None
        self._batch = None

    # --------------------------------------------------------- epoch meta

    @property
    def parallel(self) -> bool:
        return self.trace.epoch_parallel[self.index]

    @property
    def label(self) -> str:
        return self.trace.epoch_label[self.index]

    @property
    def n_tasks_scheduled(self) -> int:
        return self.trace.epoch_n_sched[self.index]

    @property
    def write_key(self) -> Optional[int]:
        return self.trace.epoch_write_key[self.index]

    # -------------------------------------------------------------- sizes

    @property
    def _task_range(self):
        off = self.trace.epoch_off
        return int(off[self.index]), int(off[self.index + 1])

    @property
    def n_tasks(self) -> int:
        lo, hi = self._task_range
        return hi - lo

    @property
    def _event_range(self):
        lo, hi = self._task_range
        off = self.trace.task_off
        return int(off[lo]), int(off[hi])

    @property
    def n_events(self) -> int:
        lo, hi = self._event_range
        return hi - lo

    @property
    def has_sync(self) -> bool:
        """LOCK/UNLOCK or in-critical events anywhere this epoch."""
        lo, hi = self._event_range
        t = self.trace
        return bool((t.kind[lo:hi] >= KIND_LOCK).any()
                    or t.in_critical[lo:hi].any())

    # -------------------------------------------------------------- views

    def task_columns(self) -> List[TaskColumns]:
        """Per-task zero-copy slices of the flat event columns."""
        t = self.trace
        lo, hi = self._task_range
        out = []
        for ti in range(lo, hi):
            a, b = int(t.task_off[ti]), int(t.task_off[ti + 1])
            out.append(TaskColumns(
                proc=int(t.task_proc[ti]), extra_work=int(t.task_extra[ti]),
                kind=t.kind[a:b], addr=t.addr[a:b], site=t.site[a:b],
                work=t.work[a:b], shared=t.shared[a:b],
                in_critical=t.in_critical[a:b], lock=t.lock[a:b]))
        return out

    @property
    def tasks(self) -> List[Task]:
        if self._tasks is None:
            self._tasks = [tc.to_task() for tc in self.task_columns()]
        return self._tasks

    def to_epoch(self) -> TraceEpoch:
        return TraceEpoch(index=self.index, parallel=self.parallel,
                          tasks=self.tasks, label=self.label,
                          n_tasks_scheduled=self.n_tasks_scheduled,
                          write_key=self.write_key)


class ColumnarTrace:
    """A complete execution as flat event columns plus index tables."""

    def __init__(self, program_name: str, n_procs: int, layout,
                 kind: np.ndarray, addr: np.ndarray, site: np.ndarray,
                 work: np.ndarray, shared: np.ndarray,
                 in_critical: np.ndarray, lock: np.ndarray,
                 task_off: np.ndarray, task_proc: np.ndarray,
                 task_extra: np.ndarray, epoch_off: np.ndarray,
                 epoch_parallel: List[bool], epoch_label: List[str],
                 epoch_n_sched: List[int],
                 epoch_write_key: List[Optional[int]]):
        self.program_name = program_name
        self.n_procs = n_procs
        self.layout = layout
        self.kind = kind
        self.addr = addr
        self.site = site
        self.work = work
        self.shared = shared
        self.in_critical = in_critical
        self.lock = lock
        self.task_off = task_off
        self.task_proc = task_proc
        self.task_extra = task_extra
        self.epoch_off = epoch_off
        self.epoch_parallel = epoch_parallel
        self.epoch_label = epoch_label
        self.epoch_n_sched = epoch_n_sched
        self.epoch_write_key = epoch_write_key
        self.n_expanded_epochs = 0  # set by the columnar generator
        self._views: Optional[List[ColumnarEpoch]] = None

    # ----------------------------------------------------------- pickling

    _FIELDS = ("program_name", "n_procs", "layout", "kind", "addr", "site",
               "work", "shared", "in_critical", "lock", "task_off",
               "task_proc", "task_extra", "epoch_off", "epoch_parallel",
               "epoch_label", "epoch_n_sched", "epoch_write_key",
               "n_expanded_epochs")

    def __getstate__(self):
        # Derived caches (epoch views, their materialized tasks and batch
        # analyses) are dropped so pickles carry only the raw buffers.
        return {name: getattr(self, name) for name in self._FIELDS}

    def __setstate__(self, state):
        for name in self._FIELDS:
            setattr(self, name, state[name])
        self._views = None

    # ------------------------------------------------------------- access

    @property
    def epochs(self) -> List[ColumnarEpoch]:
        if self._views is None:
            self._views = [ColumnarEpoch(self, i)
                           for i in range(self.n_epochs)]
        return self._views

    @property
    def n_epochs(self) -> int:
        return len(self.epoch_off) - 1

    @property
    def n_events(self) -> int:
        return len(self.addr)

    def counts(self) -> Dict[str, int]:
        """Event-kind histogram, same shape as :meth:`Trace.counts`."""
        hist = np.bincount(self.kind, minlength=4)
        return {k.value: int(hist[_KIND_CODE[k]]) for k in EventKind}

    # -------------------------------------------------------- conversions

    def to_trace(self) -> Trace:
        """Materialize the equivalent object :class:`Trace` (lossless)."""
        return Trace(program_name=self.program_name, n_procs=self.n_procs,
                     epochs=[view.to_epoch() for view in self.epochs],
                     layout=self.layout)

    @classmethod
    def from_trace(cls, trace: Trace,
                   expanded: Optional[Dict[int, Sequence[TaskColumns]]] = None,
                   ) -> "ColumnarTrace":
        """Build the columnar form of ``trace``.

        ``expanded`` optionally maps epoch indices to pre-built per-task
        columns (the vectorized generator's output); those epochs must be
        placeholders with no object tasks.
        """
        builder = ColumnarBuilder(trace.program_name, trace.n_procs,
                                  trace.layout)
        for epoch in trace.epochs:
            columns = expanded.get(epoch.index) if expanded else None
            if columns is None:
                columns = [TaskColumns.from_task(t) for t in epoch.tasks]
            builder.add_epoch(epoch.parallel, epoch.label,
                              epoch.n_tasks_scheduled, epoch.write_key,
                              columns)
        return builder.build()


class ColumnarBuilder:
    """Accumulates per-task column chunks into one :class:`ColumnarTrace`."""

    def __init__(self, program_name: str, n_procs: int, layout):
        self.program_name = program_name
        self.n_procs = n_procs
        self.layout = layout
        self._chunks: List[TaskColumns] = []
        self._task_proc: List[int] = []
        self._task_extra: List[int] = []
        self._task_len: List[int] = []
        self._epoch_off: List[int] = [0]
        self._parallel: List[bool] = []
        self._label: List[str] = []
        self._n_sched: List[int] = []
        self._write_key: List[Optional[int]] = []

    def add_epoch(self, parallel: bool, label: str, n_tasks_scheduled: int,
                  write_key: Optional[int],
                  columns: Sequence[TaskColumns]) -> None:
        for tc in columns:
            self._chunks.append(tc)
            self._task_proc.append(tc.proc)
            self._task_extra.append(tc.extra_work)
            self._task_len.append(tc.n)
        self._epoch_off.append(len(self._task_proc))
        self._parallel.append(parallel)
        self._label.append(label)
        self._n_sched.append(n_tasks_scheduled)
        self._write_key.append(write_key)

    @staticmethod
    def _cat(parts: List[np.ndarray], dtype) -> np.ndarray:
        if not parts:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts)

    def build(self) -> ColumnarTrace:
        chunks = self._chunks
        task_off = np.zeros(len(self._task_len) + 1, dtype=np.int64)
        np.cumsum(self._task_len, out=task_off[1:])
        return ColumnarTrace(
            program_name=self.program_name, n_procs=self.n_procs,
            layout=self.layout,
            kind=self._cat([c.kind for c in chunks], np.uint8),
            addr=self._cat([c.addr for c in chunks], np.int64),
            site=self._cat([c.site for c in chunks], np.int64),
            work=self._cat([c.work for c in chunks], np.int64),
            shared=self._cat([c.shared for c in chunks], bool),
            in_critical=self._cat([c.in_critical for c in chunks], bool),
            lock=self._cat([c.lock for c in chunks], np.int32),
            task_off=task_off,
            task_proc=np.asarray(self._task_proc, dtype=np.int32),
            task_extra=np.asarray(self._task_extra, dtype=np.int64),
            epoch_off=np.asarray(self._epoch_off, dtype=np.int64),
            epoch_parallel=self._parallel, epoch_label=self._label,
            epoch_n_sched=self._n_sched, epoch_write_key=self._write_key)
