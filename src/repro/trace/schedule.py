"""DOALL iteration scheduling and task-migration injection.

The paper's execution model assigns the iterations of a DOALL to processors;
the compiler cannot know the assignment, which is exactly why Time-Reads
exist.  Three policies are provided (Figure 8's simulations use static
chunking):

* ``CHUNK`` — contiguous blocks, best spatial locality per processor;
* ``INTERLEAVED`` — iteration *k* on processor *k mod P*;
* ``SELF`` — dynamic self-scheduling; approximated as arrival-order
  round-robin, which matches a zero-variance machine.

Task migration (Section 5 of the paper) is modeled by
:class:`MigrationSpec`: selected iterations execute their first half on the
originally scheduled processor and the second half on another one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.common.config import SchedulePolicy
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class MigrationSpec:
    """Deterministic migration injection: every ``every``-th scheduled
    iteration migrates mid-task to the next processor (mod P)."""

    every: int = 0  # 0 disables migration

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ConfigError("migration period must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.every > 0

    def migrates(self, global_iteration_counter: int) -> bool:
        return self.enabled and global_iteration_counter % self.every == self.every - 1


def schedule_iterations(iterations: Sequence[int], n_procs: int,
                        policy: SchedulePolicy) -> List[Tuple[int, List[int]]]:
    """Assign iteration values to processors.

    Returns ``(proc, iterations)`` pairs in processor order; processors with
    no work are omitted.
    """
    n = len(iterations)
    if n == 0:
        return []
    buckets: Dict[int, List[int]] = {}
    if policy is SchedulePolicy.CHUNK:
        base, extra = divmod(n, n_procs)
        start = 0
        # With fewer iterations than processors, base == 0 and only the
        # first ``extra == n`` processors receive work: iterating past
        # them would cost O(n_procs) per loop for nothing (and n_procs
        # can be 4 orders of magnitude above n at scale).
        for proc in range(min(n, n_procs)):
            size = base + (1 if proc < extra else 0)
            if size:
                buckets[proc] = list(iterations[start:start + size])
            start += size
    elif policy in (SchedulePolicy.INTERLEAVED, SchedulePolicy.SELF):
        for k, value in enumerate(iterations):
            buckets.setdefault(k % n_procs, []).append(value)
    else:  # pragma: no cover - enum is closed
        raise ConfigError(f"unknown schedule policy {policy}")
    return sorted(buckets.items())
