"""Execution model: turning a marked program into per-processor event streams."""

from repro.trace.events import EventKind, MemEvent, Task, TraceEpoch, Trace
from repro.trace.columnar import ColumnarTrace, TaskColumns
from repro.trace.layout import MemoryLayout
from repro.trace.schedule import MigrationSpec, schedule_iterations
from repro.trace.generate import generate_columnar, generate_trace
from repro.trace.vectorize import expand_epoch, extract_template

__all__ = [
    "ColumnarTrace",
    "EventKind",
    "MemEvent",
    "MemoryLayout",
    "MigrationSpec",
    "Task",
    "TaskColumns",
    "Trace",
    "TraceEpoch",
    "expand_epoch",
    "extract_template",
    "generate_columnar",
    "generate_trace",
    "schedule_iterations",
]
