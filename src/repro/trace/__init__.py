"""Execution model: turning a marked program into per-processor event streams."""

from repro.trace.events import EventKind, MemEvent, Task, TraceEpoch, Trace
from repro.trace.layout import MemoryLayout
from repro.trace.schedule import MigrationSpec, schedule_iterations
from repro.trace.generate import generate_trace

__all__ = [
    "EventKind",
    "MemEvent",
    "MemoryLayout",
    "MigrationSpec",
    "Task",
    "Trace",
    "TraceEpoch",
    "generate_trace",
    "schedule_iterations",
]
