"""Word-addressed memory layout for program arrays.

Shared arrays get one aligned allocation; private arrays get one copy
per processor (Fortran-style task-private storage), so they still occupy
cache space and can conflict with shared data in the simulated caches.

Allocation alignment is the *fixed* :data:`LAYOUT_ALIGN_WORDS`, not the
simulated cache line size: like a real allocator, the layout is a
property of the program, so one trace serves every back-end cache
geometry a sweep simulates over it (the gang path in docs/PERF.md).
Lines wider than the alignment may straddle array boundaries, exactly as
they do on hardware.

Private copies of one array are laid out back to back, so every copy's
base is ``base0 + copy * stride`` with a fixed per-array stride.  The
layout therefore stores one record per *array* and computes addresses in
closed form — construction, pickling, and region lookups are O(arrays),
not O(arrays x n_procs), which is what lets ``n_procs`` reach 16384
without materializing a per-copy address map (see docs/PERF.md).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.ir.program import Array, Program, Sharing

#: Allocation alignment in words — matches the paper's default 4-word
#: (16-byte) line.  Deliberately independent of ``CacheConfig.line_words``
#: so traces are invariant across back-end cache sweeps.
LAYOUT_ALIGN_WORDS = 4


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class RegionTable:
    """Closed-form word-address -> array-region lookup.

    Replaces the dense O(total_words) table: allocation spans are disjoint
    and sorted by base, so a searchsorted over per-array spans answers both
    scalar and vectorized queries; addresses in alignment padding map to
    -1 exactly as the dense table did.  Every per-processor copy of a
    private array maps to the same region (offsets within a span reduce
    modulo the copy stride).
    """

    __slots__ = ("names", "_starts", "_spans", "_strides", "_sizes")

    def __init__(self, starts: np.ndarray, spans: np.ndarray,
                 strides: np.ndarray, sizes: np.ndarray, names: List[str]):
        self.names = names
        self._starts = starts
        self._spans = spans
        self._strides = strides
        self._sizes = sizes

    def __getitem__(self, addr):
        a = np.asarray(addr)
        if not self._starts.size:
            empty = np.full(a.shape, -1, dtype=np.int32)
            return empty if a.ndim else -1
        pos = np.searchsorted(self._starts, a, side="right") - 1
        clipped = np.maximum(pos, 0)
        off = a - self._starts[clipped]
        inside = ((pos >= 0) & (off < self._spans[clipped])
                  & (off % self._strides[clipped] < self._sizes[clipped]))
        region = np.where(inside, clipped, -1).astype(np.int32)
        return region if a.ndim else int(region)


class MemoryLayout:
    """Assigns base word addresses to every (array, processor) instance."""

    def __init__(self, program: Program, n_procs: int,
                 line_words: int = LAYOUT_ALIGN_WORDS):
        self.n_procs = n_procs
        self.line_words = line_words
        self._arrays: Dict[str, Array] = dict(program.arrays)
        # name -> (base of copy 0, stride between copies, copy count)
        self._specs: Dict[str, Tuple[int, int, int]] = {}
        cursor = 0
        for array in program.arrays.values():
            copies = 1 if array.sharing is Sharing.SHARED else n_procs
            base0 = _align_up(cursor, line_words)
            stride = _align_up(array.size_words, line_words)
            self._specs[array.name] = (base0, stride, copies)
            cursor = base0 + (copies - 1) * stride + array.size_words
        self.total_words = _align_up(cursor, line_words)

    def base(self, array: str, proc: int = 0) -> int:
        arr = self._arrays[array]
        base0, stride, copies = self._specs[array]
        if arr.sharing is Sharing.SHARED:
            return base0
        if not 0 <= proc < copies:
            raise KeyError((array, proc))
        return base0 + proc * stride

    def addr_of(self, array: str, indices: Tuple[int, ...], proc: int = 0) -> int:
        """Word address of ``array[indices]`` (row-major), bounds-checked.

        Multi-word elements return their first word; the element occupies
        ``element_words`` consecutive words from there.
        """
        arr = self._arrays[array]
        flat = 0
        for index, extent in zip(indices, arr.shape):
            if not 0 <= index < extent:
                raise SimulationError(
                    f"subscript {indices} out of bounds for {array}{arr.shape}")
            flat = flat * extent + index
        return self.base(array, proc) + flat * arr.element_words

    def owner_region(self, array: str) -> Tuple[int, int]:
        """(base, size_words) of the shared allocation, for diagnostics."""
        arr = self._arrays[array]
        return self.base(array, 0), arr.size_words

    def shared_region_table(self) -> Tuple[RegionTable, List[str]]:
        """Word-address -> array-index lookup (for per-array state).

        Returns ``(region_of, names)``: ``region_of[addr]`` is the index of
        the array containing the word, ``names[i]`` its name.  Private
        arrays are included — every per-processor copy maps to the same
        region — because under task migration their storage becomes
        cross-processor-visible and the TPI W registers must cover them.
        """
        names: List[str] = []
        starts: List[int] = []
        spans: List[int] = []
        strides: List[int] = []
        sizes: List[int] = []
        for name, (base0, stride, copies) in self._specs.items():
            array = self._arrays[name]
            names.append(name)
            starts.append(base0)
            spans.append((copies - 1) * stride + array.size_words)
            strides.append(stride)
            sizes.append(array.size_words)
        table = RegionTable(np.asarray(starts, dtype=np.int64),
                            np.asarray(spans, dtype=np.int64),
                            np.asarray(strides, dtype=np.int64),
                            np.asarray(sizes, dtype=np.int64), names)
        return table, names

    def array_of_addr(self, addr: int) -> str:
        """Reverse lookup for debugging (closed-form; not on hot paths)."""
        for name, (base0, stride, copies) in self._specs.items():
            off = addr - base0
            span = (copies - 1) * stride + self._arrays[name].size_words
            if 0 <= off < span and off % stride < self._arrays[name].size_words:
                return name
        raise SimulationError(f"address {addr} maps to no array")
