"""Word-addressed memory layout for program arrays.

Shared arrays get one aligned allocation; private arrays get one copy
per processor (Fortran-style task-private storage), so they still occupy
cache space and can conflict with shared data in the simulated caches.

Allocation alignment is the *fixed* :data:`LAYOUT_ALIGN_WORDS`, not the
simulated cache line size: like a real allocator, the layout is a
property of the program, so one trace serves every back-end cache
geometry a sweep simulates over it (the gang path in docs/PERF.md).
Lines wider than the alignment may straddle array boundaries, exactly as
they do on hardware.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.common.errors import SimulationError
from repro.ir.program import Array, Program, Sharing

#: Allocation alignment in words — matches the paper's default 4-word
#: (16-byte) line.  Deliberately independent of ``CacheConfig.line_words``
#: so traces are invariant across back-end cache sweeps.
LAYOUT_ALIGN_WORDS = 4


def _align_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


class MemoryLayout:
    """Assigns base word addresses to every (array, processor) instance."""

    def __init__(self, program: Program, n_procs: int,
                 line_words: int = LAYOUT_ALIGN_WORDS):
        self.n_procs = n_procs
        self.line_words = line_words
        self._bases: Dict[Tuple[str, int], int] = {}
        self._arrays: Dict[str, Array] = dict(program.arrays)
        cursor = 0
        for array in program.arrays.values():
            copies = 1 if array.sharing is Sharing.SHARED else n_procs
            for copy in range(copies):
                cursor = _align_up(cursor, line_words)
                key = (array.name, 0 if array.sharing is Sharing.SHARED else copy)
                self._bases[key] = cursor
                cursor += array.size_words
        self.total_words = _align_up(cursor, line_words)

    def base(self, array: str, proc: int = 0) -> int:
        arr = self._arrays[array]
        key = (array, 0 if arr.sharing is Sharing.SHARED else proc)
        return self._bases[key]

    def addr_of(self, array: str, indices: Tuple[int, ...], proc: int = 0) -> int:
        """Word address of ``array[indices]`` (row-major), bounds-checked.

        Multi-word elements return their first word; the element occupies
        ``element_words`` consecutive words from there.
        """
        arr = self._arrays[array]
        flat = 0
        for index, extent in zip(indices, arr.shape):
            if not 0 <= index < extent:
                raise SimulationError(
                    f"subscript {indices} out of bounds for {array}{arr.shape}")
            flat = flat * extent + index
        return self.base(array, proc) + flat * arr.element_words

    def owner_region(self, array: str) -> Tuple[int, int]:
        """(base, size_words) of the shared allocation, for diagnostics."""
        arr = self._arrays[array]
        return self.base(array, 0), arr.size_words

    def shared_region_table(self) -> Tuple["np.ndarray", List[str]]:
        """Word-address -> array-index table (for per-array state).

        Returns ``(region_of, names)``: ``region_of[addr]`` is the index of
        the array containing the word, ``names[i]`` its name.  Private
        arrays are included — every per-processor copy maps to the same
        region — because under task migration their storage becomes
        cross-processor-visible and the TPI W registers must cover them.
        """
        region_of = np.full(self.total_words, -1, dtype=np.int32)
        names: List[str] = []
        index: Dict[str, int] = {}
        for (name, _copy), base in self._bases.items():
            array = self._arrays[name]
            if name not in index:
                index[name] = len(names)
                names.append(name)
            region_of[base:base + array.size_words] = index[name]
        return region_of, names

    def array_of_addr(self, addr: int) -> str:
        """Reverse lookup for debugging (linear scan; not on hot paths)."""
        for (name, copy), base in self._bases.items():
            if base <= addr < base + self._arrays[name].size_words:
                return name
        raise SimulationError(f"address {addr} maps to no array")
