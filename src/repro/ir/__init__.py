"""A small Fortran-like parallel intermediate representation.

Programs are built from DOALL and serial loops over statements whose array
subscripts are affine expressions of loop indices, program parameters, and
scalar variables.  This is the substrate on which the paper's Polaris-based
compiler analyses are implemented.
"""

from repro.ir.expr import Affine, Cond, sym
from repro.ir.program import (
    Array,
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Procedure,
    Program,
    ScalarAssign,
    Sharing,
    Statement,
)
from repro.ir.builder import ProgramBuilder
from repro.ir.validate import validate_program

__all__ = [
    "Affine",
    "Array",
    "ArrayRef",
    "Call",
    "Cond",
    "CriticalSection",
    "If",
    "Loop",
    "Procedure",
    "Program",
    "ProgramBuilder",
    "ScalarAssign",
    "Sharing",
    "Statement",
    "sym",
    "validate_program",
]
