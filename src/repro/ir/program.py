"""The parallel program IR.

A :class:`Program` owns shared/private :class:`Array` declarations and a set
of :class:`Procedure` bodies.  Bodies are trees of nodes:

* :class:`Statement` — a group of array reads feeding array writes, with an
  attached compute cost in cycles;
* :class:`ScalarAssign` — assignment to an integer scalar (subscript helper);
* :class:`Loop` — serial loop or parallel DOALL over an index variable;
* :class:`If` — two-way branch on an affine comparison;
* :class:`Call` — invocation of another procedure (no arguments; procedures
  communicate through global arrays, like Fortran COMMON blocks);
* :class:`CriticalSection` — a lock-protected region (Section 5 of the paper).

Every :class:`ArrayRef` carries a globally unique ``site`` id assigned by the
builder; the compiler's marking pass keys its READ/TIME_READ decisions on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.ir.expr import Affine, Cond


class Sharing(enum.Enum):
    SHARED = "shared"
    PRIVATE = "private"


@dataclass(frozen=True)
class Array:
    """A declared array with a concrete rectangular shape (row-major).

    ``element_words`` is the access-unit size in 32-bit words (2 for
    double precision): the paper notes its scheme "can be adapted to
    various cache organizations including multi-word cache lines and
    byte-addressable architectures" because each access unit is a distinct
    compiler-analyzed variable — the simulator models a multi-word unit as
    that many consecutive word accesses, all carrying the reference's
    marking.  (Sub-word units are the same model with a smaller word.)
    """

    name: str
    shape: Tuple[int, ...]
    sharing: Sharing = Sharing.SHARED
    element_words: int = 1

    def __post_init__(self) -> None:
        if self.element_words < 1:
            raise ValueError("element_words must be at least 1")

    @property
    def n_elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def size_words(self) -> int:
        return self.n_elements * self.element_words

    @property
    def rank(self) -> int:
        return len(self.shape)


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted reference ``array[subs...]`` at a marked source site."""

    array: str
    subscripts: Tuple[Affine, ...]
    site: int = -1  # unique reference-site id, assigned by the builder

    def __str__(self) -> str:
        subs = ", ".join(str(s) for s in self.subscripts)
        return f"{self.array}[{subs}]"


@dataclass(frozen=True)
class Statement:
    """``writes[...] <- f(reads[...])`` plus ``work`` compute cycles."""

    reads: Tuple[ArrayRef, ...] = ()
    writes: Tuple[ArrayRef, ...] = ()
    work: int = 1
    label: str = ""


@dataclass(frozen=True)
class ScalarAssign:
    """``scalar := expr`` where expr is affine over indices/params/scalars."""

    name: str
    expr: Affine
    label: str = ""


@dataclass(frozen=True)
class Loop:
    """A counted loop over ``index`` from ``lo`` to ``hi`` inclusive.

    ``parallel=True`` makes it a DOALL: its iterations are independent tasks
    and its execution is one parallel *epoch*.  DOALLs must not contain other
    DOALLs (directly or through calls); the validator enforces this.
    """

    index: str
    lo: Affine
    hi: Affine
    body: Tuple["Node", ...]
    step: int = 1
    parallel: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.step == 0:
            raise ValueError("loop step must be non-zero")


@dataclass(frozen=True)
class If:
    """Two-way branch on an affine comparison."""

    cond: Cond
    then: Tuple["Node", ...]
    els: Tuple["Node", ...] = ()
    label: str = ""


@dataclass(frozen=True)
class Call:
    """Invocation of another procedure by name (globals-only linkage)."""

    callee: str
    label: str = ""


@dataclass(frozen=True)
class CriticalSection:
    """A region protected by a named lock.

    Inside a DOALL body this models inter-thread communication through a
    critical section: the paper requires reads inside it to be treated as
    potentially stale (Time-Reads) and its writes to be globally performed
    before the lock release.
    """

    lock: str
    body: Tuple["Node", ...]
    label: str = ""


Node = Union[Statement, ScalarAssign, Loop, If, Call, CriticalSection]


@dataclass(frozen=True)
class Procedure:
    name: str
    body: Tuple[Node, ...]


@dataclass
class Program:
    """A whole program: arrays, procedures, parameters, entry point."""

    name: str
    arrays: Dict[str, Array] = field(default_factory=dict)
    procedures: Dict[str, Procedure] = field(default_factory=dict)
    params: Dict[str, int] = field(default_factory=dict)
    entry: str = "main"
    n_sites: int = 0

    def array(self, name: str) -> Array:
        return self.arrays[name]

    def procedure(self, name: str) -> Procedure:
        return self.procedures[name]

    def bind_params(self, overrides: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Parameter environment: declared defaults plus overrides."""
        env = dict(self.params)
        if overrides:
            unknown = set(overrides) - set(env)
            if unknown:
                raise KeyError(f"unknown parameters {sorted(unknown)} for program {self.name}")
            env.update(overrides)
        return env


def walk(nodes: Tuple[Node, ...]):
    """Yield every node in a body, depth-first, pre-order."""
    for node in nodes:
        yield node
        if isinstance(node, Loop):
            yield from walk(node.body)
        elif isinstance(node, If):
            yield from walk(node.then)
            yield from walk(node.els)
        elif isinstance(node, CriticalSection):
            yield from walk(node.body)


def refs_of(stmt: Statement) -> List[Tuple[ArrayRef, bool]]:
    """All references of a statement as ``(ref, is_write)`` pairs, reads first."""
    pairs = [(r, False) for r in stmt.reads]
    pairs.extend((w, True) for w in stmt.writes)
    return pairs
