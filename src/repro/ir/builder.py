"""Fluent construction API for IR programs.

The builder assigns unique site ids to every array reference and supports
nested construction through context managers::

    b = ProgramBuilder("jacobi", params={"N": 64})
    b.array("A", (64, 64))
    b.array("B", (64, 64))
    with b.procedure("main"):
        with b.serial("t", 0, b.p("T") - 1):
            with b.doall("i", 1, 62):
                with b.serial("j", 1, 62):
                    b.stmt(
                        writes=[b.at("B", b.v("i"), b.v("j"))],
                        reads=[b.at("A", b.v("i") + 1, b.v("j")),
                               b.at("A", b.v("i") - 1, b.v("j"))],
                        work=4,
                    )
    program = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.ir.expr import Affine, Cond, IntLike
from repro.ir.program import (
    Array,
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Procedure,
    Program,
    ScalarAssign,
    Sharing,
    Statement,
)


class ProgramBuilder:
    """Builds a :class:`Program`; see the module docstring for usage."""

    def __init__(self, name: str, params: Optional[Dict[str, int]] = None):
        self._program = Program(name=name, params=dict(params or {}))
        self._site = 0
        self._stack: List[List[Node]] = []
        self._current_proc: Optional[str] = None

    # ---------------------------------------------------------------- decls

    def param(self, name: str, default: int) -> Affine:
        """Declare a program parameter and return a symbol for it."""
        self._program.params[name] = default
        return Affine.var(name)

    def array(self, name: str, shape: Sequence[int], *,
              private: bool = False, element_words: int = 1) -> str:
        """Declare an array; returns its name for convenience.

        ``element_words=2`` declares double-precision elements (each access
        touches two consecutive words).
        """
        if name in self._program.arrays:
            raise ValidationError(f"array {name!r} declared twice")
        sharing = Sharing.PRIVATE if private else Sharing.SHARED
        self._program.arrays[name] = Array(name, tuple(int(d) for d in shape),
                                           sharing, element_words)
        return name

    # ------------------------------------------------------------- symbols

    @staticmethod
    def v(name: str) -> Affine:
        """Reference a loop index or scalar variable."""
        return Affine.var(name)

    @staticmethod
    def p(name: str) -> Affine:
        """Reference a program parameter (same representation as v)."""
        return Affine.var(name)

    # ------------------------------------------------------------ contexts

    @contextlib.contextmanager
    def procedure(self, name: str):
        if self._current_proc is not None:
            raise ValidationError("procedures cannot nest")
        if name in self._program.procedures:
            raise ValidationError(f"procedure {name!r} declared twice")
        self._current_proc = name
        self._stack.append([])
        try:
            yield self
        finally:
            body = tuple(self._stack.pop())
            self._program.procedures[name] = Procedure(name, body)
            self._current_proc = None

    @contextlib.contextmanager
    def _loop(self, index: str, lo: IntLike, hi: IntLike, *, step: int,
              parallel: bool, label: str):
        self._require_proc()
        self._stack.append([])
        try:
            yield Affine.var(index)
        finally:
            body = tuple(self._stack.pop())
            self._emit(Loop(index=index, lo=Affine.of(lo), hi=Affine.of(hi),
                            body=body, step=step, parallel=parallel, label=label))

    def serial(self, index: str, lo: IntLike, hi: IntLike, *, step: int = 1,
               label: str = ""):
        """Open a serial loop; yields the index symbol."""
        return self._loop(index, lo, hi, step=step, parallel=False, label=label)

    def doall(self, index: str, lo: IntLike, hi: IntLike, *, step: int = 1,
              label: str = ""):
        """Open a parallel DOALL loop; yields the index symbol."""
        return self._loop(index, lo, hi, step=step, parallel=True, label=label)

    @contextlib.contextmanager
    def when(self, lhs: IntLike, op: str, rhs: IntLike, label: str = ""):
        """Open the then-branch of an If (no else; use if_else for both)."""
        self._require_proc()
        self._stack.append([])
        try:
            yield self
        finally:
            then = tuple(self._stack.pop())
            self._emit(If(Cond(Affine.of(lhs), op, Affine.of(rhs)), then, (), label))

    @contextlib.contextmanager
    def critical(self, lock: str = "L0", label: str = ""):
        """Open a critical section protected by the named lock."""
        self._require_proc()
        self._stack.append([])
        try:
            yield self
        finally:
            body = tuple(self._stack.pop())
            self._emit(CriticalSection(lock, body, label))

    def if_else(self, cond: Cond, then: Sequence[Node], els: Sequence[Node] = (),
                label: str = "") -> None:
        """Emit an If from already-built bodies (rarely needed)."""
        self._require_proc()
        self._emit(If(cond, tuple(then), tuple(els), label))

    # --------------------------------------------------------------- leaves

    def at(self, array: str, *subscripts: IntLike) -> ArrayRef:
        """Create a reference site ``array[subscripts...]``."""
        if array not in self._program.arrays:
            raise ValidationError(f"reference to undeclared array {array!r}")
        ref = ArrayRef(array, tuple(Affine.of(s) for s in subscripts), self._site)
        self._site += 1
        return ref

    def stmt(self, *, writes: Sequence[ArrayRef] = (), reads: Sequence[ArrayRef] = (),
             work: int = 1, label: str = "") -> None:
        self._require_proc()
        if work < 0:
            raise ValidationError("statement work must be non-negative")
        self._emit(Statement(tuple(reads), tuple(writes), work, label))

    def assign(self, name: str, expr: IntLike, label: str = "") -> Affine:
        """Emit a scalar assignment; returns a symbol for the scalar."""
        self._require_proc()
        self._emit(ScalarAssign(name, Affine.of(expr), label))
        return Affine.var(name)

    def call(self, callee: str, label: str = "") -> None:
        self._require_proc()
        self._emit(Call(callee, label))

    # ---------------------------------------------------------------- build

    def build(self, entry: str = "main", validate: bool = True) -> Program:
        from repro.ir.validate import validate_program

        if self._stack:
            raise ValidationError("build() called inside an open context")
        self._program.entry = entry
        self._program.n_sites = self._site
        if validate:
            validate_program(self._program)
        return self._program

    # -------------------------------------------------------------- helpers

    def _require_proc(self) -> None:
        if self._current_proc is None:
            raise ValidationError("statements must appear inside a procedure")

    def _emit(self, node: Node) -> None:
        self._stack[-1].append(node)
