"""Pretty-printer for IR programs, optionally annotated with marking.

Produces a Fortran-flavoured listing; with a :class:`repro.compiler.Marking`
supplied, every shared read is annotated with the compiler's decision the
way the paper's figures present marked source::

    DOALL i = 1, 30
      B[i, j] = f(A[-1 + i, j]{TIME-READ/strict}, ...)
    END DOALL
"""

from __future__ import annotations

from typing import List

from repro.ir.program import (
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Statement,
)


class _Printer:
    def __init__(self, program: Program, marking=None):
        self.program = program
        self.marking = marking
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.depth + text)

    def ref(self, ref: ArrayRef, is_read: bool) -> str:
        text = str(ref)
        if not is_read or self.marking is None:
            return text
        if self.program.arrays[ref.array].sharing.value != "shared":
            return text
        from repro.compiler.marking import RefMark

        if self.marking.tpi_mark(ref.site) is RefMark.TIME_READ:
            flavor = "strict" if self.marking.is_strict(ref.site) else "ts"
            return f"{text}{{TIME-READ/{flavor}}}"
        return text

    def body(self, nodes) -> None:
        self.depth += 1
        for node in nodes:
            self.node(node)
        self.depth -= 1

    def node(self, node: Node) -> None:
        if isinstance(node, Statement):
            writes = ", ".join(self.ref(w, False) for w in node.writes)
            reads = ", ".join(self.ref(r, True) for r in node.reads)
            if writes and reads:
                self.emit(f"{writes} = f({reads})")
            elif writes:
                self.emit(f"{writes} = f()")
            else:
                self.emit(f"use({reads})")
        elif isinstance(node, ScalarAssign):
            self.emit(f"{node.name} = {node.expr}")
        elif isinstance(node, Loop):
            kind = "DOALL" if node.parallel else "DO"
            step = f", {node.step}" if node.step != 1 else ""
            self.emit(f"{kind} {node.index} = {node.lo}, {node.hi}{step}")
            self.body(node.body)
            self.emit(f"END {kind}")
        elif isinstance(node, If):
            self.emit(f"IF ({node.cond.lhs} {node.cond.op} {node.cond.rhs}) THEN")
            self.body(node.then)
            if node.els:
                self.emit("ELSE")
                self.body(node.els)
            self.emit("END IF")
        elif isinstance(node, Call):
            self.emit(f"CALL {node.callee}")
        elif isinstance(node, CriticalSection):
            self.emit(f"CRITICAL ({node.lock})")
            self.body(node.body)
            self.emit("END CRITICAL")

    def run(self) -> str:
        p = self.program
        self.emit(f"PROGRAM {p.name}")
        self.depth += 1
        for name, value in p.params.items():
            self.emit(f"PARAMETER {name} = {value}")
        for array in p.arrays.values():
            shape = ", ".join(str(d) for d in array.shape)
            private = "  ! private" if array.sharing.value == "private" else ""
            self.emit(f"ARRAY {array.name}({shape}){private}")
        self.depth -= 1
        for proc in p.procedures.values():
            self.emit("")
            self.emit(f"SUBROUTINE {proc.name}")
            self.body(proc.body)
            self.emit(f"END SUBROUTINE {proc.name}")
        return "\n".join(self.lines)


def format_program(program: Program, marking=None) -> str:
    """Render a program listing, annotating reads when marking is given."""
    return _Printer(program, marking).run()
