"""Structural validation of IR programs.

Checks performed:

* the entry procedure exists and every Call resolves;
* the call graph is acyclic (no recursion — Fortran-77 style);
* array references match declared ranks and use declared arrays;
* every symbol in a subscript / bound / condition is a loop index in scope,
  a declared parameter, or a previously assigned scalar;
* DOALL bodies contain no nested DOALL, directly or through calls;
* critical sections contain no DOALL (a lock cannot be held across an
  epoch barrier);
* loop indices do not shadow parameters or outer indices;
* reference site ids are unique.

Two entry points share one traversal: :func:`validate_program` raises a
:class:`ValidationError` on the first problem (the historical behaviour
the builder relies on), while :func:`program_diagnostics` collects *every*
problem as :class:`repro.analysis.diagnostics.Diagnostic` values (rules
``VAL001``–``VAL012``) for ``repro lint``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.common.errors import ValidationError
from repro.ir.program import (
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Statement,
    walk,
)


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on the first structural problem found."""
    diagnostics = program_diagnostics(program)
    if diagnostics:
        raise ValidationError(diagnostics[0].message)


def program_diagnostics(program: Program) -> List[Diagnostic]:
    """Collect every structural problem (empty list == valid program)."""
    return _Validator(program).run()


class _Validator:
    def __init__(self, program: Program):
        self.program = program
        self.diagnostics: List[Diagnostic] = []
        self.seen_sites: Set[int] = set()
        self.undefined: Set[str] = set()
        self._doall_memo: Dict[str, bool] = {}

    def report(self, rule_id: str, message: str, *,
               proc: Optional[str] = None,
               site: Optional[int] = None) -> None:
        self.diagnostics.append(Diagnostic(rule_id, message, procedure=proc,
                                           site=site))

    def run(self) -> List[Diagnostic]:
        program = self.program
        if program.entry not in program.procedures:
            self.report("VAL001",
                        f"entry procedure {program.entry!r} is not defined")
        else:
            self._check_call_graph()
        for proc in program.procedures.values():
            scope = set(program.params)
            self._check_body(proc.body, scope, in_doall=False,
                             in_critical=False, proc=proc.name)
        return self.diagnostics

    # ------------------------------------------------------------ call graph

    def _check_call_graph(self) -> None:
        color: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(name: str, chain: Tuple[str, ...]) -> None:
            if name not in self.program.procedures:
                caller = f" (called from {chain[-1]!r})" if chain else ""
                if name not in self.undefined:
                    self.undefined.add(name)
                    self.report("VAL002",
                                f"call to undefined procedure {name!r}"
                                f"{caller}",
                                proc=chain[-1] if chain else None)
                return
            state = color.get(name)
            if state == 1:
                return
            if state == 0:
                self.report("VAL003",
                            "recursive call chain "
                            f"{' -> '.join(chain + (name,))}", proc=name)
                return
            color[name] = 0
            for node in walk(self.program.procedures[name].body):
                if isinstance(node, Call):
                    visit(node.callee, chain + (name,))
            color[name] = 1

        visit(self.program.entry, ())

    def _contains_doall(self, name: str) -> bool:
        memo = self._doall_memo
        if name in memo:
            return memo[name]
        memo[name] = False
        result = False
        for node in walk(self.program.procedures[name].body):
            if isinstance(node, Loop) and node.parallel:
                result = True
            elif (isinstance(node, Call)
                    and node.callee in self.program.procedures
                    and self._contains_doall(node.callee)):
                result = True
        memo[name] = result
        return result

    # ----------------------------------------------------------------- bodies

    def _check_body(self, body: Tuple[Node, ...], scope: Set[str],
                    in_doall: bool, in_critical: bool, proc: str) -> None:
        local_scope = set(scope)
        for node in body:
            if isinstance(node, Statement):
                for ref in (*node.reads, *node.writes):
                    self._check_ref(ref, local_scope, proc)
            elif isinstance(node, ScalarAssign):
                self._check_symbols(node.expr.symbols, local_scope, proc,
                                    what=f"scalar assignment to {node.name!r}")
                local_scope.add(node.name)
            elif isinstance(node, Loop):
                if node.parallel and in_doall:
                    self.report("VAL009",
                                f"nested DOALL over {node.index!r} in "
                                f"procedure {proc!r}", proc=proc)
                if node.parallel and in_critical:
                    self.report("VAL010",
                                f"DOALL over {node.index!r} inside a critical "
                                f"section in {proc!r} (a lock cannot span an "
                                "epoch barrier)", proc=proc)
                if node.index in local_scope:
                    self.report("VAL011",
                                f"loop index {node.index!r} shadows an "
                                f"enclosing symbol in {proc!r}", proc=proc)
                self._check_symbols(node.lo.symbols | node.hi.symbols,
                                    local_scope, proc,
                                    what=f"bounds of loop {node.index!r}")
                inner = set(local_scope)
                inner.add(node.index)
                self._check_body(node.body, inner, in_doall or node.parallel,
                                 in_critical, proc)
            elif isinstance(node, If):
                self._check_symbols(node.cond.symbols, local_scope, proc,
                                    what="if condition")
                self._check_body(node.then, set(local_scope), in_doall,
                                 in_critical, proc)
                self._check_body(node.els, set(local_scope), in_doall,
                                 in_critical, proc)
            elif isinstance(node, CriticalSection):
                self._check_body(node.body, set(local_scope), in_doall,
                                 True, proc)
            elif isinstance(node, Call):
                if node.callee not in self.program.procedures:
                    if node.callee not in self.undefined:
                        self.undefined.add(node.callee)
                        self.report("VAL002",
                                    f"call to undefined procedure "
                                    f"{node.callee!r} (called from {proc!r})",
                                    proc=proc)
                elif ((in_doall or in_critical)
                        and self._contains_doall(node.callee)):
                    self.report("VAL009" if in_doall else "VAL010",
                                f"call to {node.callee!r} inside a "
                                f"{'DOALL' if in_doall else 'critical section'}"
                                f" in {proc!r} would nest parallelism",
                                proc=proc)
            else:
                self.report("VAL012",
                            f"unknown node type {type(node).__name__} in "
                            f"procedure {proc!r}", proc=proc)

    def _check_ref(self, ref: ArrayRef, scope: Set[str], proc: str) -> None:
        site = ref.site if ref.site >= 0 else None
        if ref.array not in self.program.arrays:
            self.report("VAL004",
                        f"reference to undeclared array {ref.array!r} in "
                        f"{proc!r} (site {ref.site})", proc=proc, site=site)
            return
        array = self.program.arrays[ref.array]
        if len(ref.subscripts) != array.rank:
            self.report("VAL005",
                        f"{ref} has {len(ref.subscripts)} subscripts; "
                        f"{ref.array!r} has rank {array.rank} (procedure "
                        f"{proc!r}, site {ref.site})", proc=proc, site=site)
        if ref.site < 0:
            self.report("VAL006",
                        f"{ref} in {proc!r} was created outside a "
                        "ProgramBuilder (site id missing)", proc=proc)
        elif ref.site in self.seen_sites:
            self.report("VAL007",
                        f"site id {ref.site} reused in {proc!r} (refs must "
                        "not be shared between statements)", proc=proc,
                        site=site)
        else:
            self.seen_sites.add(ref.site)
        for sub in ref.subscripts:
            self._check_symbols(sub.symbols, scope, proc,
                                what=f"{ref} (site {ref.site})", site=site)

    def _check_symbols(self, symbols, scope: Set[str], proc: str, what: str,
                       site: Optional[int] = None) -> None:
        missing = set(symbols) - scope
        if missing:
            self.report("VAL008",
                        f"unbound symbol(s) {sorted(missing)} in {what} "
                        f"(procedure {proc!r})", proc=proc, site=site)
