"""Structural validation of IR programs.

Checks performed:

* the entry procedure exists and every Call resolves;
* the call graph is acyclic (no recursion — Fortran-77 style);
* array references match declared ranks and use declared arrays;
* every symbol in a subscript / bound / condition is a loop index in scope,
  a declared parameter, or a previously assigned scalar;
* DOALL bodies contain no nested DOALL, directly or through calls;
* critical sections contain no DOALL (a lock cannot be held across an
  epoch barrier);
* loop indices do not shadow parameters or outer indices;
* reference site ids are unique.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.common.errors import ValidationError
from repro.ir.program import (
    ArrayRef,
    Call,
    CriticalSection,
    If,
    Loop,
    Node,
    Program,
    ScalarAssign,
    Statement,
    walk,
)


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on the first structural problem found."""
    if program.entry not in program.procedures:
        raise ValidationError(f"entry procedure {program.entry!r} is not defined")
    _check_call_graph(program)
    seen_sites: Set[int] = set()
    for proc in program.procedures.values():
        scope = set(program.params)
        _check_body(program, proc.body, scope, in_doall=False,
                    in_critical=False, seen_sites=seen_sites, proc=proc.name)


def _check_call_graph(program: Program) -> None:
    color: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        if name not in program.procedures:
            raise ValidationError(f"call to undefined procedure {name!r}")
        state = color.get(name)
        if state == 1:
            return
        if state == 0:
            raise ValidationError(f"recursive call chain {' -> '.join(chain + (name,))}")
        color[name] = 0
        for node in walk(program.procedures[name].body):
            if isinstance(node, Call):
                visit(node.callee, chain + (name,))
        color[name] = 1

    visit(program.entry, ())


def _contains_doall(program: Program, name: str, memo: Dict[str, bool]) -> bool:
    if name in memo:
        return memo[name]
    memo[name] = False
    result = False
    for node in walk(program.procedures[name].body):
        if isinstance(node, Loop) and node.parallel:
            result = True
        elif isinstance(node, Call) and _contains_doall(program, node.callee, memo):
            result = True
    memo[name] = result
    return result


def _check_body(program: Program, body: Tuple[Node, ...], scope: Set[str],
                in_doall: bool, in_critical: bool, seen_sites: Set[int],
                proc: str) -> None:
    memo: Dict[str, bool] = {}
    local_scope = set(scope)
    for node in body:
        if isinstance(node, Statement):
            for ref in (*node.reads, *node.writes):
                _check_ref(program, ref, local_scope, seen_sites, proc)
        elif isinstance(node, ScalarAssign):
            _check_symbols(node.expr.symbols, local_scope, proc,
                           what=f"scalar assignment to {node.name!r}")
            local_scope.add(node.name)
        elif isinstance(node, Loop):
            if node.parallel and in_doall:
                raise ValidationError(
                    f"nested DOALL over {node.index!r} in procedure {proc!r}")
            if node.parallel and in_critical:
                raise ValidationError(
                    f"DOALL over {node.index!r} inside a critical section "
                    f"in {proc!r} (a lock cannot span an epoch barrier)")
            if node.index in local_scope:
                raise ValidationError(
                    f"loop index {node.index!r} shadows an enclosing symbol in {proc!r}")
            _check_symbols(node.lo.symbols | node.hi.symbols, local_scope, proc,
                           what=f"bounds of loop {node.index!r}")
            inner = set(local_scope)
            inner.add(node.index)
            _check_body(program, node.body, inner,
                        in_doall or node.parallel, in_critical, seen_sites, proc)
        elif isinstance(node, If):
            _check_symbols(node.cond.symbols, local_scope, proc, what="if condition")
            _check_body(program, node.then, set(local_scope), in_doall,
                        in_critical, seen_sites, proc)
            _check_body(program, node.els, set(local_scope), in_doall,
                        in_critical, seen_sites, proc)
        elif isinstance(node, CriticalSection):
            _check_body(program, node.body, set(local_scope), in_doall,
                        True, seen_sites, proc)
        elif isinstance(node, Call):
            if ((in_doall or in_critical)
                    and _contains_doall(program, node.callee, memo)):
                raise ValidationError(
                    f"call to {node.callee!r} inside a "
                    f"{'DOALL' if in_doall else 'critical section'} "
                    "would nest parallelism")
        else:  # pragma: no cover - dataclass union is closed
            raise ValidationError(f"unknown node type {type(node).__name__}")


def _check_ref(program: Program, ref: ArrayRef, scope: Set[str],
               seen_sites: Set[int], proc: str) -> None:
    if ref.array not in program.arrays:
        raise ValidationError(f"reference to undeclared array {ref.array!r} in {proc!r}")
    array = program.arrays[ref.array]
    if len(ref.subscripts) != array.rank:
        raise ValidationError(
            f"{ref} has {len(ref.subscripts)} subscripts; {ref.array!r} has rank {array.rank}")
    if ref.site < 0:
        raise ValidationError(f"{ref} was created outside a ProgramBuilder (site id missing)")
    if ref.site in seen_sites:
        raise ValidationError(f"site id {ref.site} reused (refs must not be shared between statements)")
    seen_sites.add(ref.site)
    for sub in ref.subscripts:
        _check_symbols(sub.symbols, scope, proc, what=str(ref))


def _check_symbols(symbols, scope: Set[str], proc: str, what: str) -> None:
    missing = set(symbols) - scope
    if missing:
        raise ValidationError(
            f"unbound symbol(s) {sorted(missing)} in {what} (procedure {proc!r})")
