"""Affine expressions over named symbols.

An :class:`Affine` is ``const + sum(coeff_s * s)`` over symbols ``s`` (loop
indices, program parameters, or scalar variables).  They are immutable,
hashable, and support the arithmetic needed for subscript analysis:
addition, subtraction, multiplication by integer constants, substitution,
and evaluation under a binding environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.common.errors import ValidationError

IntLike = Union[int, "Affine"]


def _normalize(coeffs: Mapping[str, int]) -> Tuple[Tuple[str, int], ...]:
    return tuple(sorted((s, c) for s, c in coeffs.items() if c != 0))


@dataclass(frozen=True)
class Affine:
    """An immutable affine expression ``const + sum(coeff * symbol)``."""

    const: int = 0
    terms: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def of(value: IntLike) -> "Affine":
        """Coerce an int or Affine to an Affine."""
        if isinstance(value, Affine):
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValidationError(f"cannot coerce {value!r} to an affine expression")
        return Affine(const=value)

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        return Affine(const=0, terms=_normalize({name: coeff}))

    @property
    def coeffs(self) -> Dict[str, int]:
        return dict(self.terms)

    @property
    def symbols(self) -> frozenset:
        return frozenset(s for s, _ in self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def coeff(self, symbol: str) -> int:
        return self.coeffs.get(symbol, 0)

    def __add__(self, other: IntLike) -> "Affine":
        other = Affine.of(other)
        coeffs = self.coeffs
        for s, c in other.terms:
            coeffs[s] = coeffs.get(s, 0) + c
        return Affine(self.const + other.const, _normalize(coeffs))

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(-self.const, _normalize({s: -c for s, c in self.terms}))

    def __sub__(self, other: IntLike) -> "Affine":
        return self + (-Affine.of(other))

    def __rsub__(self, other: IntLike) -> "Affine":
        return Affine.of(other) + (-self)

    def __mul__(self, k: int) -> "Affine":
        if isinstance(k, Affine):
            if k.is_constant:
                k = k.const
            elif self.is_constant:
                return k * self.const
            else:
                raise ValidationError("product of two non-constant affine expressions")
        if not isinstance(k, int):
            raise ValidationError(f"affine expressions scale by integers, not {k!r}")
        return Affine(self.const * k, _normalize({s: c * k for s, c in self.terms}))

    __rmul__ = __mul__

    def substitute(self, bindings: Mapping[str, IntLike]) -> "Affine":
        """Replace symbols by ints or other affine expressions."""
        result = Affine(self.const)
        for s, c in self.terms:
            if s in bindings:
                result = result + Affine.of(bindings[s]) * c
            else:
                result = result + Affine.var(s, c)
        return result

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate to an int; every symbol must be bound."""
        value = self.const
        for s, c in self.terms:
            if s not in env:
                raise ValidationError(f"unbound symbol {s!r} in {self}")
            value += c * env[s]
        return value

    def __str__(self) -> str:
        parts = [str(self.const)] if self.const or not self.terms else []
        for s, c in self.terms:
            if c == 1:
                parts.append(s)
            elif c == -1:
                parts.append(f"-{s}")
            else:
                parts.append(f"{c}*{s}")
        return " + ".join(parts).replace("+ -", "- ")


def sym(name: str) -> Affine:
    """Shorthand for a unit-coefficient symbol reference."""
    return Affine.var(name)


@dataclass(frozen=True)
class Cond:
    """A comparison ``lhs op rhs`` between affine expressions.

    Used by :class:`repro.ir.program.If`; the compiler treats both branches
    conservatively, the trace generator evaluates it exactly.
    """

    lhs: Affine
    op: str  # one of <, <=, >, >=, ==, !=
    rhs: Affine

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValidationError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return self._OPS[self.op](self.lhs.evaluate(env), self.rhs.evaluate(env))

    @property
    def symbols(self) -> frozenset:
        return self.lhs.symbols | self.rhs.symbols


def affine_tuple(values: Iterable[IntLike]) -> Tuple[Affine, ...]:
    """Coerce an iterable of ints/affines to a tuple of Affine."""
    return tuple(Affine.of(v) for v in values)
