"""Common interface of the coherence schemes.

A scheme is driven by the simulation engine one memory event at a time and
returns, per access, the processor-visible latency, the classified miss
kind, and the network traffic injected (words, by traffic class).  Schemes
own their caches, write buffers, and (for directories) global protocol
state; they share the :class:`SimContext` (shadow memory + network + the
compiler marking).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.common.config import MachineConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import MissKind
from repro.compiler.marking import Marking
from repro.memsys.memory import ShadowMemory
from repro.memsys.network import KruskalSnirNetwork
from repro.trace.layout import MemoryLayout


@dataclass(slots=True)
class AccessResult:
    """Outcome of one memory access as seen by the engine."""

    latency: int
    kind: MissKind
    read_words: int = 0
    write_words: int = 0
    coherence_words: int = 0
    version: int = 0  # version of the data the access observed (reads)

    @property
    def total_words(self) -> int:
        return self.read_words + self.write_words + self.coherence_words


@dataclass
class SimContext:
    """Shared state for one simulation run."""

    machine: MachineConfig
    marking: Marking
    shadow: ShadowMemory
    network: KruskalSnirNetwork
    layout: Optional[MemoryLayout] = None
    stats: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + amount


class CoherenceScheme(abc.ABC):
    """One coherence protocol under simulation."""

    name: str = "abstract"

    #: Timetag-reset counters (non-zero only for TPI; part of the shared
    #: metrics contract so the engine never needs ``hasattr`` probing).
    resets: int = 0
    reset_invalidations: int = 0

    #: Fast-engine batching contract (see :mod:`repro.sim.fastengine`).
    #:
    #: ``batch_hot_rule`` declares which lines are order-sensitive across
    #: processors within one epoch ("hot"); hot events replay in the
    #: reference heap order while everything else batches per task:
    #:
    #: * ``None`` — unknown coupling; the fast engine falls back to the
    #:   reference per-event path for every epoch (always safe default);
    #: * ``"none"`` — no access is order-sensitive (BASE: shared data is
    #:   never cached and version bumps commute);
    #: * ``"written"`` — lines touched by two or more processors *and*
    #:   written this epoch (the word-granularity schemes: only the shadow
    #:   memory couples processors);
    #: * ``"directory"`` — the ``"written"`` set plus whatever
    #:   :meth:`directory_hot_lines` adds (lines whose directory entry
    #:   makes even read-read sharing order-sensitive).
    #:
    #: ``batch_evict_coupled`` marks schemes whose *evictions* mutate
    #: global protocol state (directory entries, sharer sets); for those
    #: the fast engine additionally falls back whenever a replacement
    #: could touch a line another processor interacts with this epoch.
    batch_hot_rule: Optional[str] = None
    batch_evict_coupled: bool = False

    #: :class:`MachineConfig` fields this scheme provably never reads.
    #: Declaring a field here lets :meth:`repro.runtime.jobs.Job.fingerprint`
    #: drop it, so sweep cells differing only in a scheme-dead knob name
    #: the *same* result and the executor computes it once (e.g. the
    #: hardware directory is invariant to TPI's timetag width, collapsing
    #: the hw column of a fig15-style sweep to a single simulation).
    #: Opt-in and conservative: the default is "everything matters";
    #: tests/test_gang.py differentially pins each declaration.
    config_dead_fields: Tuple[str, ...] = ()

    def __init__(self, ctx: SimContext):
        self.ctx = ctx
        self.machine = ctx.machine
        self.network = ctx.network
        self.shadow = ctx.shadow

    # -- epoch lifecycle ----------------------------------------------------

    def begin_epoch(self, index: int, parallel: bool) -> Dict[int, int]:
        """Start an epoch; returns per-processor extra stall cycles
        (e.g. TPI's two-phase reset)."""
        return {}

    def end_epoch(self, write_key: Optional[int] = None) -> Dict[int, int]:
        """Finish an epoch (sync point).  Drains write buffers and applies
        the compiler-emitted per-array last-write-epoch updates for the
        static epoch identified by ``write_key``; returns per-processor
        words injected into the network at the barrier."""
        return {}

    # -- accesses -----------------------------------------------------------

    @abc.abstractmethod
    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        ...

    @abc.abstractmethod
    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        ...

    def release_fence(self, proc: int) -> AccessResult:
        """Make this processor's writes globally visible (lock release)."""
        return AccessResult(latency=0, kind=MissKind.HIT)

    # -- metrics ------------------------------------------------------------

    def extras(self) -> Dict[str, int]:
        """Scheme-specific counters merged into ``SimResult.extra``.

        Every engine collects scheme metrics through this one method (plus
        the ``resets``/``reset_invalidations`` attributes above), so adding
        a counter to a scheme is a one-place change.
        """
        return {}

    # -- fast-engine hooks --------------------------------------------------

    def directory_hot_lines(self, lines):
        """Subset of ``lines`` that is order-sensitive even without a write
        this epoch (``batch_hot_rule == "directory"`` only)."""
        return ()

    def make_batch_kernel(self):
        """Vectorized batch kernel for this scheme's hit path, or ``None``
        when the configuration has no vectorized kernel (the fast engine
        then runs its per-event merged-order path, which is still exact)."""
        return None

    # -- shared helpers -----------------------------------------------------

    def _check_read_version(self, addr: int, version: int,
                            exact: bool = False) -> None:
        """Coherence-safety oracle (enabled by ``machine.check_coherence``).

        Weak consistency requires a read to observe at least the version
        globally visible at the last barrier; an MSI directory must observe
        exactly the current version.
        """
        if not self.machine.check_coherence:
            return
        if exact:
            current = self.shadow.read_version(addr)
            if version != current:
                raise SimulationError(
                    f"{self.name}: read of word {addr} observed version "
                    f"{version}, expected exactly {current}")
        else:
            floor = self.shadow.visible_floor(addr)
            if version < floor:
                raise SimulationError(
                    f"{self.name}: stale read of word {addr}: observed "
                    f"version {version} < visible floor {floor}")


def scheme_registry() -> Dict[str, type]:
    """Name -> scheme class for every registered protocol."""
    from repro.coherence.base import BaseScheme
    from repro.coherence.directory import FullMapDirectoryScheme
    from repro.coherence.limitless import LimitLessScheme
    from repro.coherence.sc import SoftwareBypassScheme
    from repro.coherence.snoop import SnoopBusScheme
    from repro.coherence.tardis import TardisScheme
    from repro.coherence.tpi import TpiScheme
    from repro.coherence.update import UpdateDirectoryScheme

    return {
        "base": BaseScheme,
        "sc": SoftwareBypassScheme,
        "tpi": TpiScheme,
        "hw": FullMapDirectoryScheme,
        "limitless": LimitLessScheme,
        "update": UpdateDirectoryScheme,
        "tardis": TardisScheme,
        "snoop": SnoopBusScheme,
    }


def make_scheme(name: str, ctx: SimContext) -> CoherenceScheme:
    """Instantiate a scheme by its registry name (see SCHEME_NAMES)."""
    registry = scheme_registry()
    if name not in registry:
        raise ConfigError(f"unknown scheme {name!r}; choose from {sorted(registry)}")
    return registry[name](ctx)


def dead_config_fields(name: str) -> Tuple[str, ...]:
    """:class:`MachineConfig` fields the named scheme never reads.

    The runtime fingerprint prunes these before hashing, so two jobs
    differing only in a dead field share one cached/computed result.
    """
    registry = scheme_registry()
    if name not in registry:
        raise ConfigError(f"unknown scheme {name!r}; choose from {sorted(registry)}")
    return registry[name].config_dead_fields
