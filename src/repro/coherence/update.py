"""Write-update directory protocol (Firefly/Dragon-style with memory
update).

The paper remarks that the write-cache technique it proposes for TPI's
redundant writes "can also be employed to remove redundant write traffic
for update-based coherence protocols" [10] — which only makes sense with
an update protocol to apply it to, so one is provided.

Semantics: lines are never exclusive.  A read miss fetches the line and
joins the sharer set; a write updates the local copy, writes through to
memory, and sends the word to every other sharer, which patches its copy
in place — no invalidations, hence no false sharing and no true-sharing
*misses* at all: sharing costs show up purely as update traffic.  Writes
are buffered (weak consistency); with the coalescing buffer, updates merge
between synchronization points and each surviving word is broadcast once
at the drain — the redundant-write removal the paper alludes to.

Under sequential consistency each write instead stalls for the update
round trip.

Simplification: the per-word update of remote copies is applied at drain
time for the coalescing buffer and immediately for the FIFO buffer; both
orders are legal under weak consistency (and the simulator's per-read
version oracle checks the result continuously).
"""

from __future__ import annotations

from typing import Dict, Optional, Set


from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.common.config import ConsistencyModel, WriteBufferKind
from repro.common.errors import ProtocolError
from repro.common.stats import MissKind
from repro.memsys.cache import Cache
from repro.memsys.lazystate import LazyList, PerProcWords
from repro.memsys.wbuffer import WRITE_MESSAGE_WORDS


class UpdateDirectoryScheme(CoherenceScheme):
    name = "update"
    batch_hot_rule = "written"
    batch_evict_coupled = True
    # Updates push data directly; no timetags, no leases, and no sharer
    # directory config (the write-buffer kind *is* read: coalescing
    # merges updates).
    config_dead_fields = ("tpi", "directory", "tardis")

    def extras(self) -> Dict[str, int]:
        out = {"updates_sent": self.updates_sent,
               "buffered_writes": self.total_writes}
        if self.merged_writes:
            out["merged_writes"] = self.merged_writes
        return out

    def make_batch_kernel(self):
        from repro.coherence.batch import UpdateBatchKernel

        return UpdateBatchKernel.build(self)

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.sharers: Dict[int, Set[int]] = {}  # line -> procs with a copy
        self.line_words = machine.cache.line_words
        self.seen_lines: LazyList = LazyList(machine.n_procs, lambda _p: set())
        # Coalescing state: per processor, the words pending broadcast.
        self.coalescing = machine.write_buffer is WriteBufferKind.COALESCING
        self.pending: LazyList = LazyList(machine.n_procs, lambda _p: set())
        self.updates_sent = 0
        self.merged_writes = 0
        self.total_writes = 0

    # ---------------------------------------------------------------- epochs

    def end_epoch(self, write_key: Optional[int] = None) -> Dict[int, int]:
        drained = {proc: self._drain(proc)
                   for proc, _pending in self.pending.materialized()}
        return PerProcWords(self.machine.n_procs, drained)

    def release_fence(self, proc: int) -> AccessResult:
        words = self._drain(proc)
        return AccessResult(latency=self.network.control_latency() + words,
                            kind=MissKind.HIT, write_words=words)

    def _drain(self, proc: int) -> int:
        """Broadcast the pending (merged) updates of one processor."""
        words = 0
        for addr in sorted(self.pending[proc]):
            words += self._broadcast(proc, addr)
        self.pending[proc].clear()
        return words

    def _broadcast(self, writer: int, addr: int) -> int:
        """Send one word (at its *current* memory version) to memory and to
        every sharer; returns the network words injected.

        The writer's own copy is refreshed too: if several processors wrote
        the word between synchronization points (a racy program), whichever
        drain runs last leaves every copy at the final version, so all
        caches converge at the barrier.
        """
        line_addr = addr // self.line_words
        word = addr % self.line_words
        words = WRITE_MESSAGE_WORDS  # memory update
        version = self.shadow.read_version(addr)
        for proc in sorted(self.sharers.get(line_addr, ())):
            loc = self.caches[proc].probe(line_addr)
            if loc is None:
                raise ProtocolError(
                    f"update: sharer {proc} of line {line_addr} has no copy")
            self.caches[proc].version[loc.set_index, loc.way, word] = version
            if proc != writer:
                self.updates_sent += 1
                words += 2  # update word + header
        return words

    # -------------------------------------------------------------- accesses

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if loc is not None:
            cache.touch(loc)
            version = int(cache.version[loc.set_index, loc.way, word])
            if shared:
                self._check_read_version(addr, version)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)

        kind = (MissKind.REPLACEMENT if line_addr in self.seen_lines[proc]
                else MissKind.COLD)
        result = AccessResult(latency=self.network.miss_latency(self.line_words),
                              kind=kind, read_words=1 + self.line_words)
        loc, evicted, _dirty = cache.install(line_addr)
        if evicted is not None:
            self.sharers.get(evicted, set()).discard(proc)
            result.coherence_words += 1  # replacement hint
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        self.seen_lines[proc].add(line_addr)
        if shared:
            self.sharers.setdefault(line_addr, set()).add(proc)
        result.version = int(cache.version[s, w, word])
        if shared:
            self._check_read_version(addr, result.version)
        return result

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        result = AccessResult(latency=self.machine.hit_latency,
                              kind=MissKind.HIT)
        if loc is None:
            # Write-allocate: fetch and join the sharers.
            loc, evicted, _dirty = cache.install(line_addr)
            if evicted is not None:
                self.sharers.get(evicted, set()).discard(proc)
                result.coherence_words += 1
            s, w = loc.set_index, loc.way
            base = cache.line_base(line_addr)
            cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
            self.seen_lines[proc].add(line_addr)
            result.read_words += 1 + self.line_words
            if shared:
                self.sharers.setdefault(line_addr, set()).add(proc)
        s, w = loc.set_index, loc.way
        version = self.shadow.write(addr, proc)
        cache.version[s, w, word] = version
        cache.touch(loc)
        result.version = version
        self.total_writes += 1
        if shared:
            if self.coalescing:
                if addr in self.pending[proc]:
                    self.merged_writes += 1
                else:
                    self.pending[proc].add(addr)
            else:
                result.write_words += self._broadcast(proc, addr)
            if self.machine.consistency is ConsistencyModel.SEQUENTIAL:
                result.latency = self.network.word_latency()
        return result
