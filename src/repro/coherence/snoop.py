"""Bus-snooping MSI: the classic write-back invalidation baseline.

The state machine is the canonical three-state snooping protocol of
SNIPPETS.md §2: every cache watches the bus, a line is Modified
(resident + dirty, provably the only copy), Shared (resident + clean),
or Invalid.  A read miss (``BusRd``) is snooped by a dirty holder, who
flushes the line and demotes to Shared; a write to a Shared copy
(``BusUpgr``) invalidates every other holder without moving data; a
write miss (``BusRdX``) does both.  There is **no directory** — sharers
are found by the snoop itself, so evictions are silent (no replacement
hints) and a dirty eviction writes the line back.

This is the small-machine comparison point the paper's large-scale
argument starts from: broadcast snooping gives the same sharing misses
as the full-map directory (invalidations classified with the same
Tullsen-Eggers used-word criterion) without the directory's storage,
but every coherence action is a broadcast.  Dirty misses are serviced
cache-to-cache (counted in ``extras``), the snoop adding one control
crossing like the directory's 4-hop forward.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.common.config import ConsistencyModel
from repro.common.errors import ProtocolError
from repro.common.stats import MissKind
from repro.memsys.cache import Cache, CacheWay
from repro.memsys.lazystate import LazyList

_REASON_TRUE = 1
_REASON_FALSE = 2


class SnoopBusScheme(CoherenceScheme):
    name = "snoop"
    batch_hot_rule = "directory"
    batch_evict_coupled = True
    # Snooping finds sharers on the bus: no timetags, no write buffer
    # (writes hit in M or stall for the bus transaction), no directory,
    # no leases.
    config_dead_fields = ("tpi", "write_buffer", "directory", "tardis")

    def extras(self) -> Dict[str, int]:
        return {"invalidations_sent": self.invalidations_sent,
                "false_invalidations": self.false_invalidations,
                "cache_to_cache_transfers": self.cache_to_cache_transfers}

    def directory_hot_lines(self, lines):
        """Lines with a Modified copy are order-sensitive even read-read:
        the first reader's snoop demotes the owner and is serviced
        cache-to-cache."""
        out = []
        for line_addr in lines:
            if self._dirty_holder(int(line_addr)) is not None:
                out.append(int(line_addr))
        return out

    def make_batch_kernel(self):
        from repro.coherence.batch import SnoopBatchKernel

        return SnoopBatchKernel.build(self)

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.line_words = machine.cache.line_words
        self.seen_lines: LazyList = LazyList(machine.n_procs, lambda _p: set())
        self.inval_reason: LazyList = LazyList(machine.n_procs,
                                               lambda _p: dict())
        self.invalidations_sent = 0
        self.false_invalidations = 0
        self.cache_to_cache_transfers = 0

    # -------------------------------------------------------------- plumbing

    def _holders(self, line_addr: int) -> List[int]:
        """Every processor whose snoop would assert "shared" for the line."""
        return [proc for proc, cache in self.caches.materialized()
                if cache.probe(line_addr) is not None]

    def _dirty_holder(self, line_addr: int) -> Optional[int]:
        for proc, cache in self.caches.materialized():
            loc = cache.probe(line_addr)
            if loc is not None and cache.dirty[loc.set_index, loc.way]:
                return proc
        return None

    def _invalidate_holders(self, line_addr: int, word: int,
                            skip: int) -> AccessResult:
        """Invalidate every snooped copy except ``skip``'s; classify each."""
        out = AccessResult(latency=0, kind=MissKind.HIT)
        for target in self._holders(line_addr):
            if target == skip:
                continue
            cache = self.caches[target]
            loc = cache.probe(line_addr)
            assert loc is not None
            used_word = bool(cache.used[loc.set_index, loc.way, word])
            reason = _REASON_TRUE if used_word else _REASON_FALSE
            self.inval_reason[target][line_addr] = reason
            self.invalidations_sent += 1
            if reason == _REASON_FALSE:
                self.false_invalidations += 1
            if cache.dirty[loc.set_index, loc.way]:
                out.coherence_words += self.line_words  # dirty data returns
            cache.invalidate_line(loc)
            out.coherence_words += 2  # invalidate + ack
        return out

    def _fill(self, cache: Cache, proc: int, line_addr: int,
              result: AccessResult) -> CacheWay:
        loc, evicted, dirty = cache.install(line_addr)
        if evicted is not None and dirty:
            result.write_words += 1 + self.line_words  # silent write-back
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        result.read_words += 1 + self.line_words
        self.seen_lines[proc].add(line_addr)
        return loc

    def _miss_kind(self, proc: int, line_addr: int) -> MissKind:
        reason = self.inval_reason[proc].pop(line_addr, None)
        if reason == _REASON_TRUE:
            return MissKind.TRUE_SHARING
        if reason == _REASON_FALSE:
            return MissKind.FALSE_SHARING
        if line_addr in self.seen_lines[proc]:
            return MissKind.REPLACEMENT
        return MissKind.COLD

    # -------------------------------------------------------------- accesses

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if loc is not None:
            cache.touch(loc)
            cache.used[loc.set_index, loc.way, word] = True
            version = int(cache.version[loc.set_index, loc.way, word])
            if shared:
                self._check_read_version(addr, version, exact=True)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)

        kind = self._miss_kind(proc, line_addr) if shared else (
            MissKind.REPLACEMENT if line_addr in self.seen_lines[proc]
            else MissKind.COLD)
        result = AccessResult(latency=self.network.miss_latency(self.line_words),
                              kind=kind)
        if shared:
            owner = self._dirty_holder(line_addr)
            if owner is not None and owner != proc:
                # BusRd snooped by the M holder: flush + demote to S.
                owner_cache = self.caches[owner]
                owner_loc = owner_cache.probe(line_addr)
                assert owner_loc is not None
                owner_cache.dirty[owner_loc.set_index, owner_loc.way] = False
                result.latency += self.network.control_latency()
                result.coherence_words += 2 + self.line_words  # snoop + flush
                self.cache_to_cache_transfers += 1
        loc = self._fill(cache, proc, line_addr, result)
        cache.used[loc.set_index, loc.way, word] = True
        result.version = int(cache.version[loc.set_index, loc.way, word])
        if shared:
            self._check_read_version(addr, result.version, exact=True)
        return result

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if not shared:
            result = AccessResult(latency=self.machine.hit_latency,
                                  kind=MissKind.HIT)
            if loc is None:
                loc = self._fill(cache, proc, line_addr, result)
            version = self.shadow.write(addr, proc)
            s, w = loc.set_index, loc.way
            cache.dirty[s, w] = True
            cache.version[s, w, word] = version
            cache.used[s, w, word] = True
            cache.touch(loc)
            result.version = version
            return result

        result = AccessResult(latency=self.machine.hit_latency, kind=MissKind.HIT)
        sequential = self.machine.consistency is ConsistencyModel.SEQUENTIAL
        if loc is not None and cache.dirty[loc.set_index, loc.way]:
            pass  # silent write hit in M
        elif loc is not None:
            # BusUpgr from S: invalidate every other copy, no data moves.
            inval = self._invalidate_holders(line_addr, word, skip=proc)
            result.coherence_words += inval.coherence_words + 2  # upgrade rt
            if sequential:  # wait for the bus grant
                result.latency += self.network.control_latency()
        else:
            # BusRdX: classify, invalidate everyone, fetch exclusive.
            result.kind = self._miss_kind(proc, line_addr)
            owner = self._dirty_holder(line_addr)
            if owner is not None and owner != proc:
                owner_cache = self.caches[owner]
                owner_loc = owner_cache.probe(line_addr)
                assert owner_loc is not None
                used_word = bool(owner_cache.used[owner_loc.set_index,
                                                  owner_loc.way, word])
                reason = _REASON_TRUE if used_word else _REASON_FALSE
                self.inval_reason[owner][line_addr] = reason
                self.invalidations_sent += 1
                if reason == _REASON_FALSE:
                    self.false_invalidations += 1
                owner_cache.invalidate_line(owner_loc)
                result.coherence_words += 2 + self.line_words  # flush + inval
                self.cache_to_cache_transfers += 1
            else:
                inval = self._invalidate_holders(line_addr, word, skip=proc)
                result.coherence_words += inval.coherence_words
            loc = self._fill(cache, proc, line_addr, result)
            if sequential:  # the exclusive fetch is on the critical path
                result.latency += self.network.miss_latency(self.line_words)

        version = self.shadow.write(addr, proc)
        s, w = loc.set_index, loc.way
        cache.dirty[s, w] = True
        cache.version[s, w, word] = version
        cache.used[s, w, word] = True
        cache.touch(loc)
        result.version = version
        return result

    # ------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """MSI invariants, callable from tests after any access mix."""
        lines = set()
        for _proc, cache in self.caches.materialized():
            lines.update(int(tag) for tag in cache.tags.ravel() if tag != -1)
        for line_addr in lines:
            dirty_holders = []
            holders = []
            for proc, cache in self.caches.materialized():
                loc = cache.probe(line_addr)
                if loc is None:
                    continue
                holders.append(proc)
                if cache.dirty[loc.set_index, loc.way]:
                    dirty_holders.append(proc)
            if len(dirty_holders) > 1:
                raise ProtocolError(
                    f"line {line_addr}: multiple M copies {dirty_holders}")
            if dirty_holders and holders != dirty_holders:
                raise ProtocolError(
                    f"line {line_addr}: M copy at {dirty_holders[0]} "
                    f"coexists with copies at {holders}")
