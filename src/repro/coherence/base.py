"""The BASE scheme: shared data is never cached.

This is how users actually ran the Cray T3D and Intel Paragon without
software coherence support: private data is cached normally, every access to
shared data is a remote memory operation.  It is the floor any coherence
scheme must beat.
"""

from __future__ import annotations

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.common.config import ConsistencyModel
from repro.common.stats import MissKind
from repro.memsys.cache import Cache
from repro.memsys.lazystate import LazyList, TouchBitmap


class BaseScheme(CoherenceScheme):
    name = "base"
    # Shared accesses never touch a cache and version bumps commute, so no
    # line is order-sensitive within an epoch.
    batch_hot_rule = "none"
    # No timetags, no write buffer, no directory, no leases: BASE bypasses
    # the cache for shared data and reads none of those config subtrees.
    config_dead_fields = ("tpi", "write_buffer", "directory", "tardis")

    def make_batch_kernel(self):
        from repro.coherence.batch import BaseBatchKernel

        return BaseBatchKernel.build(self)

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.line_words = machine.cache.line_words
        self.touched = TouchBitmap(machine.n_procs, ctx.shadow.total_words)

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        if shared:
            version = self.shadow.read_version(addr)
            self._check_read_version(addr, version, exact=True)
            return AccessResult(latency=self.network.word_latency(),
                                kind=MissKind.UNCACHED, read_words=2,
                                version=version)
        return self._private_read(proc, addr)

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        version = self.shadow.write(addr, proc)
        if shared:
            # Remote store: buffered under weak consistency (1-cycle issue),
            # a full round trip under sequential consistency.
            latency = self.machine.hit_latency
            if self.machine.consistency is ConsistencyModel.SEQUENTIAL:
                latency = self.network.word_latency()
            return AccessResult(latency=latency,
                                kind=MissKind.UNCACHED, write_words=2,
                                version=version)
        return self._private_write(proc, addr, version)

    # ---------------------------------------------------------- private side

    def _private_read(self, proc: int, addr: int) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if loc is not None and cache.word_valid[loc.set_index, loc.way, word]:
            cache.touch(loc)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT)
        kind = MissKind.REPLACEMENT if self.touched[proc, addr] else MissKind.COLD
        self.touched[proc, addr] = True
        cache.install(line_addr)
        return AccessResult(latency=self.network.miss_latency(self.line_words),
                            kind=kind, read_words=1 + self.line_words)

    def _private_write(self, proc: int, addr: int, version: int) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        read_words = 0
        if loc is None:
            loc, _evicted, _dirty = cache.install(line_addr)
            read_words = 1 + self.line_words
        cache.word_valid[loc.set_index, loc.way, word] = True
        cache.touch(loc)
        self.touched[proc, addr] = True
        # Private data can stay write-back; local-memory traffic is free.
        return AccessResult(latency=self.machine.hit_latency, kind=MissKind.HIT,
                            read_words=read_words, version=version)
