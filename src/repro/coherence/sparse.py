"""Sparse limited-pointer directory state (the paper's fig5 organization).

The full-map scheme conceptually keeps one presence bit per processor per
memory line — O(P) state per line, the very storage blow-up Figure 5 uses
to motivate TPI.  This module stores the directory the way a DIR_i
hardware would: per line, a *state code* and an *owner* in dense-by-line
columns (what the batch kernels gather), plus up to ``i`` sharer
*pointers* in a compact ``(rows, i)`` pool; lines whose sharer count
exceeds the pointer capacity spill to a side table of Python sets,
mirroring the LimitLESS software-handled wide entries (the functional
trap cost stays in :mod:`repro.coherence.limitless` — it is computed
from the sharer *count*, so the storage organization is result-neutral).

Entries are :class:`DirEntry` proxies writing *through* to the columns,
so the batch kernel reads live arrays and the old O(n_lines) mirror
rebuild/resync machinery disappears entirely.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

import numpy as np

STATE_U, STATE_S, STATE_E = 0, 1, 2
_CODE_OF = {"U": STATE_U, "S": STATE_S, "E": STATE_E}
_NAME_OF = ("U", "S", "E")


class DirectoryStore:
    """Columnar directory state shared by the scheme and its batch kernel."""

    __slots__ = ("n_lines", "pointers", "state_code", "owner_p1",
                 "ptr_pool", "ptr_len", "overflow", "_rows_used")

    def __init__(self, n_lines: int, pointers: int):
        self.n_lines = n_lines
        self.pointers = max(1, int(pointers))
        # Dense by line; zeros = U/absent and "no owner" (owner is proc+1),
        # so untouched spans never commit memory.
        self.state_code = np.zeros(n_lines, dtype=np.uint8)
        self.owner_p1 = np.zeros(n_lines, dtype=np.int32)
        # One pool row per line that ever had a directory entry.
        self.ptr_pool = np.zeros((16, self.pointers), dtype=np.int32)
        self.ptr_len = np.zeros(16, dtype=np.int32)
        self.overflow: Dict[int, Set[int]] = {}
        self._rows_used = 0

    def new_row(self) -> int:
        row = self._rows_used
        if row == len(self.ptr_len):
            self.ptr_pool = np.concatenate(
                [self.ptr_pool, np.zeros_like(self.ptr_pool)])
            self.ptr_len = np.concatenate(
                [self.ptr_len, np.zeros_like(self.ptr_len)])
        self._rows_used = row + 1
        return row


class SharerSet:
    """Set-protocol view over one directory entry's sharer pointers."""

    __slots__ = ("_store", "_row")

    def __init__(self, store: DirectoryStore, row: int):
        self._store = store
        self._row = row

    # -- reads ---------------------------------------------------------------

    def __len__(self) -> int:
        spill = self._store.overflow.get(self._row)
        if spill is not None:
            return len(spill)
        return int(self._store.ptr_len[self._row])

    def __bool__(self) -> bool:
        return len(self) > 0

    def __contains__(self, proc: int) -> bool:
        spill = self._store.overflow.get(self._row)
        if spill is not None:
            return proc in spill
        n = int(self._store.ptr_len[self._row])
        return proc + 1 in self._store.ptr_pool[self._row, :n]

    def __iter__(self) -> Iterator[int]:
        spill = self._store.overflow.get(self._row)
        if spill is not None:
            return iter(sorted(spill))
        n = int(self._store.ptr_len[self._row])
        return iter(sorted(int(p) - 1
                           for p in self._store.ptr_pool[self._row, :n]))

    def __eq__(self, other) -> bool:
        if isinstance(other, (set, frozenset, SharerSet)):
            return set(self) == set(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"{{{', '.join(str(p) for p in self)}}}"

    def __sub__(self, other) -> Set[int]:
        return set(self) - set(other)

    # -- writes --------------------------------------------------------------

    def add(self, proc: int) -> None:
        store, row = self._store, self._row
        spill = store.overflow.get(row)
        if spill is not None:
            spill.add(proc)
            return
        n = int(store.ptr_len[row])
        if proc + 1 in store.ptr_pool[row, :n]:
            return
        if n < store.pointers:
            store.ptr_pool[row, n] = proc + 1
            store.ptr_len[row] = n + 1
        else:
            # Pointer overflow: spill to the software-handled wide entry.
            wide = {int(p) - 1 for p in store.ptr_pool[row, :n]}
            wide.add(proc)
            store.overflow[row] = wide
            store.ptr_pool[row, :] = 0
            store.ptr_len[row] = 0

    def discard(self, proc: int) -> None:
        store, row = self._store, self._row
        spill = store.overflow.get(row)
        if spill is not None:
            spill.discard(proc)
            if len(spill) <= store.pointers:
                self._refill(spill)
            return
        n = int(store.ptr_len[row])
        ptrs = store.ptr_pool[row]
        for i in range(n):
            if ptrs[i] == proc + 1:
                ptrs[i] = ptrs[n - 1]
                ptrs[n - 1] = 0
                store.ptr_len[row] = n - 1
                return

    def __isub__(self, other) -> "SharerSet":
        for proc in other:
            self.discard(proc)
        return self

    def _refill(self, procs) -> None:
        """Load ``procs`` (must fit the pointers) into the pool row."""
        store, row = self._store, self._row
        store.overflow.pop(row, None)
        store.ptr_pool[row, :] = 0
        for i, proc in enumerate(sorted(procs)):
            store.ptr_pool[row, i] = proc + 1
        store.ptr_len[row] = len(procs)

    def replace(self, procs) -> None:
        """Become exactly ``procs`` (the ``entry.sharers = {...}`` path)."""
        store, row = self._store, self._row
        procs = set(procs)
        if len(procs) <= store.pointers:
            self._refill(procs)
        else:
            store.ptr_pool[row, :] = 0
            store.ptr_len[row] = 0
            store.overflow[row] = procs


class DirEntry:
    """Directory state of one memory line (write-through proxy).

    Presents the mutable ``state`` / ``sharers`` / ``owner`` face the
    protocol code and tests use, while every write lands in the
    :class:`DirectoryStore` columns the batch kernel gathers.
    """

    __slots__ = ("_store", "_line", "_row")

    def __init__(self, store: DirectoryStore, line: int):
        self._store = store
        self._line = line
        self._row = store.new_row()

    @property
    def state(self) -> str:
        return _NAME_OF[self._store.state_code[self._line]]

    @state.setter
    def state(self, value: str) -> None:
        self._store.state_code[self._line] = _CODE_OF[value]

    @property
    def owner(self) -> int:
        return int(self._store.owner_p1[self._line]) - 1

    @owner.setter
    def owner(self, value: int) -> None:
        self._store.owner_p1[self._line] = value + 1

    @property
    def sharers(self) -> SharerSet:
        return SharerSet(self._store, self._row)

    @sharers.setter
    def sharers(self, value) -> None:
        if (isinstance(value, SharerSet) and value._store is self._store
                and value._row == self._row):
            return  # augmented assignment handing the same view back
        SharerSet(self._store, self._row).replace(value)

    def __repr__(self) -> str:
        return (f"DirEntry(state={self.state!r}, sharers={self.sharers!r}, "
                f"owner={self.owner})")


def hot_exclusive_lines(store: DirectoryStore, lines) -> List[int]:
    """The subset of ``lines`` in state E (vectorized gather)."""
    arr = np.asarray(lines, dtype=np.int64)
    if arr.size == 0:
        return []
    return [int(x) for x in arr[store.state_code[arr] == STATE_E]]
