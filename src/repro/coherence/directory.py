"""Full-map hardware directory: 3-state (I / read-shared / write-exclusive)
invalidation protocol with write-back caches [8, 3].

This is the paper's hardware comparison point.  Coherence is line-grained,
which is what exposes it to **false sharing** on multi-word lines; misses
caused by invalidations are classified with the Tullsen-Eggers criterion
[34]: an invalidation is *false* if the invalidating write hit a word the
invalidated processor had not used since filling the block, and every
subsequent invalidation miss on that block inherits the classification
until the block is refetched.

Weak consistency: writes never stall the processor (the invalidation /
ownership transaction proceeds in the background and is accounted as
network traffic); reads stall for the full miss path.  A read serviced by a
remote dirty owner pays an extra network crossing (the classic 4-hop
transaction).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.coherence.sparse import DirectoryStore, DirEntry, hot_exclusive_lines
from repro.common.config import ConsistencyModel
from repro.common.errors import ProtocolError
from repro.common.stats import MissKind
from repro.memsys.cache import Cache, CacheWay
from repro.memsys.lazystate import LazyList

_REASON_TRUE = 1
_REASON_FALSE = 2


class FullMapDirectoryScheme(CoherenceScheme):
    name = "hw"
    batch_hot_rule = "directory"
    batch_evict_coupled = True
    # The full-map directory keeps one presence bit per processor — the
    # DirectoryConfig knobs are LimitLess-only — and uses neither timetags,
    # a write buffer, nor leases, so fig15/fig17-style sweeps collapse its
    # column.
    config_dead_fields = ("tpi", "write_buffer", "directory", "tardis")

    def extras(self) -> Dict[str, int]:
        return {"invalidations_sent": self.invalidations_sent,
                "false_invalidations": self.false_invalidations}

    def directory_hot_lines(self, lines):
        """Lines in state E are order-sensitive even read-read: the first
        reader pays the 4-hop owner forward and demotes the entry."""
        return hot_exclusive_lines(self.dirstore, lines)

    def make_batch_kernel(self):
        from repro.coherence.batch import DirectoryBatchKernel

        return DirectoryBatchKernel.build(self)

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.directory: Dict[int, DirEntry] = {}
        self.line_words = machine.cache.line_words
        n_lines = -(-ctx.shadow.total_words // self.line_words)
        self.dirstore = DirectoryStore(n_lines,
                                       machine.directory.limitless_pointers)
        self.seen_lines: LazyList = LazyList(machine.n_procs, lambda _p: set())
        self.inval_reason: LazyList = LazyList(machine.n_procs,
                                               lambda _p: dict())
        self.invalidations_sent = 0
        self.false_invalidations = 0

    # ------------------------------------------------------------- plumbing

    def _entry(self, line_addr: int) -> DirEntry:
        entry = self.directory.get(line_addr)
        if entry is None:
            entry = DirEntry(self.dirstore, line_addr)
            self.directory[line_addr] = entry
        return entry

    def _overflow_penalty(self, n_sharers: int) -> int:
        """Hook for the LimitLess subclass; full-map pays nothing."""
        return 0

    def _invalidate_sharers(self, line_addr: int, word: int,
                            skip: int) -> AccessResult:
        """Invalidate every cached copy except ``skip``'s; classify each."""
        entry = self._entry(line_addr)
        out = AccessResult(latency=0, kind=MissKind.HIT)
        targets = (entry.sharers - {skip}) if entry.state == "S" else (
            {entry.owner} - {skip} if entry.state == "E" else set())
        out.latency += self._overflow_penalty(len(targets))
        for target in sorted(targets):
            cache = self.caches[target]
            loc = cache.probe(line_addr)
            if loc is None:
                raise ProtocolError(
                    f"directory lists proc {target} for line {line_addr} "
                    "but its cache has no copy")
            used_word = bool(cache.used[loc.set_index, loc.way, word])
            reason = _REASON_TRUE if used_word else _REASON_FALSE
            self.inval_reason[target][line_addr] = reason
            self.invalidations_sent += 1
            if reason == _REASON_FALSE:
                self.false_invalidations += 1
            if cache.dirty[loc.set_index, loc.way]:
                out.coherence_words += self.line_words  # dirty data returns
            cache.invalidate_line(loc)
            out.coherence_words += 2  # invalidate + ack
        entry.sharers -= targets
        if entry.state == "E" and entry.owner in targets:
            entry.owner = -1
            entry.state = "S" if entry.sharers else "U"
        if entry.state == "S" and not entry.sharers:
            entry.state = "U"
        return out

    def _evict(self, cache: Cache, proc: int, evicted: Optional[int],
               dirty: bool, result: AccessResult) -> None:
        """Directory bookkeeping for a replacement."""
        if evicted is None:
            return
        entry = self.directory.get(evicted)
        if entry is not None:
            entry.sharers.discard(proc)
            if entry.state == "E" and entry.owner == proc:
                entry.owner = -1
                entry.state = "U"
            elif entry.state == "S" and not entry.sharers:
                entry.state = "U"
            result.coherence_words += 1  # replacement hint to the home node
        if dirty:
            result.write_words += 1 + self.line_words  # write-back

    def _fill(self, cache: Cache, proc: int, line_addr: int,
              result: AccessResult) -> CacheWay:
        loc, evicted, dirty = cache.install(line_addr)
        self._evict(cache, proc, evicted, dirty, result)
        s, w = loc.set_index, loc.way
        base = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base:base + self.line_words]
        result.read_words += 1 + self.line_words
        self.seen_lines[proc].add(line_addr)
        return loc

    def _miss_kind(self, proc: int, line_addr: int) -> MissKind:
        reason = self.inval_reason[proc].pop(line_addr, None)
        if reason == _REASON_TRUE:
            return MissKind.TRUE_SHARING
        if reason == _REASON_FALSE:
            return MissKind.FALSE_SHARING
        if line_addr in self.seen_lines[proc]:
            return MissKind.REPLACEMENT
        return MissKind.COLD

    # -------------------------------------------------------------- accesses

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if loc is not None:
            cache.touch(loc)
            cache.used[loc.set_index, loc.way, word] = True
            version = int(cache.version[loc.set_index, loc.way, word])
            if shared:
                self._check_read_version(addr, version, exact=True)
            return AccessResult(latency=self.machine.hit_latency,
                                kind=MissKind.HIT, version=version)

        kind = self._miss_kind(proc, line_addr) if shared else (
            MissKind.REPLACEMENT if line_addr in self.seen_lines[proc]
            else MissKind.COLD)
        result = AccessResult(latency=self.network.miss_latency(self.line_words),
                              kind=kind)
        if shared:
            entry = self._entry(line_addr)
            if entry.state == "E" and entry.owner != proc:
                # 4-hop: forward to the dirty owner, who supplies the data
                # and writes back; our copy and his become read-shared.
                owner_cache = self.caches[entry.owner]
                owner_loc = owner_cache.probe(line_addr)
                if owner_loc is None:
                    raise ProtocolError(
                        f"directory owner {entry.owner} of line {line_addr} "
                        "has no cached copy")
                owner_cache.dirty[owner_loc.set_index, owner_loc.way] = False
                result.latency += self.network.control_latency()
                result.coherence_words += 2 + self.line_words  # fwd + wb data
                entry.sharers = {entry.owner}
                entry.owner = -1
                entry.state = "S"
            entry.sharers.add(proc)
            if entry.state == "U":
                entry.state = "S"
        loc = self._fill(cache, proc, line_addr, result)
        cache.used[loc.set_index, loc.way, word] = True
        result.version = int(cache.version[loc.set_index, loc.way, word])
        if shared:
            self._check_read_version(addr, result.version, exact=True)
        return result

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if not shared:
            result = AccessResult(latency=self.machine.hit_latency,
                                  kind=MissKind.HIT)
            if loc is None:
                loc = self._fill(cache, proc, line_addr, result)
            version = self.shadow.write(addr, proc)
            s, w = loc.set_index, loc.way
            cache.dirty[s, w] = True
            cache.version[s, w, word] = version
            cache.used[s, w, word] = True
            cache.touch(loc)
            result.version = version
            return result

        entry = self._entry(line_addr)
        result = AccessResult(latency=self.machine.hit_latency, kind=MissKind.HIT)

        sequential = self.machine.consistency is ConsistencyModel.SEQUENTIAL
        if loc is not None and entry.state == "E" and entry.owner == proc:
            pass  # silent write hit in M
        elif loc is not None:
            # Upgrade from read-shared: invalidate the other sharers.
            inval = self._invalidate_sharers(line_addr, word, skip=proc)
            result.coherence_words += inval.coherence_words + 2  # upgrade rt
            result.latency += inval.latency
            if sequential:  # wait for the grant + acks
                result.latency += self.network.control_latency()
            entry.state = "E"
            entry.owner = proc
            entry.sharers = {proc}
        else:
            # Write miss: classify, obtain an exclusive copy.
            result.kind = self._miss_kind(proc, line_addr)
            if entry.state == "E" and entry.owner != proc:
                owner_cache = self.caches[entry.owner]
                owner_loc = owner_cache.probe(line_addr)
                if owner_loc is None:
                    raise ProtocolError(
                        f"directory owner {entry.owner} of line {line_addr} "
                        "has no cached copy")
                used_word = bool(owner_cache.used[owner_loc.set_index,
                                                  owner_loc.way, word])
                reason = _REASON_TRUE if used_word else _REASON_FALSE
                self.inval_reason[entry.owner][line_addr] = reason
                self.invalidations_sent += 1
                if reason == _REASON_FALSE:
                    self.false_invalidations += 1
                owner_cache.invalidate_line(owner_loc)
                result.coherence_words += 2 + self.line_words
            elif entry.state == "S":
                inval = self._invalidate_sharers(line_addr, word, skip=proc)
                result.coherence_words += inval.coherence_words
                result.latency += inval.latency
            loc = self._fill(cache, proc, line_addr, result)
            if sequential:  # the exclusive fetch is on the critical path
                result.latency += self.network.miss_latency(self.line_words)
            entry.state = "E"
            entry.owner = proc
            entry.sharers = {proc}

        version = self.shadow.write(addr, proc)
        s, w = loc.set_index, loc.way
        cache.dirty[s, w] = True
        cache.version[s, w, word] = version
        cache.used[s, w, word] = True
        cache.touch(loc)
        result.version = version
        return result

    # ------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """Protocol invariants, callable from tests after any access mix."""
        for line_addr, entry in self.directory.items():
            holders = {p for p, cache in self.caches.materialized()
                       if cache.probe(line_addr) is not None}
            if entry.state == "U" and holders:
                raise ProtocolError(f"line {line_addr}: U but cached by {holders}")
            if entry.state == "S" and holders != entry.sharers:
                raise ProtocolError(
                    f"line {line_addr}: sharers {entry.sharers} != holders {holders}")
            if entry.state == "E":
                if holders != {entry.owner}:
                    raise ProtocolError(
                        f"line {line_addr}: E owned by {entry.owner} but "
                        f"cached by {holders}")
            dirty_holders = set()
            for p, cache in self.caches.materialized():
                loc = cache.probe(line_addr)
                if loc is not None and cache.dirty[loc.set_index, loc.way]:
                    dirty_holders.add(p)
            if dirty_holders and entry.state != "E":
                raise ProtocolError(
                    f"line {line_addr}: dirty copies {dirty_holders} in state "
                    f"{entry.state}")
            if len(dirty_holders) > 1:
                raise ProtocolError(
                    f"line {line_addr}: multiple dirty copies {dirty_holders}")
