"""Tardis timestamp-coherence: leases instead of invalidations.

Tardis / Tardis 2.0 (PAPERS.md) is the modern descendant of TPI's
timetag idea, and the natural "2015" column of an ISCA-1996-vs-2015
comparison: where TPI relies on the *compiler* to bound staleness by
epoch, Tardis is hardware-only — every cached line carries a read lease
``rts`` and a write timestamp ``wts`` in logical time, every processor
carries a program timestamp ``pts``, and a cached copy may serve a read
exactly while its lease is live (``rts >= pts``,
:func:`repro.coherence.tardis_rules.lease_hit`).  There are **no
invalidation or update messages at all**: a write is simply ordered
after every lease on the line (``max(pts, mem_rts + 1)``), so live
readers keep reading the old value at an earlier logical time, and a
barrier joins every ``pts`` to the global maximum — which is what makes
pre-barrier writes expire every stale lease (weak consistency's visible
floor, continuously checked by the per-read version oracle).

An expired lease re-validates against the home node: a data-less
*renewal* (two control words) when the line was not written since the
fill (:func:`~repro.coherence.tardis_rules.renewal_ok`), a full
re-fetch otherwise.  Writes go through to home
(:data:`~repro.memsys.wbuffer.WRITE_MESSAGE_WORDS`); evictions are
purely local — leases live at the home node, so there is nothing to
tell it.

The hardware's ``k``-bit bounded timestamps are modeled by Tardis 2.0's
timestamp compression: the scheme tracks the representable window base
and *rebases* at a barrier whenever the lease frontier would leave the
window, clamping every stored timestamp to the new base (rebase
granularity is the epoch, so a pathological single epoch can mint more
than ``2^k`` timestamps between checks — the model's one acknowledged
approximation).  All decision rules live in
:mod:`repro.coherence.tardis_rules`, shared verbatim with the batched
kernel and the bounded-exhaustive model checker
(:mod:`repro.analysis.modelcheck_tardis`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.coherence import tardis_rules
from repro.coherence.api import AccessResult, CoherenceScheme, SimContext
from repro.common.config import ConsistencyModel
from repro.common.errors import ProtocolError
from repro.common.stats import MissKind
from repro.memsys.cache import Cache, CacheWay
from repro.memsys.lazystate import LazyList, SparseValues
from repro.memsys.wbuffer import WRITE_MESSAGE_WORDS


class TardisScheme(CoherenceScheme):
    name = "tardis"
    # Only the shadow memory and the home-node timestamps couple
    # processors: lease hits mutate nothing, grants are commutative
    # maxima, and a line written by one processor and touched by another
    # is hot by definition of the rule.
    batch_hot_rule = "written"
    # Evictions drop a local copy and nothing else — the home node's
    # ``mem_rts`` already covers every outstanding lease.
    batch_evict_coupled = False
    # Pure hardware timestamps: no compiler timetags, no write buffer
    # (writes go through unbuffered), no sharer directory of any kind.
    config_dead_fields = ("tpi", "write_buffer", "directory")

    def extras(self) -> Dict[str, int]:
        return {"lease_renewals": self.lease_renewals,
                "lease_expiries": self.lease_expiries,
                "rebases": self.rebases}

    def make_batch_kernel(self):
        from repro.coherence.batch import TardisBatchKernel

        return TardisBatchKernel.build(self)

    def __init__(self, ctx: SimContext):
        super().__init__(ctx)
        machine = self.machine
        self.caches: LazyList = LazyList(machine.n_procs,
                                         lambda _p: Cache(machine.cache))
        self.line_words = machine.cache.line_words
        self.lease = machine.tardis.lease
        self.modulus = machine.tardis.modulus
        self.seen_lines: LazyList = LazyList(machine.n_procs, lambda _p: set())
        # Per-processor program timestamps and per-line cached lease state,
        # parallel to the Cache arrays so the batched kernel gets views.
        # A lease slot is only ever consulted for a *resident* line, and
        # every fill overwrites the slot, so lazily materialized rows of
        # zeros are indistinguishable from eager ones.
        self.pts: SparseValues = SparseValues(machine.n_procs, 0)
        shape = (machine.cache.n_sets, machine.cache.associativity)
        self.rts_a: LazyList = LazyList(
            machine.n_procs, lambda _p: np.zeros(shape, dtype=np.int64))
        self.wts_a: LazyList = LazyList(
            machine.n_procs, lambda _p: np.zeros(shape, dtype=np.int64))
        # Home-node timestamps; absent means never leased / never written.
        self.mem_rts: Dict[int, int] = {}
        self.mem_wts: Dict[int, int] = {}
        # The representable-window base starts one below the smallest
        # mintable timestamp, so renewal_ok's ``mem_wts > base`` guard
        # accepts the never-written (wts == 0) state; after the first
        # rebase the base is a genuine clamp value.
        self.base = -1
        self.lease_renewals = 0
        self.lease_expiries = 0
        self.rebases = 0

    # ---------------------------------------------------------------- epochs

    def end_epoch(self, write_key: Optional[int] = None) -> Dict[int, int]:
        joined = tardis_rules.pts_join(self.pts.distinct())
        self.pts.fill(joined)
        if tardis_rules.rebase_needed(joined, self.lease, self.base,
                                      self.modulus):
            self._rebase(joined)
        return {}

    def _rebase(self, pts: int) -> None:
        """Tardis 2.0 timestamp compression: clamp everything to a new base."""
        self.base = tardis_rules.rebase_base(pts, self.modulus)
        for _proc, rts in self.rts_a.materialized():
            rts[:] = tardis_rules.clamp(rts, self.base)
        for _proc, wts in self.wts_a.materialized():
            wts[:] = tardis_rules.clamp(wts, self.base)
        self.mem_rts = {line: int(tardis_rules.clamp(ts, self.base))
                        for line, ts in self.mem_rts.items()}
        self.mem_wts = {line: int(tardis_rules.clamp(ts, self.base))
                        for line, ts in self.mem_wts.items()}
        self.rebases += 1

    # -------------------------------------------------------------- plumbing

    def _home_rts(self, line_addr: int) -> int:
        """Home read lease, floored at the window base: after a rebase no
        timestamp below ``base`` exists anywhere, including the implicit
        zero of a line the home never saw."""
        return max(self.mem_rts.get(line_addr, 0), self.base)

    def _home_wts(self, line_addr: int) -> int:
        return max(self.mem_wts.get(line_addr, 0), self.base)

    def _fill(self, cache: Cache, proc: int, line_addr: int,
              result: AccessResult) -> CacheWay:
        loc, _evicted, _dirty = cache.install(line_addr)
        s, w = loc.set_index, loc.way
        base_addr = cache.line_base(line_addr)
        cache.version[s, w, :] = self.shadow.version[base_addr:base_addr
                                                     + self.line_words]
        # Reset the lease slot: the previous occupant's timestamps must
        # not leak onto the new line (a line filled by a *private* access
        # — lines may straddle the shared/private boundary — would
        # otherwise inherit a live lease).  ``rts = 0`` holds no lease
        # beyond pts 0; the copy is current as of this instant, which is
        # exactly ``wts = mem_wts``.
        self.rts_a[proc][s, w] = 0
        self.wts_a[proc][s, w] = self._home_wts(line_addr)
        result.read_words += 1 + self.line_words
        self.seen_lines[proc].add(line_addr)
        return loc

    def _grant(self, proc: int, line_addr: int, loc: CacheWay) -> None:
        """Lease the line to ``proc``: commutative at home, own-stamp local."""
        pts = self.pts[proc]
        self.mem_rts[line_addr] = int(tardis_rules.lease_grant(
            pts, self._home_rts(line_addr), self.lease))
        s, w = loc.set_index, loc.way
        self.rts_a[proc][s, w] = tardis_rules.own_lease(pts, self.lease)
        self.wts_a[proc][s, w] = self._home_wts(line_addr)

    # -------------------------------------------------------------- accesses

    def read(self, proc: int, addr: int, site: int, shared: bool,
             in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        if not shared:
            if loc is not None:
                cache.touch(loc)
                version = int(cache.version[loc.set_index, loc.way, word])
                return AccessResult(latency=self.machine.hit_latency,
                                    kind=MissKind.HIT, version=version)
            kind = (MissKind.REPLACEMENT if line_addr in self.seen_lines[proc]
                    else MissKind.COLD)
            result = AccessResult(
                latency=self.network.miss_latency(self.line_words), kind=kind)
            loc = self._fill(cache, proc, line_addr, result)
            result.version = int(cache.version[loc.set_index, loc.way, word])
            return result

        pts = self.pts[proc]
        if loc is not None:
            s, w = loc.set_index, loc.way
            if tardis_rules.lease_hit(pts, int(self.rts_a[proc][s, w])):
                cache.touch(loc)
                version = int(cache.version[s, w, word])
                self._check_read_version(addr, version)
                return AccessResult(latency=self.machine.hit_latency,
                                    kind=MissKind.HIT, version=version)
            # Expired lease: re-validate against the home node.
            self.lease_expiries += 1
            cached_wts = int(self.wts_a[proc][s, w])
            mem_wts = self._home_wts(line_addr)
            if tardis_rules.renewal_ok(cached_wts, mem_wts, self.base):
                # Unwritten since the fill: renew without moving data.
                self.lease_renewals += 1
                self._grant(proc, line_addr, loc)
                cache.touch(loc)
                version = int(cache.version[s, w, word])
                self._check_read_version(addr, version)
                return AccessResult(latency=self.network.word_latency(),
                                    kind=MissKind.CONSERVATIVE,
                                    coherence_words=2, version=version)
            if cached_wts == mem_wts:
                # Current but clamp-ambiguous after a rebase: the data
                # was fresh, only the proof expired.
                kind = MissKind.CONSERVATIVE
            elif int(cache.version[s, w, word]) == self.shadow.read_version(addr):
                kind = MissKind.FALSE_SHARING  # line written, word untouched
            else:
                kind = MissKind.TRUE_SHARING
            result = AccessResult(
                latency=self.network.miss_latency(self.line_words), kind=kind)
        else:
            kind = (MissKind.REPLACEMENT if line_addr in self.seen_lines[proc]
                    else MissKind.COLD)
            result = AccessResult(
                latency=self.network.miss_latency(self.line_words), kind=kind)
        loc = self._fill(cache, proc, line_addr, result)
        self._grant(proc, line_addr, loc)
        result.version = int(cache.version[loc.set_index, loc.way, word])
        self._check_read_version(addr, result.version)
        return result

    def write(self, proc: int, addr: int, site: int, shared: bool,
              in_critical: bool) -> AccessResult:
        cache = self.caches[proc]
        line_addr, _, word = cache.split(addr)
        loc = cache.probe(line_addr)
        result = AccessResult(latency=self.machine.hit_latency,
                              kind=MissKind.HIT)
        if loc is None:
            # Write-allocate; the stamping below covers the lease state.
            loc = self._fill(cache, proc, line_addr, result)
        elif shared and not tardis_rules.renewal_ok(
                int(self.wts_a[proc][loc.set_index, loc.way]),
                self._home_wts(line_addr), self.base):
            # The write stamps the *whole line* current through ts_w, so
            # a copy that may have missed a remote write since its fill
            # must re-validate with a data fetch first (Tardis's
            # exclusive-ownership upgrade); otherwise the write would
            # re-lease stale sibling words.
            loc = self._fill(cache, proc, line_addr, result)
        s, w = loc.set_index, loc.way
        version = self.shadow.write(addr, proc)
        cache.version[s, w, word] = version
        cache.touch(loc)
        result.version = version
        if shared:
            ts_w = int(tardis_rules.write_timestamp(
                self.pts[proc], self._home_rts(line_addr)))
            self.pts[proc] = ts_w
            self.mem_wts[line_addr] = ts_w
            self.mem_rts[line_addr] = ts_w
            self.wts_a[proc][s, w] = ts_w
            self.rts_a[proc][s, w] = ts_w
            result.write_words += WRITE_MESSAGE_WORDS  # write-through to home
            if self.machine.consistency is ConsistencyModel.SEQUENTIAL:
                result.latency = self.network.word_latency()
        return result

    # ------------------------------------------------------------ invariants

    def check_invariants(self) -> None:
        """Protocol invariants, callable from tests after any access mix."""
        for line_addr, wts in self.mem_wts.items():
            rts = self.mem_rts.get(line_addr, 0)
            if rts < wts:
                raise ProtocolError(
                    f"line {line_addr}: mem_rts {rts} < mem_wts {wts}")
        for proc, cache in self.caches.materialized():
            for line_addr in self.mem_wts:
                loc = cache.probe(line_addr)
                if loc is None:
                    continue
                cached = int(self.wts_a[proc][loc.set_index, loc.way])
                if cached > self.mem_wts[line_addr]:
                    raise ProtocolError(
                        f"line {line_addr}: proc {proc} cached wts {cached} "
                        f"> mem_wts {self.mem_wts[line_addr]}")
