"""Vectorized batch kernels: the schemes' cold-span paths over event arrays.

The fast engine (:mod:`repro.sim.fastengine`) partitions each task's
events into *cold* spans — runs of accesses to lines that are provably not
order-sensitive across processors this epoch — and hands each span to the
scheme's kernel.  Two generations of kernel live here:

* the **full-batch** kernels (BASE, SC, TPI, HW directory) scan a window
  of events and resolve *every* outcome — hits, misses, fills, refreshes,
  timetag stamping, miss classification — in closed form with numpy (the
  directory kernel runs its residual miss/upgrade protocol transitions
  through an exact per-event loop inside the apply), then apply the whole
  window at once.  Within a window, each direct-mapped cache set is
  either *fully batched* or *fully per-event*: a set whose events the
  scan cannot prove (two distinct lines competing for it, or a
  staleness-oracle check that might fire) is "poisoned" and all of its
  events run through the scheme's exact per-event path instead.  Because
  an event's side effects are confined to its own set (plus the shadow
  words / write buffer entries of its own addresses, which live in that
  set too), the batched apply and the poisoned events commute, and no
  intra-window ordering is lost.  Full-batch kernels additionally
  support the engine's **epoch pre-apply** (:meth:`_FullBatchKernel.
  preapply`): all of an epoch's cold events, across every task, merge
  into one window whose per-task latency prefix sums are memoized, so
  each later ``span`` call is a constant-time lookup;
* the **boundary-scan** kernel (update) batches only the
  trivially-provable prefix (hits, silent exclusive writes) and runs
  every protocol transition through the exact path, rescanning around
  it.

Every per-event execution goes through exactly the code the reference
engine uses, so protocol transitions and coherence-oracle errors
reproduce bit-identically; the scans only ever *prove* that the batched
events take a closed-form path.  Differential parity with the reference
engine is enforced by tests/test_engine_parity.py.

Closed-form misses lean on two facts about cold spans: a span belongs to
one task and runs in program order, and cold lines are untouched by other
processors within the epoch — so the only writer of a span's shadow words
is the span's own task, and a line's whole in-window life (install,
refresh, word validations) is a function of the window's own events.
Intra-window ordering between accesses to the same set or word is
restored with :class:`_Chains` (one stable argsort per key).

Kernels require direct-mapped caches (``associativity == 1``): with one
way per set, ``probe`` is a single gather and LRU state is provably inert.
For any other geometry :meth:`build` returns ``None`` and the fast engine
falls back to its exact per-event path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.coherence.api import AccessResult
from repro.coherence.directory import _REASON_FALSE, _REASON_TRUE
from repro.coherence.sparse import STATE_E
from repro.coherence.tpi_rules import time_read_window, word_age
from repro.common.config import ConsistencyModel, WriteBufferKind
from repro.common.errors import ProtocolError
from repro.common.stats import MissKind
from repro.compiler.marking import RefMark
from repro.memsys.wbuffer import WRITE_MESSAGE_WORDS

#: Adaptive scan-window bounds for the boundary-scan kernels; the
#: full-batch kernels always use _MAX_WINDOW (no rescans to amortize).
_MIN_WINDOW = 16
_MAX_WINDOW = 4096

#: Spans shorter than this run through the exact per-event path outright:
#: a boundary-scan pass costs on the order of fifty events' worth of the
#: per-event code, so batching tiny hot-fragmented spans is a net loss.
#: The full-batch kernels scan once and never rescan, so their break-even
#: sits much lower (see ``_FullBatchKernel.span_cutoff``).
_SPAN_CUTOFF = 24


class _Chains:
    """Program-order predecessor queries within groups of equal keys.

    One stable argsort groups equal keys while preserving program order
    inside each group; cumulative tricks then answer "does some earlier
    event in my group satisfy X?" for any flag vector without re-sorting.
    """

    def __init__(self, key: np.ndarray):
        n = len(key)
        self.n = n
        order = np.argsort(key, kind="stable")
        self.order = order
        k_sorted = key[order]
        gs = np.empty(n, dtype=bool)
        gs[0] = True
        gs[1:] = k_sorted[1:] != k_sorted[:-1]
        self._gs = gs
        pos = np.arange(n)
        self._gfirst = np.maximum.accumulate(np.where(gs, pos, 0))
        self._gid = np.cumsum(gs) - 1
        self._ngroups = int(self._gid[-1]) + 1

    def _scatter(self, arr_sorted: np.ndarray) -> np.ndarray:
        out = np.empty(self.n, dtype=arr_sorted.dtype)
        out[self.order] = arr_sorted
        return out

    def prior_any(self, flags: np.ndarray) -> np.ndarray:
        """``out[i]`` — does some ``j < i`` in i's group have ``flags[j]``?"""
        f = flags[self.order].astype(np.int64)
        csum = np.cumsum(f) - f
        base = np.maximum.accumulate(np.where(self._gs, csum, 0))
        return self._scatter((csum - base) > 0)

    def group_any(self, flags: np.ndarray) -> np.ndarray:
        """``out[i]`` — does *any* event in i's group have the flag?"""
        hot = np.bincount(self._gid, weights=flags[self.order],
                          minlength=self._ngroups) > 0
        return self._scatter(hot[self._gid])


def prior_same_addr(addr: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``out[i]`` — does some ``j < i`` have ``mask[j]`` and same address?"""
    n = len(addr)
    if n == 0 or not mask.any():
        return np.zeros(n, dtype=bool)
    return _Chains(addr).prior_any(mask)


class _SetChains(_Chains):
    """Per-set chains plus line-residency tracking.

    ``mask`` selects the events that allocate into the cache (install on
    miss, or hit the resident line); for those, the occupant of the set
    *after* the event is always the event's own line.  Hence the occupant
    seen by event i is the line of its previous masked same-set event, or
    the pre-window occupant if it has none — one gather either way.
    """

    def __init__(self, s: np.ndarray, line: np.ndarray,
                 mask: Optional[np.ndarray]):
        super().__init__(s)
        n = self.n
        pos = np.arange(n)
        ls = line[self.order]
        m = mask[self.order] if mask is not None else np.ones(n, dtype=bool)
        cand = np.where(m, pos, -1)
        run = np.maximum.accumulate(cand)
        prev = np.empty(n, dtype=np.int64)
        prev[0] = -1
        prev[1:] = run[:-1]
        prev[prev < self._gfirst] = -1
        has_prev = prev >= 0
        prev_line = np.where(has_prev, ls[np.maximum(prev, 0)], -1)
        self.has_prev = self._scatter(has_prev)
        self.prev_line = self._scatter(prev_line)
        # A set is *conflicted* when two distinct lines compete for it
        # within the window (an in-window eviction chain): closed-form
        # residency would need install ordering, so such sets are poisoned.
        confl = m & has_prev & (prev_line != ls)
        hot = np.bincount(self._gid, weights=confl,
                          minlength=self._ngroups) > 0
        self.conflict = self._scatter(hot[self._gid])

    def resident(self, line: np.ndarray, tags0: np.ndarray) -> np.ndarray:
        """Is the event's line resident when the event executes?"""
        return np.where(self.has_prev, self.prev_line == line, tags0 == line)


class _Cols:
    """One window of events, possibly spanning several processors.

    ``parts`` lists contiguous ``(proc, lo, hi)`` ranges in execution
    order; ``skey``/``akey`` are the grouping keys for the chains
    machinery — equal to the set index / word address within one
    processor, and offset per processor in merged windows so that no
    chain group ever crosses a processor boundary."""

    __slots__ = ("n", "s", "line", "wd", "wr", "sh", "addr", "site",
                 "work", "parts", "skey", "akey", "_procv", "cache")

    _FIELDS = (("s", "set_"), ("line", "line"), ("wd", "word"),
               ("wr", "is_write"), ("sh", "shared"), ("addr", "addr"),
               ("site", "site"), ("work", "work"))

    @classmethod
    def window(cls, proc: int, ta, lo: int, hi: int) -> "_Cols":
        c = cls()
        c.n = hi - lo
        for name, attr in cls._FIELDS:
            setattr(c, name, getattr(ta, attr)[lo:hi])
        c.parts = ((proc, 0, c.n),)
        c.skey = c.s
        c.akey = c.addr
        c._procv = None
        c.cache = {}
        return c

    @classmethod
    def merged(cls, pieces, n_sets: int, total_words: int) -> "_Cols":
        """``pieces``: ``(proc, ta, sel)`` in execution order, ``sel`` a
        boolean mask selecting the events to include (None = all)."""
        c = cls()
        stacks = {name: [] for name, _ in cls._FIELDS}
        parts = []
        skey = []
        akey = []
        pos = 0
        for proc, ta, sel in pieces:
            for name, attr in cls._FIELDS:
                arr = getattr(ta, attr)
                stacks[name].append(arr if sel is None else arr[sel])
            k = len(stacks["s"][-1])
            parts.append((proc, pos, pos + k))
            skey.append(stacks["s"][-1] + proc * n_sets)
            akey.append(stacks["addr"][-1] + proc * total_words)
            pos += k
        for name in stacks:
            setattr(c, name, np.concatenate(stacks[name]))
        c.n = pos
        c.parts = tuple(parts)
        c.skey = np.concatenate(skey)
        c.akey = np.concatenate(akey)
        c._procv = None
        c.cache = {}
        return c

    @property
    def procv(self) -> np.ndarray:
        """Per-event processor id (for 2-D ``[proc, addr]`` indexing)."""
        if self._procv is None:
            v = np.empty(self.n, dtype=np.int64)
            for p, lo, hi in self.parts:
                v[lo:hi] = p
            self._procv = v
        return self._procv

    def compress(self, m: np.ndarray) -> "_Cols":
        """Keep only events where ``m`` holds (single-part windows only —
        merged windows are never partially applied)."""
        (proc, _, _), = self.parts
        c = _Cols()
        c.n = int(m.sum())
        for name, _ in self._FIELDS:
            setattr(c, name, getattr(self, name)[m])
        c.parts = ((proc, 0, c.n),)
        c.skey = c.s
        c.akey = c.addr
        c._procv = None
        c.cache = {}
        return c


class _LazyViews:
    """Per-processor numpy views over a :class:`LazyList` of backing
    objects, created on first access.

    Materializing a view materializes the backing object (a Cache or
    timestamp array), so at ``n_procs`` in the thousands a kernel only
    ever touches the processors its windows actually contain.  Views are
    real numpy views — writes through them land in the backing arrays —
    and :meth:`materialized` walks the *backing* list's materialized
    processors (not just the viewed ones), so holder scans can never
    miss a cache that was built on the exact path.
    """

    __slots__ = ("_backing", "_extract", "_views")

    def __init__(self, backing, extract):
        self._backing = backing
        self._extract = extract
        self._views = {}

    def __len__(self) -> int:
        return len(self._backing)

    def __getitem__(self, proc: int):
        view = self._views.get(proc)
        if view is None:
            view = self._views[proc] = self._extract(self._backing[proc])
        return view

    def materialized(self):
        return [(proc, self[proc])
                for proc, _item in self._backing.materialized()]


class _BatchKernel:
    """Shared plumbing: live cache views, window loops, accounting."""

    def __init__(self, scheme):
        self.scheme = scheme
        self.machine = scheme.machine
        self.network = scheme.network
        self.shadow = scheme.shadow
        caches = scheme.caches
        # Direct-mapped views: way dimension dropped, so a probe is one
        # gather and all scatters are 1-D/2-D fancy indexing.
        self.tags = _LazyViews(caches, lambda c: c.tags[:, 0])
        self.wv = _LazyViews(caches, lambda c: c.word_valid[:, 0, :])
        self.cver = _LazyViews(caches, lambda c: c.version[:, 0, :])
        self.used = _LazyViews(caches, lambda c: c.used[:, 0, :])
        self.tt = _LazyViews(caches, lambda c: c.timetag[:, 0, :])
        self.dirty = _LazyViews(caches, lambda c: c.dirty[:, 0])
        self.check = self.machine.check_coherence
        self.hit_lat = self.machine.hit_latency
        self.line_words = self.machine.cache.line_words
        self.word_lat = 0
        self.miss_lat = 0
        self.seq = self.machine.consistency is ConsistencyModel.SEQUENTIAL
        self.window = 128
        self.span_cutoff = _SPAN_CUTOFF

    @classmethod
    def build(cls, scheme) -> Optional["_BatchKernel"]:
        if scheme.machine.cache.associativity != 1:
            return None
        return cls(scheme)

    def begin_epoch(self) -> None:
        """Latch the epoch-constant network latencies (rho only moves at
        ``observe_epoch``, so these are scalars for the whole epoch)."""
        self.word_lat = self.network.word_latency()
        self.miss_lat = self.network.miss_latency(self.line_words)

    def resync(self) -> None:
        """Rebuild any derived protocol mirror after a fallback epoch."""

    def boundary(self, eng, proc: int, ta, i: int) -> int:
        """Run one event through the scheme's exact per-event path."""
        return eng._exec_event(proc, ta.events[i])

    # ---------------------------------------------------- boundary-scan span

    def span(self, eng, proc: int, ta, lo: int, hi: int) -> int:
        """Process events ``[lo, hi)`` of one task; returns elapsed cycles.

        One scan serves a whole window even across boundary events: a
        boundary only mutates state in its own (direct-mapped) cache set —
        the installed line, its evicted occupant, their directory entries,
        the shadow words of that one line — so the precomputed batchable
        flags stay valid for every later event in a *different* set.  The
        window is truncated at the first later event that revisits a
        boundary's set, and scanning resumes there.
        """
        elapsed = 0
        breakdown = eng.result.breakdown
        if hi - lo < self.span_cutoff:
            for i in range(lo, hi):
                breakdown["busy"] += ta.events[i].work
                elapsed += ta.events[i].work + self.boundary(eng, proc, ta, i)
            return elapsed
        i = lo
        while i < hi:
            j = min(i + self.window, hi)
            window = j - i
            ok, ctx = self._scan(proc, ta, i, j)
            sets = ctx["s"]
            pos = 0
            limit = window
            clean = True
            while pos < limit:
                bad = ~ok[pos:limit]
                n_ok = int(bad.argmax()) if bad.any() else limit - pos
                if n_ok:
                    elapsed += self._apply(eng, proc, ta, i, pos,
                                           pos + n_ok, ctx)
                    pos += n_ok
                    if pos >= limit:
                        break
                elif pos == 0:
                    clean = False
                # The scan proved this event takes a non-trivial path: run
                # it through the scheme's exact per-event code, then keep
                # using the scan for events in untouched sets.
                event = ta.events[i + pos]
                breakdown["busy"] += event.work
                elapsed += event.work + self.boundary(eng, proc, ta, i + pos)
                touched_set = sets[pos]
                pos += 1
                revisit = np.flatnonzero(sets[pos:limit] == touched_set)
                if revisit.size:
                    limit = pos + int(revisit[0])
            i += pos
            if clean and pos == window and window == self.window:
                self.window = min(self.window * 2, _MAX_WINDOW)
            elif not clean:
                self.window = max(self.window // 2, _MIN_WINDOW)
        return int(elapsed)

    # ------------------------------------------------------------- helpers

    def _charge_work(self, eng, ta, lo: int, n: int) -> int:
        work = int(ta.work[lo:lo + n].sum())
        eng.result.breakdown["busy"] += work
        return work

    def _work(self, eng, cols: _Cols) -> int:
        work = int(cols.work.sum())
        eng.result.breakdown["busy"] += work
        return work

    def _gset(self, arrs, cols: _Cols) -> np.ndarray:
        """Per-event gather from per-processor set-indexed arrays."""
        parts = cols.parts
        if len(parts) == 1:
            return arrs[parts[0][0]][cols.s]
        out = np.empty(cols.n, dtype=arrs[parts[0][0]].dtype)
        for p, lo, hi in parts:
            out[lo:hi] = arrs[p][cols.s[lo:hi]]
        return out

    def _gword(self, arrs, cols: _Cols) -> np.ndarray:
        """Per-event gather from per-processor ``[set, word]`` arrays."""
        parts = cols.parts
        if len(parts) == 1:
            return arrs[parts[0][0]][cols.s, cols.wd]
        out = np.empty(cols.n, dtype=arrs[parts[0][0]].dtype)
        for p, lo, hi in parts:
            out[lo:hi] = arrs[p][cols.s[lo:hi], cols.wd[lo:hi]]
        return out

    def _gword0(self, arrs, cols: _Cols) -> np.ndarray:
        """Like :meth:`_gword` but always word 0 (per-line timetags)."""
        parts = cols.parts
        if len(parts) == 1:
            return arrs[parts[0][0]][cols.s, 0]
        out = np.empty(cols.n, dtype=arrs[parts[0][0]].dtype)
        for p, lo, hi in parts:
            out[lo:hi] = arrs[p][cols.s[lo:hi], 0]
        return out

    def _set_chains(self, cols: _Cols, mask, token) -> "_SetChains":
        """Per-set chains for this window, memoized on the window: the
        argsort and residency links depend only on static columns (and a
        static allocation mask), so engine-cached merged windows reuse
        them across schemes and repeated simulations."""
        ch = cols.cache.get(token)
        if ch is None:
            ch = _SetChains(cols.skey, cols.line, mask)
            cols.cache[token] = ch
        return ch

    def _addr_chains(self, cols: _Cols) -> _Chains:
        ch = cols.cache.get("addr")
        if ch is None:
            ch = _Chains(cols.akey)
            cols.cache["addr"] = ch
        return ch

    def _prior_addr(self, cols: _Cols, mask: np.ndarray) -> np.ndarray:
        if not mask.any():
            return np.zeros(cols.n, dtype=bool)
        return self._addr_chains(cols).prior_any(mask)

    def _parts_idx(self, cols: _Cols, mask: np.ndarray):
        """Yield ``(proc, absolute-index-array)`` for events where
        ``mask`` holds, one entry per contiguous per-processor part."""
        parts = cols.parts
        if len(parts) == 1:
            idx = np.flatnonzero(mask)
            if idx.size:
                yield parts[0][0], idx
            return
        for p, lo, hi in parts:
            idx = np.flatnonzero(mask[lo:hi])
            if idx.size:
                yield p, idx + lo

    def _note_hits(self, eng, n_rd: int, n_shr: int) -> int:
        """Account ``n_rd`` read hits (``n_shr`` of them shared)."""
        result = eng.result
        result.reads += n_rd
        result.shared_reads += n_shr
        mc = result.miss_counts
        mc[MissKind.HIT] = mc.get(MissKind.HIT, 0) + n_rd
        cycles = n_rd * self.hit_lat
        result.breakdown["busy"] += cycles
        return cycles

    def _note_read_misses(self, eng, n: int, n_shr: int,
                          kind_masks) -> int:
        """Account ``n`` closed-form read misses: per-kind counts, the
        paper's miss-latency accumulators, read-stall time, line traffic."""
        result = eng.result
        result.reads += n
        result.shared_reads += n_shr
        mc = result.miss_counts
        for kind, mask in kind_masks:
            count = int(mask.sum())
            if count:
                mc[kind] = mc.get(kind, 0) + count
        cycles = n * self.miss_lat
        result.miss_latency_total += cycles
        result.miss_latency_count += n
        result.breakdown["read_stall"] += cycles
        self._traffic(eng, read_words=n * (1 + self.line_words))
        return cycles

    def _write_latency(self, eng, n_sw: int, n_pw: int) -> int:
        """Latency/breakdown for ``n_sw`` shared + ``n_pw`` private write
        hits (write-through schemes: SEQ stalls for the word round trip)."""
        bd = eng.result.breakdown
        lat_shared = self.word_lat if self.seq else self.hit_lat
        if lat_shared > self.hit_lat:
            bd["write_stall"] += n_sw * lat_shared
        else:
            bd["busy"] += n_sw * lat_shared
        bd["busy"] += n_pw * self.hit_lat
        return n_sw * lat_shared + n_pw * self.hit_lat

    def _traffic(self, eng, read_words: int = 0, write_words: int = 0,
                 coherence_words: int = 0) -> None:
        if read_words or write_words or coherence_words:
            eng.result.note_traffic(read_words, write_words, coherence_words)
            eng._epoch_words += read_words + write_words + coherence_words

    def _bump_shadow(self, addrs: np.ndarray, proc) -> None:
        """``proc`` may be a scalar or a per-event vector (merged windows;
        duplicate addresses resolve last-wins, matching execution order)."""
        self.shadow.write_many(addrs, proc)

    def _install_lines(self, proc: int, sets: np.ndarray,
                       lines: np.ndarray) -> None:
        """Batched fills: tags, full word validity, and the line's shadow
        version snapshot (call *before* this window's shadow bumps — no
        write can precede the install of its own line within a window)."""
        self.tags[proc][sets] = lines
        self.wv[proc][sets] = True
        lw = self.line_words
        base = lines * lw
        self.cver[proc][sets] = self.shadow.version[
            base[:, None] + np.arange(lw)]


class _FullBatchKernel(_BatchKernel):
    """Span loop for the full-batch kernels: one scan + one apply per
    window; events the scan could not prove (and every event sharing a
    cache set with one) run through the exact path after the apply.

    The apply-first order is sound because a poisoned set's events and
    the batched events touch disjoint cache sets, shadow words, touched
    bits, and write-buffer entries — every side channel is keyed by the
    event's own set or address.

    Full-batch kernels additionally support *epoch pre-apply*
    (:meth:`preapply`): when the fast engine proves that an epoch's hot
    and cold events live in disjoint cache sets, every task's cold events
    are scanned and applied in one merged multi-processor window before
    dispatch, and :meth:`span` then answers from memoized per-task
    elapsed-cycle prefix sums instead of rescanning per window."""

    full_batch = True

    def __init__(self, scheme):
        super().__init__(scheme)
        self._memo = {}

    def span(self, eng, proc: int, ta, lo: int, hi: int) -> int:
        cs = self._memo.get(id(ta))
        if cs is not None:
            return int(cs[hi] - cs[lo])
        elapsed = 0
        breakdown = eng.result.breakdown
        if hi - lo < self.span_cutoff:
            for i in range(lo, hi):
                breakdown["busy"] += ta.events[i].work
                elapsed += ta.events[i].work + self.boundary(eng, proc, ta, i)
            return elapsed
        i = lo
        while i < hi:
            j = min(i + _MAX_WINDOW, hi)
            cols = _Cols.window(proc, ta, i, j)
            ok, ctx = self._scan(cols)
            if ok.all():
                elapsed += self._apply(eng, cols, ctx)
            else:
                cok = cols.compress(ok)
                elapsed += self._apply(eng, cok,
                                       {k: v[ok] for k, v in ctx.items()})
                for p in np.flatnonzero(~ok).tolist():
                    event = ta.events[i + p]
                    breakdown["busy"] += event.work
                    elapsed += event.work + self.boundary(eng, proc, ta,
                                                          i + p)
            i = j
        return int(elapsed)

    def preapply(self, eng, pieces, cols: Optional[_Cols] = None) -> bool:
        """Scan and apply an epoch's cold events in one merged window.

        ``pieces`` lists ``(proc, ta, sel)`` in dispatch order; ``sel``
        selects each task's cold events (None = all of them).  If any set
        is poisoned the method returns False with *no* side effects and
        the engine falls back to ordinary per-span batching.  On success
        all counters/state are final and a per-task prefix-sum of
        ``work + latency`` (zero at hot positions) is memoized so that
        :meth:`span` is a constant-time lookup for the rest of the epoch.
        """
        if cols is None:
            cols = _Cols.merged(pieces, self.machine.cache.n_sets,
                                self.shadow.total_words)
        ok, ctx = self._scan(cols)
        if not bool(ok.all()):
            return False
        lat = np.zeros(cols.n, dtype=np.int64)
        self._apply(eng, cols, ctx, lat_out=lat)
        v = cols.work + lat
        for (proc, ta, sel), (p, lo, hi) in zip(pieces, cols.parts):
            vfull = np.zeros(ta.n + 1, dtype=np.int64)
            if sel is None:
                vfull[1:] = v[lo:hi]
            else:
                vfull[1:][sel] = v[lo:hi]
            self._memo[id(ta)] = np.cumsum(vfull)
        return True

    def clear_memo(self) -> None:
        self._memo.clear()

    def _exact_events(self, eng, cols, mask, lat_out=None) -> int:
        """Run the masked events through the scheme's exact access
        methods, in program order per processor, with the reference
        engine's accounting (mirrors ``_exec_event``; cold events reach
        here only for schemes that ignore ``in_critical``)."""
        scheme = self.scheme
        result = eng.result
        bd = result.breakdown
        hit_lat = self.hit_lat
        wr, sh, addr, site = cols.wr, cols.sh, cols.addr, cols.site
        elapsed = 0
        words = 0
        for proc, idx in self._parts_idx(cols, mask):
            for i in idx.tolist():
                shd = bool(sh[i])
                if wr[i]:
                    r = scheme.write(proc, int(addr[i]), int(site[i]),
                                     shd, False)
                    if r.latency > hit_lat:
                        bd["write_stall"] += r.latency
                    else:
                        bd["busy"] += r.latency
                    result.note_write(shd)
                else:
                    r = scheme.read(proc, int(addr[i]), int(site[i]),
                                    shd, False)
                    if r.kind.is_miss:
                        bd["read_stall"] += r.latency
                    else:
                        bd["busy"] += r.latency
                    result.note_read(shd, r.kind, r.latency)
                result.note_traffic(r.read_words, r.write_words,
                                    r.coherence_words)
                words += r.total_words
                if lat_out is not None:
                    lat_out[i] = r.latency
                elapsed += r.latency
        eng._epoch_words += words
        return elapsed


class BaseBatchKernel(_FullBatchKernel):
    """BASE: shared accesses are fixed-cost remote word operations; the
    private side is an ordinary cache whose misses are closed-form (an
    install has no protocol side effects beyond its own set)."""

    def _scan(self, cols):
        line, wr, sh, addr = cols.line, cols.wr, cols.sh, cols.addr
        priv = ~sh
        ch = self._set_chains(cols, priv, "base")
        resident = ch.resident(line, self._gset(self.tags, cols))
        # Installed lines are fully valid and writes validate their word,
        # so a resident private line always hits; misses install.
        miss = priv & ~resident
        touch = priv & (wr | miss)
        repl = (self.scheme.touched[cols.procv, addr]
                | self._prior_addr(cols, touch))
        # Shared accesses never consult the cache: always batchable.
        ok = ~(priv & ch.conflict)
        ctx = {"miss": miss, "repl": repl, "touch": touch}
        return ok, ctx

    def _apply(self, eng, cols, ctx, lat_out=None):
        s, wd, wr, sh, addr, line = (cols.s, cols.wd, cols.wr, cols.sh,
                                     cols.addr, cols.line)
        miss, repl, touch = ctx["miss"], ctx["repl"], ctx["touch"]
        result = eng.result
        bd = result.breakdown
        elapsed = self._work(eng, cols)

        shr = sh & ~wr
        n_shr = int(shr.sum())
        if n_shr:
            result.reads += n_shr
            result.shared_reads += n_shr
            mc = result.miss_counts
            mc[MissKind.UNCACHED] = mc.get(MissKind.UNCACHED, 0) + n_shr
            cycles = n_shr * self.word_lat
            result.miss_latency_total += cycles
            result.miss_latency_count += n_shr
            bd["read_stall"] += cycles
            self._traffic(eng, read_words=2 * n_shr)
            elapsed += cycles
            if lat_out is not None:
                lat_out[shr] = self.word_lat

        pr_miss = miss & ~wr
        n_pm = int(pr_miss.sum())
        if n_pm:
            rp = repl[pr_miss]
            elapsed += self._note_read_misses(
                eng, n_pm, 0, ((MissKind.REPLACEMENT, rp),
                               (MissKind.COLD, ~rp)))
            if lat_out is not None:
                lat_out[pr_miss] = self.miss_lat

        pr_hit = ~sh & ~wr & ~miss
        n_ph = int(pr_hit.sum())
        if n_ph:
            elapsed += self._note_hits(eng, n_ph, 0)
            if lat_out is not None:
                lat_out[pr_hit] = self.hit_lat

        if miss.any():
            # BASE keeps no per-word versions; a fill is tags + validity.
            for p, idx in self._parts_idx(cols, miss):
                self.tags[p][s[idx]] = line[idx]
                self.wv[p][s[idx]] = True
        if touch.any():
            self.scheme.touched[cols.procv[touch], addr[touch]] = True

        n_wr = int(wr.sum())
        if n_wr:
            result.writes += n_wr
            self._bump_shadow(addr[wr], cols.procv[wr])
            shw = sh & wr
            n_sw = int(shw.sum())
            result.shared_writes += n_sw
            self._traffic(eng, write_words=2 * n_sw)
            pw = wr & ~sh
            if n_wr > n_sw:
                for p, idx in self._parts_idx(cols, pw):
                    self.wv[p][s[idx], wd[idx]] = True
                wm = pw & miss
                n_wm = int(wm.sum())
                if n_wm:  # write-allocate fetch, non-blocking for the CPU
                    self._traffic(
                        eng, read_words=n_wm * (1 + self.line_words))
            elapsed += self._write_latency(eng, n_sw, n_wr - n_sw)
            if lat_out is not None:
                lat_out[shw] = self.word_lat if self.seq else self.hit_lat
                lat_out[pw] = self.hit_lat
        return elapsed


class _WriteBufferMixin:
    """Shared-write buffering for the write-through schemes (TPI/SC)."""

    def _note_shared_writes(self, proc: int, addrs: np.ndarray) -> int:
        """Feed ``addrs`` (in program order) to the write buffer; returns
        network words injected now (FIFO posts each write immediately, the
        coalescing buffer holds everything until the next sync drain)."""
        wbuf = self.scheme.wbuffers[proc]
        n = len(addrs)
        if wbuf.kind is WriteBufferKind.FIFO:
            wbuf.pending += n
            wbuf.total_writes += n
            return WRITE_MESSAGE_WORDS * n
        wbuf.total_writes += n
        uniq, counts = np.unique(addrs, return_counts=True)
        for a, c in zip(uniq.tolist(), counts.tolist()):
            if a in wbuf.pending:
                wbuf.merged_writes += c
            else:
                wbuf.pending.add(a)
                wbuf.merged_writes += c - 1
        return 0


class TpiBatchKernel(_WriteBufferMixin, _FullBatchKernel):
    """TPI fully in closed form: hit tests, fills, refreshes, timetag
    stamping, and miss classification.

    The per-word state after any prefix of a window's events is a pure
    function of the pre-window state and the prefix itself (cold lines
    have no other writer), so each quantity has a vector formula.  The
    only subtlety is that whether a Time-Read *stamps* its word (raises
    its tag to R) depends on whether it missed, which depends on earlier
    stamps to the same word.  Monotonicity breaks the circle exactly: a
    first pass ignoring stamps computes a superset of the real misses in
    which every spurious member is preceded by a real stamper — so using
    that set as the stamper set in a second pass reproduces the real
    outcome for every event.
    """

    def __init__(self, scheme):
        super().__init__(scheme)
        self._site_cap = 0
        self._time_read = np.zeros(0, dtype=bool)
        self._strict = np.zeros(0, dtype=bool)

    def _site_tables(self, max_site: int):
        if max_site >= self._site_cap:
            cap = max_site + 1
            marking = self.scheme.ctx.marking
            time_read = np.zeros(cap, dtype=bool)
            strict = np.zeros(cap, dtype=bool)
            for site, mark in marking.tpi.items():
                if site < cap and mark is RefMark.TIME_READ:
                    time_read[site] = True
            for site in marking.strict_sites:
                if site < cap:
                    strict[site] = True
            self._time_read, self._strict, self._site_cap = (
                time_read, strict, cap)
        return self._time_read, self._strict

    def _scan(self, cols):
        scheme = self.scheme
        R = scheme.epoch_index
        mod = scheme.modulus
        per_word = scheme.per_word_tags
        n = cols.n
        s, line, wd = cols.s, cols.line, cols.wd
        wr, sh, addr, site = cols.wr, cols.sh, cols.addr, cols.site
        rd = ~wr

        ch = self._set_chains(cols, None, "hold")  # every access allocates
        ach = self._addr_chains(cols)
        tags0 = self._gset(self.tags, cols)
        resident = ch.resident(line, tags0)
        wb = ach.prior_any(wr)
        wv0 = self._gword(self.wv, cols)

        tr_table, strict_table = self._site_tables(int(site.max()))
        tr = rd & sh & tr_table[site]
        strict = tr & strict_table[site]
        region = scheme.region_of[addr]
        window = time_read_window(R, scheme.w_regs[np.maximum(region, 0)],
                                  mod)
        no_region = region < 0
        zeros = np.zeros(n, dtype=bool)

        if per_word:
            age0 = word_age(R, self._gword(self.tt, cols), mod)
        else:
            # Per-line tags live on word 0; strict Time-Reads never hit.
            age0 = word_age(R, self._gword0(self.tt, cols), mod)

        def tt_pass(age, strict_ok):
            return np.where(tr, np.where(strict, strict_ok,
                                         (age <= window) | no_region), True)

        # Pass 1, pre-window state only: exact for every event up to (and
        # including) its set's first effective miss.
        if per_word:
            age_p = np.where(wb, 0, age0)
            hit_p = resident & (wb | wv0) & tt_pass(age_p, age_p == 0)
        else:
            hit_p = resident & (wb | wv0) & tt_pass(age0, zeros)
        cand = np.where(wr, ~resident, ~hit_p)
        # fresh: a prior same-set miss filled/refreshed the line, so every
        # word is valid with tag >= R-1 (the paper's fill rule).
        fresh = ch.prior_any(cand)
        fill = tags0 != line  # per set: fresh via install, not refresh
        valid = wb | fresh | wv0
        if per_word:
            age_f = np.where(fill | ~wv0, 1, np.minimum(age0, 1))
            age_ns = np.where(wb, 0, np.where(fresh, age_f, age0))
            hit_ns = resident & valid & tt_pass(age_ns, age_ns == 0)
            # Pass 2: stamps from pass-1 misses (exact, see class docs).
            stamped = ach.prior_any(rd & ~hit_ns & ~strict)
            age2 = np.where(stamped, 0, age_ns)
            hit = resident & valid & tt_pass(age2, age2 == 0)
        else:
            age_ns = np.where(fresh, 1, age0)
            stamped = zeros
            hit = resident & valid & tt_pass(age_ns, zeros)
        rmiss = rd & ~hit
        wmiss = wr & ~resident

        cver0 = self._gword(self.cver, cols)
        ver0 = self.shadow.version[addr]
        # Words rewritten from memory during the window carry a current
        # version: any refresh/fill upgraded word, or the accessed word of
        # any earlier read miss to the same address.
        rm_before = ach.prior_any(rmiss)
        if per_word:
            refreshed = fresh & (fill | ~wv0 | (age0 > 1))
        else:
            refreshed = fresh
        current = wb | rm_before | refreshed | (cver0 == ver0)
        bad = ch.conflict
        if self.check:
            fresh_ver = wb | rm_before | refreshed
            stale = hit & ~fresh_ver & (
                cver0 < self.shadow.epoch_version[addr])
            if stale.any():
                # The staleness oracle may fire: route the whole set
                # through the exact path so it fires against true state.
                bad = bad | ch.group_any(stale)
        touched = (scheme.touched[cols.procv, addr]
                   | ach.prior_any(np.ones(n, dtype=bool)))

        ctx = {"tr": tr, "strict": strict, "hit": hit,
               "rmiss": rmiss, "wmiss": wmiss, "resident": resident,
               "valid": valid, "current": current, "touched": touched,
               "fill": fill}
        return ~bad, ctx

    def _apply(self, eng, cols, ctx, lat_out=None):
        scheme = self.scheme
        R = scheme.epoch_index
        per_word = scheme.per_word_tags
        c = ctx
        s, wd, wr, sh, addr, line = (cols.s, cols.wd, cols.wr, cols.sh,
                                     cols.addr, cols.line)
        rmiss, wmiss, hit = c["rmiss"], c["wmiss"], c["hit"]
        result = eng.result
        elapsed = self._work(eng, cols)

        rd = ~wr
        rhit = rd & hit
        n_hit = int(rhit.sum())
        if n_hit:
            elapsed += self._note_hits(eng, n_hit, int((rhit & sh).sum()))
            if lat_out is not None:
                lat_out[rhit] = self.hit_lat
        scheme.time_reads += int(c["tr"].sum())
        scheme.time_read_hits += int((c["tr"] & hit).sum())
        scheme.strict_reads += int(c["strict"].sum())

        n_rm = int(rmiss.sum())
        if n_rm:
            res, val, cur, tch = (c["resident"][rmiss], c["valid"][rmiss],
                                  c["current"][rmiss], c["touched"][rmiss])
            elapsed += self._note_read_misses(
                eng, n_rm, int(sh[rmiss].sum()),
                ((MissKind.CONSERVATIVE, res & val & cur),
                 (MissKind.TRUE_SHARING, res & val & ~cur),
                 (MissKind.RESET, res & ~val),
                 (MissKind.REPLACEMENT, ~res & tch),
                 (MissKind.COLD, ~res & ~tch)))
            if lat_out is not None:
                lat_out[rmiss] = self.miss_lat

        # ---- state: line-wide fill/refresh effects for missed sets -----
        miss_any = rmiss | wmiss
        if miss_any.any():
            lw = self.line_words
            for p, idx in self._parts_idx(cols, miss_any):
                su, first = np.unique(s[idx], return_index=True)
                lu = line[idx][first]
                fillu = c["fill"][idx][first]
                base = lu * lw
                sv = self.shadow.version[base[:, None] + np.arange(lw)]
                if per_word:
                    ttu = self.tt[p][su]
                    keep = (~fillu[:, None]) & self.wv[p][su] & (ttu >= R - 1)
                    self.tt[p][su] = np.where(keep, ttu, R - 1)
                    self.cver[p][su] = np.where(keep, self.cver[p][su], sv)
                else:
                    self.tt[p][su] = R - 1
                    self.cver[p][su] = sv
                self.wv[p][su] = True
                self.tags[p][su] = lu
            if per_word and n_rm:
                # Accessed word of each read miss: version refetched, tag
                # stamped to R unless the Time-Read was strict.
                for p, idx in self._parts_idx(cols, rmiss):
                    self.cver[p][s[idx], wd[idx]] = (
                        self.shadow.version[addr[idx]])
                    self.tt[p][s[idx], wd[idx]] = np.where(
                        c["strict"][idx], R - 1, R)
        scheme.touched[cols.procv, addr] = True

        n_wr = int(wr.sum())
        if n_wr:
            result.writes += n_wr
            self._bump_shadow(addr[wr], cols.procv[wr])
            for p, idx in self._parts_idx(cols, wr):
                sw, ww = s[idx], wd[idx]
                self.wv[p][sw, ww] = True
                if per_word:
                    self.tt[p][sw, ww] = R
                self.cver[p][sw, ww] = self.shadow.version[addr[idx]]
            shw = wr & sh
            n_sw = int(shw.sum())
            result.shared_writes += n_sw
            if n_sw:
                words = 0
                for p, idx in self._parts_idx(cols, shw):
                    words += self._note_shared_writes(p, addr[idx])
                self._traffic(eng, write_words=words)
            n_wm = int(wmiss.sum())
            if n_wm:  # write-allocate fetch, non-blocking for the CPU
                self._traffic(eng, read_words=n_wm * (1 + self.line_words))
            elapsed += self._write_latency(eng, n_sw, n_wr - n_sw)
            if lat_out is not None:
                lat_out[shw] = self.word_lat if self.seq else self.hit_lat
                lat_out[wr & ~sh] = self.hit_lat
        return elapsed


class ScBatchKernel(_WriteBufferMixin, _FullBatchKernel):
    """SC fully in closed form: bypassing reads are fixed-cost word
    fetches classified against the evolving line state; cached reads hit
    whenever the line is resident (installed lines are fully valid);
    misses install with the line's shadow snapshot."""

    def __init__(self, scheme):
        super().__init__(scheme)
        self._site_cap = 0
        self._bypass = np.zeros(0, dtype=bool)

    def _site_table(self, max_site: int):
        if max_site >= self._site_cap:
            cap = max_site + 1
            marking = self.scheme.ctx.marking
            bypass = np.zeros(cap, dtype=bool)
            for site, mark in marking.sc.items():
                if site < cap and mark is RefMark.TIME_READ:
                    bypass[site] = True
            self._bypass, self._site_cap = bypass, cap
        return self._bypass

    def _scan(self, cols):
        scheme = self.scheme
        s, line, wd = cols.s, cols.line, cols.wd
        wr, sh, addr, site = cols.wr, cols.sh, cols.addr, cols.site

        bypass = ~wr & sh & self._site_table(int(site.max()))[site]
        cached = ~bypass
        ch = self._set_chains(cols, cached,
                              ("sc", id(self.scheme.ctx.marking)))
        ach = self._addr_chains(cols)
        resident = ch.resident(line, self._gset(self.tags, cols))
        miss = cached & ~resident  # line miss: install (read or write)
        fresh = ch.prior_any(miss)
        wb = ach.prior_any(wr)
        cver0 = self._gword(self.cver, cols)
        current = wb | fresh | (cver0 == self.shadow.version[addr])
        touched = (scheme.touched[cols.procv, addr]
                   | ach.prior_any(bypass | wr | (miss & ~wr)))

        bad = ch.conflict
        if self.check:
            stale = (cached & ~wr & resident & ~wb & ~fresh
                     & (cver0 < self.shadow.epoch_version[addr]))
            if stale.any():
                bad = bad | ch.group_any(stale)
        ctx = {"bypass": bypass, "miss": miss, "have": resident,
               "current": current, "touched": touched}
        return ~bad, ctx

    def _apply(self, eng, cols, ctx, lat_out=None):
        scheme = self.scheme
        c = ctx
        s, wd, wr, sh, addr, line = (cols.s, cols.wd, cols.wr, cols.sh,
                                     cols.addr, cols.line)
        bypass, miss = c["bypass"], c["miss"]
        result = eng.result
        elapsed = self._work(eng, cols)

        n_by = int(bypass.sum())
        if n_by:
            ab = addr[bypass]
            have = c["have"][bypass]
            cur = c["current"][bypass]
            tch = c["touched"][bypass]
            mc = result.miss_counts
            for kind, mask in ((MissKind.CONSERVATIVE, have & cur),
                               (MissKind.TRUE_SHARING, have & ~cur),
                               (MissKind.REPLACEMENT, ~have & tch),
                               (MissKind.COLD, ~have & ~tch)):
                count = int(mask.sum())
                if count:
                    mc[kind] = mc.get(kind, 0) + count
            result.reads += n_by
            result.shared_reads += n_by
            cycles = n_by * self.word_lat
            result.miss_latency_total += cycles
            result.miss_latency_count += n_by
            result.breakdown["read_stall"] += cycles
            self._traffic(eng, read_words=2 * n_by)
            scheme.touched[cols.procv[bypass], ab] = True
            elapsed += cycles
            if lat_out is not None:
                lat_out[bypass] = self.word_lat

        rmiss = miss & ~wr
        n_rm = int(rmiss.sum())
        if n_rm:
            tch = c["touched"][rmiss]
            elapsed += self._note_read_misses(
                eng, n_rm, int(sh[rmiss].sum()),
                ((MissKind.REPLACEMENT, tch), (MissKind.COLD, ~tch)))
            scheme.touched[cols.procv[rmiss], addr[rmiss]] = True
            if lat_out is not None:
                lat_out[rmiss] = self.miss_lat

        plain = ~wr & ~bypass & ~miss
        n_pl = int(plain.sum())
        if n_pl:
            elapsed += self._note_hits(eng, n_pl, int((plain & sh).sum()))
            if lat_out is not None:
                lat_out[plain] = self.hit_lat

        if miss.any():
            for p, idx in self._parts_idx(cols, miss):
                self._install_lines(p, s[idx], line[idx])

        n_wr = int(wr.sum())
        if n_wr:
            result.writes += n_wr
            aw = addr[wr]
            self._bump_shadow(aw, cols.procv[wr])
            for p, idx in self._parts_idx(cols, wr):
                sw, ww = s[idx], wd[idx]
                self.wv[p][sw, ww] = True
                self.cver[p][sw, ww] = self.shadow.version[addr[idx]]
            scheme.touched[cols.procv[wr], aw] = True
            shw = wr & sh
            n_sw = int(shw.sum())
            result.shared_writes += n_sw
            if n_sw:
                words = 0
                for p, idx in self._parts_idx(cols, shw):
                    words += self._note_shared_writes(p, addr[idx])
                self._traffic(eng, write_words=words)
            n_wm = int((miss & wr).sum())
            if n_wm:  # write-allocate fetch, non-blocking for the CPU
                self._traffic(eng, read_words=n_wm * (1 + self.line_words))
            elapsed += self._write_latency(eng, n_sw, n_wr - n_sw)
            if lat_out is not None:
                lat_out[shw] = self.word_lat if self.seq else self.hit_lat
                lat_out[wr & ~sh] = self.hit_lat
        return elapsed


class DirectoryBatchKernel(_FullBatchKernel):
    """HW directory: hits, silent exclusive writes, and fills are
    vectorized; misses and S->E upgrades run through a compact in-order
    loop that performs only the *protocol* side (directory transitions,
    remote invalidations, classification, traffic/latency) and reuses the
    scheme's own helpers, so LimitLess traps and the Tullsen-Eggers
    criterion stay exact.

    Cold-span planning makes the loop safe: any remote holder that could
    evict or observe a cold line within the epoch forces a plan-level
    fallback, so the remote-cache mutations the loop performs
    (invalidations, owner demotions) commute with everything batched.  In
    an unpoisoned set all events address one line, so the set's first
    event is its only possible miss and the pre-window occupant/dirty
    gathers are exact at miss time.  The E-self test gathers the scheme's
    :class:`~repro.coherence.sparse.DirectoryStore` columns directly —
    every protocol mutation writes through the :class:`DirEntry` proxies
    into those columns, so there is no mirror to rebuild or resync."""

    def __init__(self, scheme):
        super().__init__(scheme)
        self.ctrl_lat = 0

    def begin_epoch(self) -> None:
        super().begin_epoch()
        self.ctrl_lat = self.network.control_latency()

    def _scan(self, cols):
        s, line, wd = cols.s, cols.line, cols.wd
        wr, sh, addr = cols.wr, cols.sh, cols.addr

        ch = self._set_chains(cols, None, "hold")  # every access holds
        tags0 = self._gset(self.tags, cols)
        resident = ch.resident(line, tags0)
        miss = ~resident
        # Any earlier shared write to the line left it write-exclusive to
        # us (write miss and upgrade both end in E/self; E-self hits stay).
        store = self.scheme.dirstore
        e_self = ((store.state_code[line] == STATE_E)
                  & (store.owner_p1[line] == cols.procv + 1)
                  ) | ch.prior_any(wr & sh)
        upgrade = wr & sh & resident & ~e_self

        bad = ch.conflict
        if self.check:
            # MSI reads must observe the exact current version: fills and
            # same-address writes refetch it, anything else must compare
            # equal or the whole set goes to the exact path so the oracle
            # fires against true state.
            fresh = self._prior_addr(cols, wr) | ch.prior_any(miss)
            stale = (~wr & sh & resident & ~fresh
                     & (self._gword(self.cver, cols)
                        != self.shadow.version[addr]))
            if stale.any():
                bad = bad | ch.group_any(stale)

        ctx = {"miss": miss, "upgrade": upgrade,
               "occ0": tags0, "dirty0": self._gset(self.dirty, cols)}
        return ~bad, ctx

    def _apply(self, eng, cols, ctx, lat_out=None):
        c = ctx
        s, wd, wr, sh, addr = cols.s, cols.wd, cols.wr, cols.sh, cols.addr
        line = cols.line
        miss, upgrade = c["miss"], c["upgrade"]
        result = eng.result
        bd = result.breakdown
        elapsed = self._work(eng, cols)

        rd = ~wr
        rhit = rd & ~miss
        n_rh = int(rhit.sum())
        if n_rh:
            elapsed += self._note_hits(eng, n_rh, int((rhit & sh).sum()))
            if lat_out is not None:
                lat_out[rhit] = self.hit_lat

        if miss.any():
            # Vector side of the fills: a fill resets the whole line's
            # used/dirty/validity and snapshots its shadow versions (taken
            # before this window's bumps — no write can precede its own
            # set's miss).  The protocol side runs in the loop below.
            for p, idx in self._parts_idx(cols, miss):
                su = s[idx]
                self.used[p][su] = False
                self.dirty[p][su] = False
                self._install_lines(p, su, line[idx])
        for p, lo, hi in cols.parts:  # every HW access marks its word
            self.used[p][s[lo:hi], wd[lo:hi]] = True

        n_wr = int(wr.sum())
        if n_wr:
            result.writes += n_wr
            result.shared_writes += int((wr & sh).sum())
            self._bump_shadow(addr[wr], cols.procv[wr])
            for p, idx in self._parts_idx(cols, wr):
                sw = s[idx]
                self.dirty[p][sw] = True
                self.cver[p][sw, wd[idx]] = self.shadow.version[addr[idx]]
            # Private and exclusive-owned write hits are silent: hit
            # latency, no traffic, no directory motion.  Misses and
            # upgrades get their latency from the loop.
            silent = wr & ~miss & ~upgrade
            n_silent = int(silent.sum())
            cycles = n_silent * self.hit_lat
            bd["busy"] += cycles
            elapsed += cycles
            if lat_out is not None:
                lat_out[silent] = self.hit_lat

        slow = miss | upgrade
        if slow.any():
            elapsed += self._slow_events(eng, cols, c, slow, lat_out)
        return elapsed

    def _slow_events(self, eng, cols, c, slow, lat_out=None) -> int:
        """Misses and upgrades, in execution order per processor:
        directory transitions, remote invalidations, classification, and
        latency/traffic — the cache-array effects are already applied
        vectorized.  Slow events of distinct processors in one merged
        window commute (cold-span planning guarantees no remote holder of
        a slow line evicts or observes it this epoch), so iterating part
        by part preserves the reference outcome."""
        scheme = self.scheme
        result = eng.result
        bd = result.breakdown
        mc = result.miss_counts
        lw = self.line_words
        hit_lat = self.hit_lat
        elapsed = 0
        rw = wwt = cw = 0
        wr, sh, line, wd = cols.wr, cols.sh, cols.line, cols.wd
        occ0, dirty0, upgrade = c["occ0"], c["dirty0"], c["upgrade"]
        for proc, idx in self._parts_idx(cols, slow):
            seen = scheme.seen_lines[proc]
            cache = scheme.caches[proc]
            for i in idx.tolist():
                ln = int(line[i])
                word = int(wd[i])
                shd = bool(sh[i])
                if upgrade[i]:
                    inval = scheme._invalidate_sharers(ln, word, skip=proc)
                    cw += inval.coherence_words + 2  # upgrade round trip
                    lat = hit_lat + inval.latency
                    if self.seq:  # wait for the grant + acks
                        lat += self.ctrl_lat
                    entry = scheme.directory[ln]
                    entry.state = "E"
                    entry.owner = proc
                    entry.sharers = {proc}
                    if lat > hit_lat:
                        bd["write_stall"] += lat
                    else:
                        bd["busy"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
                    continue
                # A miss: evict the pre-window occupant, fetch the line.
                res = AccessResult(latency=0, kind=MissKind.HIT)
                evicted = int(occ0[i]) if occ0[i] >= 0 else None
                scheme._evict(cache, proc, evicted, bool(dirty0[i]), res)
                rw += res.read_words + 1 + lw  # the fill
                wwt += res.write_words
                cw += res.coherence_words
                seen_line = ln in seen
                if not wr[i]:
                    if shd:
                        kind = scheme._miss_kind(proc, ln)
                        lat = self.miss_lat
                        entry = scheme._entry(ln)
                        if entry.state == "E" and entry.owner != proc:
                            # 4-hop: the dirty owner supplies the data and
                            # writes back; both copies become read-shared.
                            owner_cache = scheme.caches[entry.owner]
                            owner_loc = owner_cache.probe(ln)
                            if owner_loc is None:
                                raise ProtocolError(
                                    f"directory owner {entry.owner} of line "
                                    f"{ln} has no cached copy")
                            owner_cache.dirty[owner_loc.set_index,
                                              owner_loc.way] = False
                            lat += self.ctrl_lat
                            cw += 2 + lw  # forward + write-back data
                            entry.sharers = {entry.owner}
                            entry.owner = -1
                            entry.state = "S"
                        entry.sharers.add(proc)
                        if entry.state == "U":
                            entry.state = "S"
                    else:
                        kind = (MissKind.REPLACEMENT if seen_line
                                else MissKind.COLD)
                        lat = self.miss_lat
                    seen.add(ln)
                    result.reads += 1
                    if shd:
                        result.shared_reads += 1
                    mc[kind] = mc.get(kind, 0) + 1
                    result.miss_latency_total += lat
                    result.miss_latency_count += 1
                    bd["read_stall"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
                else:
                    lat = hit_lat
                    if shd:
                        scheme._miss_kind(proc, ln)  # consumes inval_reason
                    seen.add(ln)
                    if shd:
                        entry = scheme._entry(ln)
                        if entry.state == "E" and entry.owner != proc:
                            owner = entry.owner
                            owner_cache = scheme.caches[owner]
                            owner_loc = owner_cache.probe(ln)
                            if owner_loc is None:
                                raise ProtocolError(
                                    f"directory owner {owner} of line {ln} "
                                    "has no cached copy")
                            used_word = bool(owner_cache.used[
                                owner_loc.set_index, owner_loc.way, word])
                            reason = (_REASON_TRUE if used_word
                                      else _REASON_FALSE)
                            scheme.inval_reason[owner][ln] = reason
                            scheme.invalidations_sent += 1
                            if reason == _REASON_FALSE:
                                scheme.false_invalidations += 1
                            owner_cache.invalidate_line(owner_loc)
                            cw += 2 + lw
                        elif entry.state == "S":
                            inval = scheme._invalidate_sharers(ln, word,
                                                               skip=proc)
                            cw += inval.coherence_words
                            lat += inval.latency
                        if self.seq:  # the exclusive fetch stalls the CPU
                            lat += self.miss_lat
                        entry.state = "E"
                        entry.owner = proc
                        entry.sharers = {proc}
                    if lat > hit_lat:
                        bd["write_stall"] += lat
                    else:
                        bd["busy"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
        self._traffic(eng, read_words=rw, write_words=wwt,
                      coherence_words=cw)
        return elapsed


class UpdateBatchKernel(_FullBatchKernel):
    """Write-update directory, full-batch: read hits batch like HW;
    write hits batch with their per-write broadcast traffic computed in
    closed form from the sharer sets; misses (and oracle-suspicious
    reads) run through the scheme's exact access methods in an in-order
    loop inside :meth:`_apply`.

    The sharer sets are stable under the batch-first order: a processor's
    own mid-window fill only adds *itself* to a line's sharer set, which
    never changes the "other sharers" a broadcast pays for, and
    evict-coupled cold planning keeps every remote membership fixed for
    the window.  Batched hits after an in-window fill are proven by the
    set chain, and the fill's refreshed versions excuse them from the
    pre-window staleness test."""

    def _scan(self, cols):
        line = cols.line
        wr, sh, addr = cols.wr, cols.sh, cols.addr

        ch = self._set_chains(cols, None, "hold")  # every access installs
        tags0 = self._gset(self.tags, cols)
        resident = ch.resident(line, tags0)
        batch = resident
        if self.check:
            # A batched read serves its cached version, which must meet
            # the epoch floor unless an in-window write or fill refreshed
            # it; suspicious reads take the exact path where the oracle
            # fires against true state.
            fresh = (self._prior_addr(cols, wr) | ch.prior_any(~resident)
                     | (self._gword(self.cver, cols)
                        >= self.shadow.epoch_version[addr]))
            batch = resident & (wr | ~sh | fresh)
        return np.ones(cols.n, dtype=bool), {"batch": batch}

    def _apply(self, eng, cols, ctx, lat_out=None):
        scheme = self.scheme
        batch = ctx["batch"]
        s, wd, wr, sh, addr = cols.s, cols.wd, cols.wr, cols.sh, cols.addr
        result = eng.result
        elapsed = self._work(eng, cols)

        rd = batch & ~wr
        n_rd = int(rd.sum())
        if n_rd:
            elapsed += self._note_hits(eng, n_rd, int((rd & sh).sum()))
            if lat_out is not None:
                lat_out[rd] = self.hit_lat

        bw = batch & wr
        n_bw = int(bw.sum())
        if n_bw:
            result.writes += n_bw
            self._bump_shadow(addr[bw], cols.procv[bw])
            for p, idx in self._parts_idx(cols, bw):
                self.cver[p][s[idx], wd[idx]] = self.shadow.version[addr[idx]]
            scheme.total_writes += n_bw
            shw = bw & sh
            n_sw = int(shw.sum())
            result.shared_writes += n_sw
            if n_sw:
                for p, idx in self._parts_idx(cols, shw):
                    if scheme.coalescing:
                        self._coalesce(p, addr[idx])
                    else:
                        self._traffic(eng, write_words=self._broadcast(
                            p, addr[idx], cols.line[idx]))
            elapsed += self._write_latency(eng, n_sw, n_bw - n_sw)
            if lat_out is not None:
                lat_out[shw] = self.word_lat if self.seq else self.hit_lat
                lat_out[bw & ~sh] = self.hit_lat

        slow = ~batch
        if slow.any():
            elapsed += self._exact_events(eng, cols, slow, lat_out)
        return elapsed

    def _coalesce(self, proc: int, addrs: np.ndarray) -> None:
        scheme = self.scheme
        pending = scheme.pending[proc]
        uniq, counts = np.unique(addrs, return_counts=True)
        for a, c in zip(uniq.tolist(), counts.tolist()):
            if a in pending:
                scheme.merged_writes += c
            else:
                pending.add(a)
                scheme.merged_writes += c - 1

    def _broadcast(self, proc: int, addrs: np.ndarray,
                   lines: np.ndarray) -> int:
        """FIFO broadcasts: per write, the memory update plus one update
        message per other sharer; remote copies are patched to the word's
        final version (a span's intermediate values are unobservable —
        any processor reading the line this epoch would have made it hot).
        """
        scheme = self.scheme
        n_sets = self.machine.cache.n_sets
        line_words = self.line_words
        words = 0
        uniq, counts = np.unique(addrs, return_counts=True)
        uniq_lines = np.unique(lines)
        sharer_map = {int(line): sorted(scheme.sharers.get(int(line), ()))
                      for line in uniq_lines}
        for a, c in zip(uniq.tolist(), counts.tolist()):
            line = a // line_words
            word = a % line_words
            holders = sharer_map[line]
            others = sum(1 for q in holders if q != proc)
            words += c * (WRITE_MESSAGE_WORDS + 2 * others)
            scheme.updates_sent += c * others
            version = int(self.shadow.version[a])
            set_index = line % n_sets
            for q in holders:
                if self.tags[q][set_index] != line:
                    raise ProtocolError(
                        f"update: sharer {q} of line {line} has no copy")
                self.cver[q][set_index, word] = version
        return words


class TardisBatchKernel(_FullBatchKernel):
    """Tardis, full-batch: live-lease read hits and private write hits
    are vectorized; everything that talks to the home node (misses,
    renewals, shared writes) runs through the scheme's *exact* access
    methods in an in-order loop inside :meth:`_apply`.

    Unlike the other full-batch kernels this one never routes events to
    the post-apply exact path: a shared write advances the processor's
    ``pts`` — state that is **not** set-local — so slow events must
    execute in program order *among themselves*, which the loop
    preserves and the post-apply path would not.  The scan therefore
    returns all-ok and only decides which events are provably batchable:

    * a hit proof needs the event's line resident along its set chain
      with no earlier slow (home-talking) event in the set — slow events
      are the only ones that move lease/version state, and a demoted
      candidate re-proves itself harmlessly on the exact path;
    * a *shared* read additionally needs its lease live at the window's
      entry ``pts`` and no earlier shared write in its part (``pts``
      cannot have moved before it executes);
    * batched private writes and loop events touch disjoint addresses
      (an address's ``shared`` flag is fixed), so applying the vector
      side first commutes with the loop.

    Lease grants are commutative maxima and cold-span planning keeps a
    written line on a single processor, so parts of a merged pre-apply
    window commute exactly as the dispatch-order reference does.
    """

    def __init__(self, scheme):
        super().__init__(scheme)
        self.rts = _LazyViews(scheme.rts_a, lambda a: a[:, 0])

    def preapply(self, eng, pieces, cols: Optional[_Cols] = None) -> bool:
        # ``pts`` is epoch-global: a *hot* shared write advances it
        # between cold events, which pre-applying would reorder past the
        # lease tests.  Only epochs whose events are all cold (every
        # selector is None) can pre-apply; others take the span path,
        # whose scans always see the current ``pts``.
        if any(sel is not None for _proc, _ta, sel in pieces):
            return False
        return super().preapply(eng, pieces, cols)

    def _scan(self, cols):
        s, line, wd = cols.s, cols.line, cols.wd
        wr, sh, addr = cols.wr, cols.sh, cols.addr

        ch = self._set_chains(cols, None, "hold")  # every access installs
        tags0 = self._gset(self.tags, cols)
        resident = ch.resident(line, tags0)

        ptsv = np.empty(cols.n, dtype=np.int64)
        prior_sw = np.zeros(cols.n, dtype=bool)
        swr = wr & sh
        for p, lo, hi in cols.parts:
            ptsv[lo:hi] = self.scheme.pts[p]
            w = swr[lo:hi]
            prior_sw[lo:hi] = (np.cumsum(w) - w) > 0
        lease0 = self._gset(self.rts, cols) >= ptsv
        if self.check:
            # The batched hit serves its cached version, which must meet
            # the epoch floor; suspicious reads go to the exact path
            # where the oracle fires against true state.
            lease0 = lease0 & (self._gword(self.cver, cols)
                               >= self.shadow.epoch_version[addr])
        cand = np.where(wr, ~sh & resident,
                        resident & (~sh | (lease0 & ~prior_sw)))
        # Only slow events move lease/version state; a batched hit must
        # precede every slow event of its set so its entry-state proof
        # still holds when the vector side applies.
        batch = cand & ~ch.prior_any(~cand)
        return np.ones(cols.n, dtype=bool), {"batch": batch}

    def _apply(self, eng, cols, ctx, lat_out=None):
        batch = ctx["batch"]
        s, wd, wr, sh, addr = cols.s, cols.wd, cols.wr, cols.sh, cols.addr
        result = eng.result
        elapsed = self._work(eng, cols)

        rd = batch & ~wr
        n_rd = int(rd.sum())
        if n_rd:
            elapsed += self._note_hits(eng, n_rd, int((rd & sh).sum()))
            if lat_out is not None:
                lat_out[rd] = self.hit_lat

        pw = batch & wr  # private write hits (shared writes are slow)
        n_pw = int(pw.sum())
        if n_pw:
            result.writes += n_pw
            self._bump_shadow(addr[pw], cols.procv[pw])
            for p, idx in self._parts_idx(cols, pw):
                self.cver[p][s[idx], wd[idx]] = self.shadow.version[addr[idx]]
            elapsed += self._write_latency(eng, 0, n_pw)
            if lat_out is not None:
                lat_out[pw] = self.hit_lat

        slow = ~batch
        if slow.any():
            elapsed += self._exact_events(eng, cols, slow, lat_out)
        return elapsed


class SnoopBatchKernel(_FullBatchKernel):
    """Snooping MSI, full-batch: hits, silent M-state writes, and fills
    are vectorized; misses and BusUpgr upgrades run through a compact
    in-order loop that performs only the *protocol* side (snooped
    invalidations, classification, traffic/latency).

    The structure mirrors :class:`DirectoryBatchKernel` — snooping makes
    the same invalidation decisions as the full-map directory, it just
    *finds* the holders by snooping instead of looking them up — but the
    snoop needs no directory mirror at all: a holder is any cache whose
    (direct-mapped) tag view matches the line, and the M holder is the
    one with the dirty bit, so the loop's "bus" is a gather over the
    kernel's own tag/dirty views.  Cold-span planning gives the same
    commutation guarantees as for the directory (snoop declares the same
    hot rule), so remote invalidations inside the loop are safe.
    """

    def _holders(self, si: int, ln: int, skip: int):
        # Only materialized caches can hold a copy; an untouched
        # processor's cache is empty by construction.
        return [q for q, tags_q in self.tags.materialized()
                if q != skip and tags_q[si] == ln]

    def _scan(self, cols):
        s, line, wd = cols.s, cols.line, cols.wd
        wr, sh, addr = cols.wr, cols.sh, cols.addr

        ch = self._set_chains(cols, None, "hold")  # every access holds
        tags0 = self._gset(self.tags, cols)
        resident = ch.resident(line, tags0)
        miss = ~resident
        # M at event time: the copy was dirty at window start, or some
        # earlier write to the line (any write sets the dirty bit, and
        # nothing in a cold span clears it mid-window).
        m_now = ((tags0 == line) & self._gset(self.dirty, cols)
                 ) | ch.prior_any(wr)
        upgrade = wr & sh & resident & ~m_now

        bad = ch.conflict
        if self.check:
            # MSI reads must observe the exact current version: fills and
            # same-address writes refetch it, anything else must compare
            # equal or the whole set goes to the exact path so the oracle
            # fires against true state.
            fresh = self._prior_addr(cols, wr) | ch.prior_any(miss)
            stale = (~wr & sh & resident & ~fresh
                     & (self._gword(self.cver, cols)
                        != self.shadow.version[addr]))
            if stale.any():
                bad = bad | ch.group_any(stale)

        ctx = {"miss": miss, "upgrade": upgrade,
               "occ0": tags0, "dirty0": self._gset(self.dirty, cols)}
        return ~bad, ctx

    def _apply(self, eng, cols, ctx, lat_out=None):
        c = ctx
        s, wd, wr, sh, addr = cols.s, cols.wd, cols.wr, cols.sh, cols.addr
        line = cols.line
        miss, upgrade = c["miss"], c["upgrade"]
        result = eng.result
        bd = result.breakdown
        elapsed = self._work(eng, cols)

        rd = ~wr
        rhit = rd & ~miss
        n_rh = int(rhit.sum())
        if n_rh:
            elapsed += self._note_hits(eng, n_rh, int((rhit & sh).sum()))
            if lat_out is not None:
                lat_out[rhit] = self.hit_lat

        if miss.any():
            # Vector side of the fills (the protocol side runs in the
            # loop below): reset the set and snapshot shadow versions
            # before this window's bumps — a miss is its set's first
            # event, so no write can precede the install of its own line.
            for p, idx in self._parts_idx(cols, miss):
                su = s[idx]
                self.used[p][su] = False
                self.dirty[p][su] = False
                self._install_lines(p, su, line[idx])
        for p, lo, hi in cols.parts:  # every access marks its word used
            self.used[p][s[lo:hi], wd[lo:hi]] = True

        n_wr = int(wr.sum())
        if n_wr:
            result.writes += n_wr
            result.shared_writes += int((wr & sh).sum())
            self._bump_shadow(addr[wr], cols.procv[wr])
            for p, idx in self._parts_idx(cols, wr):
                sw = s[idx]
                self.dirty[p][sw] = True
                self.cver[p][sw, wd[idx]] = self.shadow.version[addr[idx]]
            # Private and M-state write hits are silent: hit latency, no
            # bus transaction.  Misses and upgrades price in the loop.
            silent = wr & ~miss & ~upgrade
            n_silent = int(silent.sum())
            cycles = n_silent * self.hit_lat
            bd["busy"] += cycles
            elapsed += cycles
            if lat_out is not None:
                lat_out[silent] = self.hit_lat

        slow = miss | upgrade
        if slow.any():
            elapsed += self._slow_events(eng, cols, c, slow, lat_out)
        return elapsed

    def _invalidate_copies(self, ln: int, si: int, word: int,
                           skip: int) -> int:
        """Snoop-invalidate every other copy; classify each; returns the
        coherence words moved (mirrors ``SnoopBusScheme._invalidate_holders``,
        with the per-copy cache mutations inlined on the 1-D views)."""
        scheme = self.scheme
        cw = 0
        for q in self._holders(si, ln, skip):
            used_word = bool(self.used[q][si, word])
            reason = _REASON_TRUE if used_word else _REASON_FALSE
            scheme.inval_reason[q][ln] = reason
            scheme.invalidations_sent += 1
            if reason == _REASON_FALSE:
                scheme.false_invalidations += 1
            if self.dirty[q][si]:
                cw += self.line_words  # dirty data returns
            self.tags[q][si] = -1
            self.dirty[q][si] = False
            self.wv[q][si] = False
            self.used[q][si] = False
            cw += 2  # invalidate + ack
        return cw

    def _slow_events(self, eng, cols, c, slow, lat_out=None) -> int:
        """Misses and upgrades, in execution order per processor: bus
        transactions, snooped invalidations, classification, and
        latency/traffic — the cache-array effects are already applied
        vectorized.  The commutation argument is the directory kernel's."""
        scheme = self.scheme
        result = eng.result
        bd = result.breakdown
        mc = result.miss_counts
        lw = self.line_words
        hit_lat = self.hit_lat
        ctrl_lat = self.network.control_latency()
        elapsed = 0
        rw = wwt = cw = 0
        wr, sh, line, wd, s = cols.wr, cols.sh, cols.line, cols.wd, cols.s
        occ0, dirty0, upgrade = c["occ0"], c["dirty0"], c["upgrade"]
        for proc, idx in self._parts_idx(cols, slow):
            seen = scheme.seen_lines[proc]
            for i in idx.tolist():
                ln = int(line[i])
                si = int(s[i])
                word = int(wd[i])
                shd = bool(sh[i])
                if upgrade[i]:
                    # BusUpgr from S: invalidate every other copy.
                    cw += self._invalidate_copies(ln, si, word, proc) + 2
                    lat = hit_lat
                    if self.seq:  # wait for the bus grant
                        lat += ctrl_lat
                    if lat > hit_lat:
                        bd["write_stall"] += lat
                    else:
                        bd["busy"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
                    continue
                # A miss: write back the pre-window occupant, fetch.
                if occ0[i] >= 0 and dirty0[i]:
                    wwt += 1 + lw  # silent dirty write-back
                rw += 1 + lw  # the fill
                seen_line = ln in seen
                if not wr[i]:
                    # BusRd: a dirty holder snoops it, flushes, demotes.
                    kind = (scheme._miss_kind(proc, ln) if shd else
                            (MissKind.REPLACEMENT if seen_line
                             else MissKind.COLD))
                    lat = self.miss_lat
                    if shd:
                        for q in self._holders(si, ln, proc):
                            if self.dirty[q][si]:
                                self.dirty[q][si] = False
                                lat += ctrl_lat
                                cw += 2 + lw  # snoop + flush
                                scheme.cache_to_cache_transfers += 1
                                break
                    seen.add(ln)
                    result.reads += 1
                    if shd:
                        result.shared_reads += 1
                    mc[kind] = mc.get(kind, 0) + 1
                    result.miss_latency_total += lat
                    result.miss_latency_count += 1
                    bd["read_stall"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
                else:
                    lat = hit_lat
                    if shd:
                        # BusRdX: classify, invalidate every other copy.
                        scheme._miss_kind(proc, ln)  # consumes inval_reason
                        owner = -1
                        for q in self._holders(si, ln, proc):
                            if self.dirty[q][si]:
                                owner = q
                                break
                        if owner >= 0:
                            used_word = bool(self.used[owner][si, word])
                            reason = (_REASON_TRUE if used_word
                                      else _REASON_FALSE)
                            scheme.inval_reason[owner][ln] = reason
                            scheme.invalidations_sent += 1
                            if reason == _REASON_FALSE:
                                scheme.false_invalidations += 1
                            self.tags[owner][si] = -1
                            self.dirty[owner][si] = False
                            self.wv[owner][si] = False
                            self.used[owner][si] = False
                            cw += 2 + lw  # flush + inval
                            scheme.cache_to_cache_transfers += 1
                        else:
                            cw += self._invalidate_copies(ln, si, word, proc)
                        if self.seq:  # the exclusive fetch stalls the CPU
                            lat += self.miss_lat
                    seen.add(ln)
                    if lat > hit_lat:
                        bd["write_stall"] += lat
                    else:
                        bd["busy"] += lat
                    if lat_out is not None:
                        lat_out[i] = lat
                    elapsed += lat
        self._traffic(eng, read_words=rw, write_words=wwt,
                      coherence_words=cw)
        return elapsed


# ---------------------------------------------------------------------------
# The gang's config axis


class GangParams:
    """Stacked per-config parameter arrays for gang simulation.

    A gang (:mod:`repro.sim.gang`) simulates many back-end machine
    configurations over one shared trace.  This object lines the configs
    up as numpy axes: cache geometry (``line_words``/``n_sets``/
    ``associativity``), timetag width (``timetag_bits`` and the derived
    two-phase ``counter_modulus``), and the latency table
    (``hit_latency``/``base_miss_latency``) each become one stacked array
    indexed by config.  The trace-static work the configs can share —
    resolving every event address to ``(line, set, word)`` — collapses to
    the unique cache geometries and runs as a single
    ``(geometries x events)`` broadcast in :meth:`resolve`; per-config
    *protocol* state never stacks, because each member's results must stay
    byte-identical to a solo run (the PR-3 parity contract).
    """

    def __init__(self, machines):
        machines = list(machines)
        if not machines:
            raise ValueError("a gang needs at least one machine")
        self.machines = machines
        self.n_configs = len(machines)
        caches = [m.cache for m in machines]
        self.line_words = np.array([c.line_words for c in caches], np.int64)
        self.n_sets = np.array([c.n_sets for c in caches], np.int64)
        self.associativity = np.array([c.associativity for c in caches],
                                      np.int64)
        self.timetag_bits = np.array([m.tpi.timetag_bits for m in machines],
                                     np.int64)
        self.counter_modulus = np.int64(1) << self.timetag_bits
        self.hit_latency = np.array([m.hit_latency for m in machines],
                                    np.int64)
        self.base_miss_latency = np.array([m.base_miss_latency
                                           for m in machines], np.int64)
        # Unique cache geometries in first-appearance order, plus each
        # config's index into them: configs sharing a geometry share every
        # trace-static analysis built over it.
        self.geometries = []
        self.geometry_index = np.empty(self.n_configs, np.int64)
        seen = {}
        for i, cache in enumerate(caches):
            geometry = (cache.line_words, cache.n_sets)
            if geometry not in seen:
                seen[geometry] = len(self.geometries)
                self.geometries.append(geometry)
            self.geometry_index[i] = seen[geometry]

    @property
    def n_geometries(self) -> int:
        return len(self.geometries)

    def resolve(self, addr):
        """Geometry-resolve an address array for every unique geometry."""
        return resolve_geometries(addr, self.geometries)


def resolve_geometries(addr, geometries):
    """Resolve ``(line, set, word)`` for each ``(line_words, n_sets)``.

    One ``(geometries x events)`` broadcast replaces ``len(geometries)``
    separate passes; returns ``{geometry: (line, set, word)}`` row views
    (C-contiguous, one per geometry).  The formulas match
    :class:`repro.sim.fastengine._TaskArrays` exactly, so pre-resolved
    rows can never change a member's results.
    """
    addr = np.asarray(addr, dtype=np.int64)
    lw = np.array([g[0] for g in geometries], np.int64)[:, None]
    ns = np.array([g[1] for g in geometries], np.int64)[:, None]
    line = addr[None, :] // lw
    set_ = line % ns
    word = addr[None, :] - line * lw
    return {g: (line[i], set_[i], word[i])
            for i, g in enumerate(geometries)}


__all__ = ["BaseBatchKernel", "DirectoryBatchKernel", "GangParams",
           "ScBatchKernel", "SnoopBatchKernel", "TardisBatchKernel",
           "TpiBatchKernel", "UpdateBatchKernel",
           "prior_same_addr", "resolve_geometries"]
